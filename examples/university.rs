//! The paper's two motivating queries over a generated university
//! database, executed through the full storage + execution stack.
//!
//! * **Example 1**: students who have taken *all* courses offered by the
//!   university — `π(sid,cno)(Transcript) ÷ π(cno)(Courses)`.
//! * **Example 2**: students who have taken all *database* courses — the
//!   divisor is restricted by a selection on the title attribute, which
//!   is where the aggregation-based plans start needing their semi-join.
//!
//! The relations are loaded into record files on the simulated disk; the
//! divisor of example 2 is computed with a real selection + projection
//! plan; and a B+-tree index over Transcript demonstrates the storage
//! substrate's index service.
//!
//! ```text
//! cargo run --example university
//! ```

use reldiv::core::api::{divide, DivisionConfig, Source};
use reldiv::exec::filter::{str_contains, Filter};
use reldiv::exec::op::collect;
use reldiv::exec::project::Project;
use reldiv::exec::scan::{load_relation, FileScan};
use reldiv::rel::RecordCodec;
use reldiv::storage::btree::BTree;
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::StorageManager;
use reldiv::workload::university::{self, UniversitysSpec};
use reldiv::{Algorithm, DivisionSpec, HashDivisionMode};

fn main() {
    let spec = UniversitysSpec {
        courses: 24,
        database_fraction: 0.25,
        students: 200,
        complete_fraction: 0.05,
        partial_fill: 0.7,
    };
    let u = university::generate(&spec, 2024);
    println!(
        "university: {} courses ({} database), {} students, {} transcript rows",
        u.courses.cardinality(),
        u.database_courses.len(),
        200,
        u.transcript.cardinality()
    );

    let storage = StorageManager::shared(StorageConfig::large());
    let courses_file = load_relation(&storage, &u.courses).expect("load courses");
    let transcript_file = load_relation(&storage, &u.transcript).expect("load transcript");

    // Dividend for both queries: π(student-id, course-no)(Transcript).
    let dividend = collect(Box::new(
        Project::new(
            Box::new(FileScan::new(
                storage.clone(),
                transcript_file,
                u.transcript.schema().clone(),
            )),
            vec![0, 1],
        )
        .expect("projection plan"),
    ))
    .expect("project transcript");

    // ---- Example 1: all courses ----------------------------------------
    let all_courses = collect(Box::new(
        Project::new(
            Box::new(FileScan::new(
                storage.clone(),
                courses_file,
                u.courses.schema().clone(),
            )),
            vec![0],
        )
        .expect("projection plan"),
    ))
    .expect("project courses");
    let dspec =
        DivisionSpec::trailing_divisor(dividend.schema(), all_courses.schema()).expect("spec");
    let q1 = divide(
        &storage,
        &Source::from_relation(&dividend),
        &Source::from_relation(&all_courses),
        &dspec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &DivisionConfig::default(),
    )
    .expect("example 1");
    let mut sids: Vec<i64> = q1
        .tuples()
        .iter()
        .map(|t| t.value(0).as_int().expect("sid"))
        .collect();
    sids.sort_unstable();
    println!(
        "\nexample 1 — students with ALL {} courses: {sids:?}",
        all_courses.cardinality()
    );
    assert_eq!(
        sids, u.students_with_all_courses,
        "matches generator ground truth"
    );

    // ---- Example 2: all *database* courses ------------------------------
    // σ(title contains "database") then π(course-no) — a real plan.
    let db_courses = collect(Box::new(
        Project::new(
            Box::new(Filter::new(
                Box::new(FileScan::new(
                    storage.clone(),
                    courses_file,
                    u.courses.schema().clone(),
                )),
                str_contains(1, "database"),
            )),
            vec![0],
        )
        .expect("projection plan"),
    ))
    .expect("select database courses");
    println!(
        "\nexample 2 — divisor after selection: {} database courses",
        db_courses.cardinality()
    );
    for algorithm in [
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ] {
        let q2 = divide(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&db_courses),
            &dspec,
            algorithm,
            &DivisionConfig::default(),
        )
        .expect("example 2");
        let mut sids: Vec<i64> = q2
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().expect("sid"))
            .collect();
        sids.sort_unstable();
        println!("  {:<30} -> {} students", algorithm.label(), sids.len());
        assert_eq!(sids, u.students_with_all_database_courses);
    }
    println!(
        "  ground truth: {} students took every database course",
        u.students_with_all_database_courses.len()
    );

    // ---- Bonus: a B+-tree index over Transcript ------------------------
    // Index student-id -> RID, then fetch one student's rows by key.
    let mut index = {
        let mut sm = storage.borrow_mut();
        BTree::create(&mut sm, StorageManager::DATA_DISK).expect("create index")
    };
    let codec = RecordCodec::new(u.transcript.schema().clone());
    {
        let mut sm = storage.borrow_mut();
        let mut cursor = reldiv::storage::file::ScanCursor::new(transcript_file);
        while let Some((rid, record)) = cursor.next(&mut sm).expect("scan") {
            let t = codec.decode(&record).expect("decode");
            let key = t.value(0).as_int().expect("sid").to_be_bytes();
            index.insert(&mut sm, &key, rid).expect("index insert");
        }
    }
    let probe = u
        .students_with_all_database_courses
        .first()
        .copied()
        .unwrap_or(0);
    let rows = {
        let mut sm = storage.borrow_mut();
        let rids = index
            .search(&mut sm, &probe.to_be_bytes())
            .expect("index lookup");
        rids.into_iter()
            .map(|rid| codec.decode(&sm.get(rid).expect("fetch")).expect("decode"))
            .collect::<Vec<_>>()
    };
    println!(
        "\nB+-tree index probe: student {probe} has {} transcript rows, e.g. {}",
        rows.len(),
        rows.first().map(|t| t.to_string()).unwrap_or_default()
    );
    assert!(!rows.is_empty());
}
