//! Section 6 live: hash-division across a simulated shared-nothing
//! machine, comparing the two partitioning strategies and the effect of
//! bit-vector filtering on network traffic.
//!
//! ```text
//! cargo run --release --example parallel_scaleout
//! ```

use reldiv::parallel::{parallel_divide, ClusterConfig, Strategy};
use reldiv::storage::manager::StorageConfig;
use reldiv::workload::WorkloadSpec;
use reldiv::DivisionSpec;

fn main() {
    // 8,000 complete groups of 20 courses, plus 4 noise tuples per group
    // that match no divisor value (they exist to give the bit-vector
    // filter something to drop).
    let w = WorkloadSpec {
        divisor_size: 20,
        quotient_size: 8_000,
        noise_per_group: 4,
        ..Default::default()
    }
    .generate(77);
    let spec =
        DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema()).expect("spec");
    println!(
        "dividend: {} tuples, divisor: {} tuples, expected quotient: {}",
        w.dividend.cardinality(),
        w.divisor.cardinality(),
        w.expected_quotient.len()
    );

    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        println!("\n== {strategy:?} ==");
        for nodes in [1usize, 2, 4] {
            let config = ClusterConfig {
                nodes,
                strategy,
                node_storage: StorageConfig::large(),
                ..Default::default()
            };
            let (q, report) =
                parallel_divide(&w.dividend, &w.divisor, &spec, &config).expect("run");
            assert_eq!(q.cardinality(), w.expected_quotient.len());
            println!(
                "  nodes={nodes}: {:>6.1} ms, network: {} msgs / {} tuples / {} bytes",
                report.elapsed.as_secs_f64() * 1000.0,
                report.network.messages,
                report.network.tuples,
                report.network.bytes,
            );
        }
    }

    println!("\n== bit-vector filtering (divisor partitioning, 4 nodes) ==");
    for bits in [None, Some(64 * 1024)] {
        let config = ClusterConfig {
            nodes: 4,
            strategy: Strategy::DivisorPartitioning,
            bit_vector_bits: bits,
            node_storage: StorageConfig::large(),
            ..Default::default()
        };
        let (q, report) = parallel_divide(&w.dividend, &w.divisor, &spec, &config).expect("run");
        assert_eq!(
            q.cardinality(),
            w.expected_quotient.len(),
            "filter must not change result"
        );
        println!(
            "  filter={:<9} shipped {} tuples ({} dropped at the scan site)",
            bits.map_or("off".into(), |b| format!("{b} bits")),
            report.network.tuples,
            report.filtered_tuples,
        );
    }
    println!("\nThe noise tuples (4 of every 24) never leave the scan site when the");
    println!("filter is on — the paper's Babb-style reduction of dividend traffic.");
}
