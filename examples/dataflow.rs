//! Hash-division inside a demand-driven dataflow plan (Section 3.3).
//!
//! The paper's first two observations about hash-division:
//!
//! 1. it "does not require a stop-and-go operator on its input ... it can
//!    smoothly receive its inputs from a dataflow query processing
//!    system" — here its dividend arrives through a selection plan, and
//! 2. with the early-output modification "the algorithm can also be used
//!    as a producer in a dataflow query processing system" — here its
//!    quotient streams through a projection into a consumer that stops
//!    after the first few results, never materializing the rest.
//!
//! ```text
//! cargo run --example dataflow
//! ```

use reldiv::core::hash_division::HashDivision;
use reldiv::exec::filter::{int_equals, Filter};
use reldiv::exec::op::Operator;
use reldiv::exec::scan::{load_relation, FileScan};
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema};
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::{MemoryPool, StorageManager};
use reldiv::{DivisionSpec, HashDivisionMode};

fn main() {
    // Transcript (student-id, course-no, grade): students 0..999, each
    // enrolled in all 20 courses; only grade-4 rows should count toward
    // the for-all condition ("took every course with the top grade").
    let schema = Schema::new(vec![
        Field::int("student-id"),
        Field::int("course-no"),
        Field::int("grade"),
    ]);
    let mut rows = Vec::new();
    for s in 0..1000i64 {
        for c in 0..20i64 {
            // Students divisible by 7 get a grade-3 blemish in course 13.
            let grade = if s % 7 == 0 && c == 13 { 3 } else { 4 };
            rows.push(ints(&[s, c, grade]));
        }
    }
    let transcript = Relation::from_tuples(schema, rows).expect("transcript conforms");
    let courses = Relation::from_tuples(
        Schema::new(vec![Field::int("course-no")]),
        (0..20).map(|c| ints(&[c])).collect(),
    )
    .expect("courses conform");

    let storage = StorageManager::shared(StorageConfig::large());
    let transcript_file = load_relation(&storage, &transcript).expect("load");

    // Upstream dataflow: scan -> select grade = 4 -> (sid, cno, grade).
    // Hash-division consumes this stream directly; no sort, no
    // materialization.
    let graded = Filter::new(
        Box::new(FileScan::new(
            storage.clone(),
            transcript_file,
            transcript.schema().clone(),
        )),
        int_equals(2, 4),
    );
    let spec = DivisionSpec::new(
        transcript.schema(),
        courses.schema(),
        vec![1],    // course-no is the divisor attribute
        vec![0, 2], // (student-id, grade) form the quotient...
    );
    // ...except grade is constant 4 after the filter, so the quotient is
    // effectively per-student. (A projection before division would also
    // work; keeping the grade demonstrates multi-column quotients.)
    let spec = spec.expect("spec validates");

    let mut division = HashDivision::new(
        Box::new(graded),
        Box::new(reldiv::exec::scan::MemScan::new(courses)),
        spec,
        HashDivisionMode::EarlyOut,
        MemoryPool::unbounded(),
    )
    .expect("plan");

    // Downstream consumer: pull just the first 5 quotient tuples, then
    // stop — the rest of the dividend stream is never consumed.
    division.open().expect("open");
    let mut first_five = Vec::new();
    while first_five.len() < 5 {
        match division.next().expect("next") {
            Some(t) => first_five.push(t.value(0).as_int().expect("sid")),
            None => break,
        }
    }
    let stats_at_5 = division.stats();
    println!("first 5 perfect students: {first_five:?}");
    println!(
        "candidates tracked when the 5th was produced: {} (of 1000 students)",
        stats_at_5.candidates
    );
    assert!(
        stats_at_5.candidates < 1000,
        "early output must not have consumed the whole dividend"
    );

    // Drain the rest to check the full answer.
    let mut total = first_five.len();
    while division.next().expect("next").is_some() {
        total += 1;
    }
    division.close().expect("close");
    let expected = (0..1000).filter(|s| s % 7 != 0).count();
    println!("total perfect students: {total} (expected {expected})");
    assert_eq!(total, expected);
    println!("\nhash-division consumed a filtered stream and produced incrementally —");
    println!("a pipeline member on both sides, as Section 3.3 describes.");
}
