//! The cost-based algorithm chooser in action.
//!
//! Section 5.2 of the paper: "If the dividend or the divisor are results
//! of other database operations ... the possible error in the selectivity
//! estimate makes it imperative to choose the division algorithm very
//! carefully." This example asks the analytical model for the cheapest
//! *correct* algorithm under different input properties, then runs the
//! choice to demonstrate it produces the right quotient.
//!
//! ```text
//! cargo run --example optimizer
//! ```

use reldiv::costmodel::planner::candidates;
use reldiv::costmodel::PlannerInput;
use reldiv::workload::WorkloadSpec;
use reldiv::{divide_relations, Algorithm};

fn show(label: &str, input: &PlannerInput) -> Algorithm {
    println!("\n{label}");
    println!(
        "  |S|={}, |Q|={}, |R|={}, restricted={}, duplicate-free={}",
        input.divisor_size,
        input.quotient_size,
        input
            .dividend_size
            .unwrap_or(input.divisor_size * input.quotient_size),
        input.restricted_divisor,
        input.duplicate_free
    );
    let ranked = candidates(input);
    for (i, (alg, cost)) in ranked.iter().enumerate() {
        let marker = if i == 0 { "->" } else { "  " };
        println!("  {marker} {alg:?}: {cost:.0} model-ms");
    }
    let chosen: Algorithm = ranked[0].0.into();
    println!("  chosen: {}", chosen.label());
    chosen
}

fn main() {
    // Case 1: the paper's first example — the divisor is ALL courses, the
    // inputs are key projections. Hash aggregation without a join wins
    // (the paper: hash-division is "only about 10% slower than the
    // fastest algorithm considered").
    let case1 = PlannerInput {
        divisor_size: 400,
        quotient_size: 400,
        dividend_size: None,
        restricted_divisor: false,
        duplicate_free: true,
    };
    let alg1 = show("case 1: unrestricted divisor, unique inputs", &case1);
    assert_eq!(alg1, Algorithm::HashAggregation { join: false });

    // Case 2: the paper's second example — the divisor was restricted by
    // a selection (database courses only), so aggregation needs a
    // semi-join and hash-division takes the lead.
    let case2 = PlannerInput {
        restricted_divisor: true,
        ..case1
    };
    let alg2 = show("case 2: restricted divisor (selection upstream)", &case2);
    assert!(matches!(alg2, Algorithm::HashDivision { .. }));

    // Case 3: duplicates possible (inputs not key projections): hash
    // aggregation is ruled out entirely; hash-division is "both fast and
    // general".
    let case3 = PlannerInput {
        duplicate_free: false,
        ..case2
    };
    let alg3 = show("case 3: restricted divisor AND possible duplicates", &case3);
    assert!(matches!(alg3, Algorithm::HashDivision { .. }));

    // Run the case-3 choice end to end on a workload with noise and
    // duplicates to show the recommendation is safe.
    let w = WorkloadSpec {
        divisor_size: 40,
        quotient_size: 60,
        noise_per_group: 3,
        incomplete_groups: 20,
        dividend_copies: 2,
        divisor_copies: 2,
        ..Default::default()
    }
    .generate(8);
    let q = divide_relations(&w.dividend, &w.divisor, alg3).expect("divide");
    let mut got: Vec<i64> = q
        .tuples()
        .iter()
        .map(|t| t.value(0).as_int().expect("int"))
        .collect();
    got.sort_unstable();
    assert_eq!(got, w.expected_quotient);
    println!(
        "\nran case 3's choice on a noisy, duplicated workload: {} quotient tuples, correct.",
        got.len()
    );
}
