//! Quickstart: the paper's Figure 2 worked example, three ways.
//!
//! "Find the students who have taken all database courses" — Ann and
//! Barb's transcripts divided by the two database courses. Only Ann took
//! both.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use reldiv::mem::hash_divide;
use reldiv::rel::schema::Field;
use reldiv::rel::{Relation, Schema, Tuple, Value};
use reldiv::{divide_relations, Algorithm, HashDivisionMode};

fn main() {
    // ---- 1. The generic in-memory API on plain Rust data ---------------
    let transcript = [
        ("Ann", "Database1"),
        ("Barb", "Database2"),
        ("Ann", "Database2"),
        ("Barb", "Optics"),
    ];
    let courses = ["Database1", "Database2"];
    let quotient = hash_divide(transcript, courses);
    println!("in-memory hash_divide          -> {quotient:?}");
    assert_eq!(quotient, vec!["Ann"]);

    // ---- 2. The relational API ----------------------------------------
    let transcript_rel = Relation::from_tuples(
        Schema::new(vec![Field::str("student", 8), Field::str("course", 12)]),
        [
            ("Ann", "Database1"),
            ("Barb", "Database2"),
            ("Ann", "Database2"),
            ("Barb", "Optics"),
        ]
        .iter()
        .map(|&(s, c)| Tuple::new(vec![Value::from(s), Value::from(c)]))
        .collect(),
    )
    .expect("transcript conforms to schema");
    let courses_rel = Relation::from_tuples(
        Schema::new(vec![Field::str("course", 12)]),
        ["Database1", "Database2"]
            .iter()
            .map(|&c| Tuple::new(vec![Value::from(c)]))
            .collect(),
    )
    .expect("courses conform to schema");

    // ---- 3. The four algorithms of the paper agree ---------------------
    for algorithm in [
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        },
    ] {
        let q =
            divide_relations(&transcript_rel, &courses_rel, algorithm).expect("division succeeds");
        let names: Vec<String> = q.tuples().iter().map(|t| t.value(0).to_string()).collect();
        println!("{:<30} -> {names:?}", algorithm.label());
        assert_eq!(names, vec!["Ann"]);
    }
    println!("\nAll algorithms found that only Ann took both database courses.");

    // ---- 4. Why the paper's second example needs a semi-join -----------
    // The divisor here is a *restricted* set of courses (only the
    // database ones), but Barb's transcript also contains Optics. An
    // aggregation plan WITHOUT the semi-join counts that tuple and
    // wrongly concludes Barb took "as many courses as there are database
    // courses". This is exactly the trap Section 2.2 describes.
    for algorithm in [
        Algorithm::SortAggregation { join: false },
        Algorithm::HashAggregation { join: false },
    ] {
        let q =
            divide_relations(&transcript_rel, &courses_rel, algorithm).expect("division succeeds");
        let mut names: Vec<String> = q.tuples().iter().map(|t| t.value(0).to_string()).collect();
        names.sort();
        println!(
            "{:<30} -> {names:?}  (WRONG without the semi-join!)",
            algorithm.label()
        );
        assert_eq!(names, vec!["Ann", "Barb"], "the documented failure mode");
    }
    println!("\nCounting without a semi-join admits Barb — restricted divisors need the join.");
}
