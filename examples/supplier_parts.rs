//! Codd's classic division example: suppliers who supply *every* part in
//! a project's bill of materials — with duplicates, irrelevant parts, and
//! an empty bill, showing the semantics hash-division gives for free.
//!
//! ```text
//! cargo run --example supplier_parts
//! ```

use reldiv::mem::hash_divide;
use reldiv::rel::schema::Field;
use reldiv::rel::{Relation, Schema, Tuple, Value};
use reldiv::{divide_relations, Algorithm, HashDivisionMode};

fn shipments() -> Vec<(&'static str, &'static str)> {
    vec![
        // Acme supplies everything, with a duplicated shipment row.
        ("acme", "bolt"),
        ("acme", "bolt"),
        ("acme", "nut"),
        ("acme", "washer"),
        ("acme", "gear"),
        // Bolts-R-Us sells bolts and nuts only.
        ("bolts-r-us", "bolt"),
        ("bolts-r-us", "nut"),
        // Gears+ sells gears and an exotic part no project needs.
        ("gears+", "gear"),
        ("gears+", "flux-capacitor"),
        // Widget Works covers the bill of materials exactly.
        ("widget-works", "bolt"),
        ("widget-works", "nut"),
        ("widget-works", "washer"),
    ]
}

fn main() {
    let bill_of_materials = ["bolt", "nut", "washer"];

    // ---- in-memory API: duplicates and noise are harmless -------------
    let who = hash_divide(shipments(), bill_of_materials);
    println!("suppliers covering {bill_of_materials:?}: {who:?}");
    assert_eq!(who, vec!["acme", "widget-works"]);

    // An empty bill of materials is vacuously covered by every supplier
    // that appears at all.
    let everyone = hash_divide(shipments(), Vec::<&str>::new());
    println!("suppliers covering the empty bill:   {everyone:?}");
    assert_eq!(everyone.len(), 4);

    // ---- relational API across all algorithms --------------------------
    let supplies = Relation::from_tuples(
        Schema::new(vec![Field::str("supplier", 16), Field::str("part", 16)]),
        shipments()
            .into_iter()
            .map(|(s, p)| Tuple::new(vec![Value::from(s), Value::from(p)]))
            .collect(),
    )
    .expect("shipments conform");
    let bom = Relation::from_tuples(
        Schema::new(vec![Field::str("part", 16)]),
        bill_of_materials
            .iter()
            .map(|&p| Tuple::new(vec![Value::from(p)]))
            .collect(),
    )
    .expect("bill conforms");

    println!("\nper-algorithm (the shipments table contains duplicates, so the");
    println!("aggregate plans silently run their duplicate-elimination steps):");
    for algorithm in [
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ] {
        let q = divide_relations(&supplies, &bom, algorithm).expect("divide");
        let mut names: Vec<String> = q.tuples().iter().map(|t| t.value(0).to_string()).collect();
        names.sort();
        println!("  {:<30} -> {names:?}", algorithm.label());
        assert_eq!(names, vec!["acme".to_string(), "widget-works".to_string()]);
    }
}
