//! Profile-correctness suite: the `EXPLAIN ANALYZE` span trees must
//! *agree with independent instruments*, not merely exist.
//!
//! For every algorithm column of the paper's tables, over file-backed
//! inputs on a paper-sized (small) buffer pool:
//!
//! * the root span's physical page reads/writes equal the buffer
//!   manager's own miss/writeback deltas **exactly** — the profiler and
//!   [`BufferStats`](reldiv::storage::buffer::BufferStats) are two views
//!   of the same events;
//! * the root span's abstract-operation counts equal the thread-local
//!   counter deltas around the call;
//! * wall time is consistent: children never (modulo timer granularity)
//!   sum past their parent, recursively, and the root never exceeds the
//!   externally clocked elapsed time;
//! * the profiled quotient is the same relation the unprofiled path
//!   computes, and disabling profiling really builds the bare plan
//!   (`profile: None` adds zero spans — checked via a fresh sink).

use std::time::Instant;

use reldiv::exec::scan::load_relation;
use reldiv::rel::counters;
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema};
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::StorageManager;
use reldiv::{divide_profiled, DivisionConfig, DivisionSpec, ProfileNode, Source};
use reldiv::{divide_relations, Algorithm};

fn workload() -> (Relation, Relation) {
    let mut rows = Vec::new();
    for q in 0..80i64 {
        for d in 0..=(q % 13) {
            rows.push(ints(&[q, d]));
        }
        rows.push(ints(&[q, 900 + q])); // noise column value
    }
    let dividend =
        Relation::from_tuples(Schema::new(vec![Field::int("q"), Field::int("d")]), rows).unwrap();
    let divisor = Relation::from_tuples(
        Schema::new(vec![Field::int("d")]),
        (0..9i64).map(|d| ints(&[d])).collect(),
    )
    .unwrap();
    (dividend, divisor)
}

/// Children must not (beyond timer slack) outlast their parent, at every
/// level of the tree.
fn assert_wall_nesting(node: &ProfileNode, slack_micros: u64) {
    let child_sum: u64 = node.children.iter().map(|c| c.wall_micros).sum();
    assert!(
        child_sum <= node.wall_micros + slack_micros,
        "span {:?}: children sum to {child_sum}us, parent is {}us",
        node.label,
        node.wall_micros
    );
    for child in &node.children {
        assert_wall_nesting(child, slack_micros);
    }
}

#[test]
fn profiled_io_matches_buffer_stats_exactly_for_every_algorithm() {
    let (dividend, divisor) = workload();
    for algorithm in Algorithm::table_columns() {
        // A small pool so sorts and hash tables do real page I/O.
        let storage = StorageManager::shared(StorageConfig::paper());
        let dividend_file = load_relation(&storage, &dividend).unwrap();
        let divisor_file = load_relation(&storage, &divisor).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();

        let before_io = storage.borrow().buffer_stats();
        let before_ops = counters::snapshot();
        let clock = Instant::now();
        let (quotient, _report, profile) = divide_profiled(
            &storage,
            &Source::from_file(dividend_file, dividend.schema().clone()),
            &Source::from_file(divisor_file, divisor.schema().clone()),
            &spec,
            algorithm,
            &DivisionConfig::default(),
        )
        .unwrap();
        let elapsed = clock.elapsed().as_micros() as u64;
        let ops_delta = counters::snapshot().since(&before_ops);
        let io_delta = storage.borrow().buffer_stats().since(&before_io);

        let root = &profile.root;
        // The instrument check: profiler page counts ARE the buffer
        // manager's miss/writeback deltas, to the page.
        assert_eq!(
            root.pages_read, io_delta.misses,
            "{algorithm:?}: profiled reads vs buffer misses"
        );
        assert_eq!(
            root.pages_written, io_delta.writebacks,
            "{algorithm:?}: profiled writes vs buffer writebacks"
        );
        // The root span opens after spec validation and closes after the
        // quotient is materialized; nothing else runs on this thread, so
        // the abstract-operation deltas agree exactly too.
        assert_eq!(root.ops, ops_delta, "{algorithm:?}: profiled ops");

        // Wall-clock consistency, recursively.
        assert!(root.wall_micros <= elapsed, "{algorithm:?}");
        assert_wall_nesting(root, 1_000);

        // The profiled plan computes the same quotient.
        let direct = divide_relations(&dividend, &divisor, algorithm).unwrap();
        let mut got: Vec<i64> = quotient
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        let mut want: Vec<i64> = direct
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{algorithm:?}: profiled quotient differs");

        // The tree is substantial: root plus the plan's operators.
        assert!(
            root.node_count() >= 3,
            "{algorithm:?}: only {} spans",
            root.node_count()
        );
    }
}

/// `profile: None` must build exactly the unprofiled plan: a sink that
/// is never installed sees zero spans, and the plan still answers.
#[test]
fn disabled_profiling_creates_no_spans() {
    let (dividend, divisor) = workload();
    let storage = StorageManager::shared(StorageConfig::paper());
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
    let sink = reldiv::core::ProfileSink::new();
    let config = DivisionConfig::default();
    assert!(config.profile.is_none(), "profiling is opt-in");
    reldiv::divide(
        &storage,
        &Source::from_relation(&dividend),
        &Source::from_relation(&divisor),
        &spec,
        Algorithm::Naive,
        &config,
    )
    .unwrap();
    assert_eq!(sink.span_count(), 0, "no span leaked into an unused sink");
}
