//! Property tests of the execution engine itself: the three join
//! implementations agree, external sort matches the standard library's
//! sort under every mode and memory budget, and the generic in-memory API
//! matches the engine.

use proptest::prelude::*;
use reldiv::exec::index_join::{build_index, IndexJoin};
use reldiv::exec::merge_join::{JoinMode, MergeJoin};
use reldiv::exec::op::{collect, Operator};
use reldiv::exec::scan::{load_relation, MemScan};
use reldiv::exec::sort::{Sort, SortConfig, SortMode};
use reldiv::mem::hash_divide;
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema, Tuple};
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::{MemoryPool, StorageManager};
use reldiv::{divide_relations, Algorithm, HashDivisionMode};

fn rel2(name_a: &str, name_b: &str, rows: &[(i64, i64)]) -> Relation {
    let schema = Schema::new(vec![Field::int(name_a), Field::int(name_b)]);
    Relation::from_tuples(schema, rows.iter().map(|&(a, b)| ints(&[a, b])).collect())
        .expect("rows conform")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Merge join, hash join, and index join produce the same bag of
    /// results on arbitrary inputs (both Inner and LeftSemi).
    #[test]
    fn three_join_implementations_agree(
        outer in prop::collection::vec((0i64..12, 0i64..100), 0..60),
        inner in prop::collection::vec((0i64..12, 0i64..100), 0..60),
    ) {
        let outer_rel = rel2("k", "x", &outer);
        let inner_rel = rel2("k", "y", &inner);
        for mode in [JoinMode::Inner, JoinMode::LeftSemi] {
            // Merge join needs sorted inputs.
            let mut sorted_outer = outer_rel.clone();
            sorted_outer.sort_by_keys(&[0, 1]);
            let mut sorted_inner = inner_rel.clone();
            sorted_inner.sort_by_keys(&[0, 1]);
            let mj = collect(Box::new(
                MergeJoin::new(
                    Box::new(MemScan::new(sorted_outer)),
                    Box::new(MemScan::new(sorted_inner)),
                    vec![0],
                    vec![0],
                    mode,
                )
                .expect("merge join plan"),
            ))
            .expect("merge join run");

            let hj = collect(Box::new(
                reldiv::exec::hash_join::HashJoin::new(
                    Box::new(MemScan::new(outer_rel.clone())),
                    Box::new(MemScan::new(inner_rel.clone())),
                    vec![0],
                    vec![0],
                    mode,
                )
                .expect("hash join plan")
                .with_pool(MemoryPool::unbounded()),
            ))
            .expect("hash join run");

            let storage = StorageManager::shared(StorageConfig::large());
            let file = load_relation(&storage, &inner_rel).expect("load inner");
            let indexed = build_index(&storage, file, inner_rel.schema().clone(), vec![0])
                .expect("build index");
            let ij = collect(Box::new(
                IndexJoin::new(
                    storage,
                    Box::new(MemScan::new(outer_rel.clone())),
                    indexed,
                    vec![0],
                    mode,
                )
                .expect("index join plan"),
            ))
            .expect("index join run");

            prop_assert_eq!(mj.bag_counts(), hj.bag_counts(), "merge vs hash, {:?}", mode);
            prop_assert_eq!(hj.bag_counts(), ij.bag_counts(), "hash vs index, {:?}", mode);
        }
    }

    /// External sort equals std's stable sort, for any memory budget and
    /// fan-in (spilling included).
    #[test]
    fn external_sort_matches_std_sort(
        rows in prop::collection::vec((0i64..30, 0i64..30), 0..300),
        memory in prop::sample::select(vec![640usize, 2048, 1 << 20]),
        fan_in in 2usize..9,
    ) {
        let rel = rel2("a", "b", &rows);
        let storage = StorageManager::shared(StorageConfig::paper());
        let sorted = collect(Box::new(
            Sort::new(
                storage,
                Box::new(MemScan::new(rel)),
                vec![0, 1],
                SortMode::Plain,
                SortConfig { memory_bytes: memory, fan_in },
            )
            .expect("sort plan"),
        ))
        .expect("sort run");
        let mut expected = rows.clone();
        expected.sort();
        let expected: Vec<Tuple> = expected.iter().map(|&(a, b)| ints(&[a, b])).collect();
        prop_assert_eq!(sorted.tuples(), expected.as_slice());
    }

    /// Distinct sort equals a BTreeSet of the rows, under spilling.
    #[test]
    fn distinct_sort_matches_a_set_model(
        rows in prop::collection::vec((0i64..10, 0i64..10), 0..300),
        memory in prop::sample::select(vec![640usize, 1 << 20]),
    ) {
        let rel = rel2("a", "b", &rows);
        let storage = StorageManager::shared(StorageConfig::paper());
        let sorted = collect(Box::new(
            Sort::new(
                storage,
                Box::new(MemScan::new(rel)),
                vec![0, 1],
                SortMode::Distinct,
                SortConfig { memory_bytes: memory, fan_in: 4 },
            )
            .expect("sort plan"),
        ))
        .expect("sort run");
        let expected: Vec<Tuple> = rows
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|&(a, b)| ints(&[a, b]))
            .collect();
        prop_assert_eq!(sorted.tuples(), expected.as_slice());
    }

    /// The generic in-memory API equals the engine's hash-division on the
    /// same data.
    #[test]
    fn generic_api_matches_engine(
        rows in prop::collection::vec((0i64..8, 0i64..10), 0..100),
        divisor in prop::collection::vec(0i64..10, 0..10),
    ) {
        let mut mem_result =
            hash_divide(rows.iter().copied(), divisor.iter().copied());
        mem_result.sort_unstable();
        let dividend = rel2("q", "d", &rows);
        let divisor_rel = Relation::from_tuples(
            Schema::new(vec![Field::int("d")]),
            divisor.iter().map(|&d| ints(&[d])).collect(),
        )
        .expect("divisor conforms");
        let engine = divide_relations(
            &dividend,
            &divisor_rel,
            Algorithm::HashDivision { mode: HashDivisionMode::Standard },
        )
        .expect("engine divide");
        let mut engine_result: Vec<i64> = engine
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().expect("int"))
            .collect();
        engine_result.sort_unstable();
        prop_assert_eq!(mem_result, engine_result);
    }
}

/// The sort operator honors the open-next-close protocol when reopened.
#[test]
fn sort_can_be_reopened_after_close() {
    let rel = rel2("a", "b", &[(3, 0), (1, 0), (2, 0)]);
    let storage = StorageManager::shared(StorageConfig::paper());
    let mut s = Sort::new(
        storage,
        Box::new(MemScan::new(rel)),
        vec![0],
        SortMode::Plain,
        SortConfig::default(),
    )
    .expect("plan");
    s.open().expect("open");
    assert_eq!(s.next().expect("next").expect("tuple"), ints(&[1, 0]));
    s.close().expect("close");
    s.open().expect("reopen");
    assert_eq!(s.next().expect("next").expect("tuple"), ints(&[1, 0]));
    s.close().expect("close");
}
