//! Property tests: all division algorithms compute the same quotient, and
//! that quotient satisfies the algebraic laws of relational division.
//!
//! The oracle is a brute-force set implementation
//! ([`reldiv::workload::brute_force_divide`]); inputs are drawn from small
//! domains so duplicates, non-matching tuples, and complete groups all
//! occur with high probability.

use proptest::prelude::*;
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema};
use reldiv::workload::brute_force_divide;
use reldiv::{divide_relations, Algorithm, HashDivisionMode};

fn dividend_rel(rows: &[(i64, i64)]) -> Relation {
    let schema = Schema::new(vec![Field::int("q"), Field::int("d")]);
    Relation::from_tuples(schema, rows.iter().map(|&(q, d)| ints(&[q, d])).collect())
        .expect("rows conform")
}

fn divisor_rel(vals: &[i64]) -> Relation {
    let schema = Schema::new(vec![Field::int("d")]);
    Relation::from_tuples(schema, vals.iter().map(|&d| ints(&[d])).collect()).expect("rows conform")
}

/// Every algorithm that is total on arbitrary bag inputs.
fn general_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        },
    ]
}

fn sorted_quotient(rel: &Relation) -> Vec<i64> {
    let mut v: Vec<i64> = rel
        .tuples()
        .iter()
        .map(|t| t.value(0).as_int().expect("int quotient"))
        .collect();
    v.sort_unstable();
    v
}

fn oracle(dividend: &Relation, divisor: &Relation) -> Vec<i64> {
    let mut v: Vec<i64> = brute_force_divide(dividend, divisor, &[1], &[0])
        .iter()
        .map(|t| t.value(0).as_int().expect("int quotient"))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central equivalence: on arbitrary bags (duplicates and noise
    /// included) every general algorithm matches the brute-force oracle.
    #[test]
    fn all_algorithms_match_brute_force(
        rows in prop::collection::vec((0i64..6, 0i64..8), 0..120),
        divisor in prop::collection::vec(0i64..8, 0..12),
    ) {
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&divisor);
        let expected = oracle(&dividend, &divisor);
        for alg in general_algorithms() {
            let got = divide_relations(&dividend, &divisor, alg).expect("divide");
            prop_assert_eq!(
                sorted_quotient(&got),
                expected.clone(),
                "{:?} disagrees with the oracle",
                alg
            );
        }
    }

    /// On duplicate-free inputs the no-join aggregation plans and the
    /// counter-only hash-division variant also agree — provided the
    /// dividend is restricted to divisor values (their documented
    /// precondition).
    #[test]
    fn restricted_unique_inputs_admit_every_variant(
        groups in prop::collection::btree_map(0i64..6, prop::collection::btree_set(0i64..6, 0..=6), 0..6),
        divisor in prop::collection::btree_set(0i64..6, 0..=6),
    ) {
        // Build a duplicate-free dividend whose divisor attributes are
        // all drawn from the divisor.
        let divisor_vals: Vec<i64> = divisor.iter().copied().collect();
        let mut rows = Vec::new();
        for (q, ds) in &groups {
            for d in ds {
                if divisor.contains(d) {
                    rows.push((*q, *d));
                }
            }
        }
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&divisor_vals);
        let expected = oracle(&dividend, &divisor);
        let mut algs = general_algorithms();
        algs.push(Algorithm::SortAggregation { join: false });
        algs.push(Algorithm::HashAggregation { join: false });
        algs.push(Algorithm::HashDivision { mode: HashDivisionMode::CounterOnly });
        for alg in algs {
            let got = divide_relations(&dividend, &divisor, alg).expect("divide");
            prop_assert_eq!(
                sorted_quotient(&got),
                expected.clone(),
                "{:?} disagrees on restricted unique inputs",
                alg
            );
        }
    }

    /// Algebraic law: (Q × S) ÷ S = Q for non-empty S.
    #[test]
    fn exact_product_divides_to_q(
        q_vals in prop::collection::btree_set(0i64..40, 1..20),
        s_vals in prop::collection::btree_set(0i64..40, 1..20),
    ) {
        let rows: Vec<(i64, i64)> = q_vals
            .iter()
            .flat_map(|&q| s_vals.iter().map(move |&s| (q, s)))
            .collect();
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&s_vals.iter().copied().collect::<Vec<_>>());
        let expected: Vec<i64> = q_vals.into_iter().collect();
        for alg in general_algorithms() {
            let got = divide_relations(&dividend, &divisor, alg).expect("divide");
            prop_assert_eq!(sorted_quotient(&got), expected.clone(), "{:?}", alg);
        }
    }

    /// Monotonicity: growing the divisor can only shrink the quotient.
    #[test]
    fn growing_the_divisor_shrinks_the_quotient(
        rows in prop::collection::vec((0i64..6, 0i64..8), 0..80),
        divisor in prop::collection::btree_set(0i64..8, 0..8),
        extra in 0i64..8,
    ) {
        let dividend = dividend_rel(&rows);
        let small = divisor_rel(&divisor.iter().copied().collect::<Vec<_>>());
        let mut grown = divisor.clone();
        grown.insert(extra);
        let big = divisor_rel(&grown.into_iter().collect::<Vec<_>>());
        let alg = Algorithm::HashDivision { mode: HashDivisionMode::Standard };
        let q_small = sorted_quotient(&divide_relations(&dividend, &small, alg).expect("divide"));
        let q_big = sorted_quotient(&divide_relations(&dividend, &big, alg).expect("divide"));
        for q in &q_big {
            prop_assert!(q_small.contains(q), "quotient must shrink as the divisor grows");
        }
    }

    /// Duplicate insensitivity: replicating input tuples never changes
    /// the quotient of any general algorithm.
    #[test]
    fn duplicates_never_change_the_quotient(
        rows in prop::collection::vec((0i64..5, 0i64..6), 0..40),
        divisor in prop::collection::vec(0i64..6, 0..8),
        copies in 2usize..4,
    ) {
        let base_dividend = dividend_rel(&rows);
        let base_divisor = divisor_rel(&divisor);
        let mut dup_rows = Vec::new();
        for _ in 0..copies {
            dup_rows.extend_from_slice(&rows);
        }
        let mut dup_divisor_vals = Vec::new();
        for _ in 0..copies {
            dup_divisor_vals.extend_from_slice(&divisor);
        }
        let dup_dividend = dividend_rel(&dup_rows);
        let dup_divisor = divisor_rel(&dup_divisor_vals);
        for alg in general_algorithms() {
            let a = divide_relations(&base_dividend, &base_divisor, alg).expect("divide");
            let b = divide_relations(&dup_dividend, &dup_divisor, alg).expect("divide");
            prop_assert_eq!(sorted_quotient(&a), sorted_quotient(&b), "{:?}", alg);
        }
    }

    /// The quotient never contains a value absent from the dividend, and
    /// with a non-empty divisor every quotient value is paired with every
    /// divisor value.
    #[test]
    fn quotient_soundness(
        rows in prop::collection::vec((0i64..6, 0i64..8), 0..100),
        divisor in prop::collection::vec(0i64..8, 1..10),
    ) {
        let dividend = dividend_rel(&rows);
        let divisor_rel_ = divisor_rel(&divisor);
        let alg = Algorithm::HashDivision { mode: HashDivisionMode::Standard };
        let q = divide_relations(&dividend, &divisor_rel_, alg).expect("divide");
        let pairs: std::collections::HashSet<(i64, i64)> = rows.iter().copied().collect();
        for t in q.tuples() {
            let qv = t.value(0).as_int().expect("int");
            for &d in &divisor {
                prop_assert!(
                    pairs.contains(&(qv, d)),
                    "quotient value {} is missing divisor value {}",
                    qv, d
                );
            }
        }
    }
}

/// Deterministic edge cases, pinned outside proptest.
#[test]
fn edge_cases_pin_down_conventions() {
    let empty_dividend = dividend_rel(&[]);
    let empty_divisor = divisor_rel(&[]);
    let dividend = dividend_rel(&[(1, 5), (2, 5), (1, 6)]);
    let divisor = divisor_rel(&[5, 6]);
    for alg in general_algorithms() {
        // ∅ ÷ ∅ = ∅
        let q = divide_relations(&empty_dividend, &empty_divisor, alg).expect("divide");
        assert!(q.is_empty(), "{alg:?}");
        // ∅ ÷ S = ∅
        let q = divide_relations(&empty_dividend, &divisor, alg).expect("divide");
        assert!(q.is_empty(), "{alg:?}");
        // R ÷ ∅ = distinct π_q(R)
        let q = divide_relations(&dividend, &empty_divisor, alg).expect("divide");
        assert_eq!(sorted_quotient(&q), vec![1, 2], "{alg:?}");
        // The normal case.
        let q = divide_relations(&dividend, &divisor, alg).expect("divide");
        assert_eq!(sorted_quotient(&q), vec![1], "{alg:?}");
    }
}

mod string_inputs {
    use super::*;
    use reldiv::rel::{Tuple, Value};

    fn str_dividend(rows: &[(u8, u8)]) -> Relation {
        // Small string domains force collisions; width-8 columns.
        let schema = Schema::new(vec![Field::str("supplier", 8), Field::str("part", 8)]);
        Relation::from_tuples(
            schema,
            rows.iter()
                .map(|&(s, p)| {
                    Tuple::new(vec![
                        Value::from(format!("s{s}")),
                        Value::from(format!("p{p}")),
                    ])
                })
                .collect(),
        )
        .expect("rows conform")
    }

    fn str_divisor(vals: &[u8]) -> Relation {
        let schema = Schema::new(vec![Field::str("part", 8)]);
        Relation::from_tuples(
            schema,
            vals.iter()
                .map(|&p| Tuple::new(vec![Value::from(format!("p{p}"))]))
                .collect(),
        )
        .expect("rows conform")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// String-typed divisions agree across all general algorithms,
        /// exercising the string comparison/hash/codec paths end to end.
        #[test]
        fn string_division_matches_brute_force(
            rows in prop::collection::vec((0u8..5, 0u8..6), 0..80),
            divisor in prop::collection::vec(0u8..6, 0..8),
        ) {
            let dividend = str_dividend(&rows);
            let divisor = str_divisor(&divisor);
            let brute = reldiv::workload::brute_force_divide(&dividend, &divisor, &[1], &[0]);
            let mut expected: Vec<String> =
                brute.iter().map(|t| t.value(0).to_string()).collect();
            expected.sort();
            for alg in crate::general_algorithms() {
                let got = divide_relations(&dividend, &divisor, alg).expect("divide");
                let mut names: Vec<String> =
                    got.tuples().iter().map(|t| t.value(0).to_string()).collect();
                names.sort();
                prop_assert_eq!(&names, &expected, "{:?}", alg);
            }
        }
    }
}
