//! Property tests for the overflow strategies (Section 3.4) and the
//! shared-nothing adaptation (Section 6): partitioned and parallel
//! executions must equal the plain in-memory division on every input.

use proptest::prelude::*;
use reldiv::core::api::{divide, DivisionConfig, OverflowPolicy, Source};
use reldiv::exec::scan::MemScan;
use reldiv::parallel::{parallel_divide, ClusterConfig, Strategy};
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema};
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::StorageManager;
use reldiv::workload::brute_force_divide;
use reldiv::{Algorithm, DivisionSpec, HashDivisionMode};

fn dividend_rel(rows: &[(i64, i64)]) -> Relation {
    let schema = Schema::new(vec![Field::int("q"), Field::int("d")]);
    Relation::from_tuples(schema, rows.iter().map(|&(q, d)| ints(&[q, d])).collect())
        .expect("rows conform")
}

fn divisor_rel(vals: &[i64]) -> Relation {
    let schema = Schema::new(vec![Field::int("d")]);
    Relation::from_tuples(schema, vals.iter().map(|&d| ints(&[d])).collect()).expect("rows conform")
}

fn oracle(dividend: &Relation, divisor: &Relation) -> Vec<i64> {
    let mut v: Vec<i64> = brute_force_divide(dividend, divisor, &[1], &[0])
        .iter()
        .map(|t| t.value(0).as_int().expect("int"))
        .collect();
    v.sort_unstable();
    v
}

fn sorted_quotient(rel: &Relation) -> Vec<i64> {
    let mut v: Vec<i64> = rel
        .tuples()
        .iter()
        .map(|t| t.value(0).as_int().expect("int"))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both overflow strategies equal the oracle for any partition count.
    #[test]
    fn partitioned_divisions_match_the_oracle(
        rows in prop::collection::vec((0i64..8, 0i64..10), 0..150),
        divisor in prop::collection::vec(0i64..10, 0..12),
        partitions in 1usize..9,
    ) {
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&divisor);
        let expected = oracle(&dividend, &divisor);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())
            .expect("spec");

        let qp = reldiv::core::overflow::quotient_partitioned(
            &storage,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            HashDivisionMode::Standard,
            partitions.max(2),
        ).expect("quotient partitioning");
        prop_assert_eq!(sorted_quotient(&qp), expected.clone(), "quotient partitioning");

        let dp = reldiv::core::overflow::divisor_partitioned(
            &storage,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            partitions,
        ).expect("divisor partitioning");
        prop_assert_eq!(sorted_quotient(&dp), expected.clone(), "divisor partitioning");
    }

    /// The Auto overflow policy produces the right answer under random
    /// (possibly insufficient) memory budgets — failure injection for the
    /// retry loop.
    #[test]
    fn auto_policy_survives_tight_memory(
        rows in prop::collection::vec((0i64..64, 0i64..6), 50..400),
        divisor in prop::collection::vec(0i64..6, 1..6),
        budget_kb in 2usize..64,
    ) {
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&divisor);
        let expected = oracle(&dividend, &divisor);
        let storage = StorageManager::shared(StorageConfig {
            work_memory_bytes: budget_kb * 1024,
            buffer_bytes: 1 << 22,
            ..StorageConfig::paper()
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())
            .expect("spec");
        let got = divide(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision { mode: HashDivisionMode::Standard },
            &DivisionConfig { overflow: OverflowPolicy::Auto, ..Default::default() },
        );
        match got {
            Ok(rel) => prop_assert_eq!(sorted_quotient(&rel), expected),
            Err(e) => {
                // Only legitimate failure: even 256 clusters cannot fit
                // (essentially impossible at these sizes — treat as a bug).
                prop_assert!(false, "Auto policy failed: {}", e);
            }
        }
    }

    /// Parallel execution equals the oracle for both strategies, any node
    /// count, with and without bit-vector filtering.
    #[test]
    fn parallel_division_matches_the_oracle(
        rows in prop::collection::vec((0i64..8, 0i64..10), 0..120),
        divisor in prop::collection::vec(0i64..10, 0..10),
        nodes in 1usize..5,
        filter_bits in prop::option::of(64usize..2048),
    ) {
        let dividend = dividend_rel(&rows);
        let divisor = divisor_rel(&divisor);
        let expected = oracle(&dividend, &divisor);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())
            .expect("spec");
        for strategy in [Strategy::QuotientPartitioning, Strategy::DivisorPartitioning] {
            let config = ClusterConfig {
                nodes,
                strategy,
                bit_vector_bits: if strategy == Strategy::DivisorPartitioning {
                    filter_bits
                } else {
                    None
                },
                ..Default::default()
            };
            let (rel, report) =
                parallel_divide(&dividend, &divisor, &spec, &config).expect("parallel run");
            prop_assert_eq!(
                sorted_quotient(&rel),
                expected.clone(),
                "{:?} nodes={} filter={:?}",
                strategy, nodes, filter_bits
            );
            prop_assert!(report.participating_nodes <= nodes);
        }
    }
}

/// A deterministic large-scale cross-check: a 60k-tuple workload under
/// the paper's tight memory forces overflow handling; the result must
/// still match the generator's ground truth.
#[test]
fn overflow_handles_a_workload_bigger_than_memory() {
    let w = reldiv::workload::WorkloadSpec {
        divisor_size: 25,
        quotient_size: 2_400,
        incomplete_groups: 600,
        noise_per_group: 0,
        ..Default::default()
    }
    .generate(4242);
    let storage = StorageManager::shared(StorageConfig {
        work_memory_bytes: 48 * 1024, // too small for ~3000 candidates
        buffer_bytes: 1 << 22,
        ..StorageConfig::paper()
    });
    let spec =
        DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema()).expect("spec");
    let got = divide(
        &storage,
        &Source::from_relation(&w.dividend),
        &Source::from_relation(&w.divisor),
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &DivisionConfig {
            assume_unique: true,
            overflow: OverflowPolicy::Auto,
            ..Default::default()
        },
    )
    .expect("auto overflow");
    assert_eq!(sorted_quotient(&got), w.expected_quotient);
}
