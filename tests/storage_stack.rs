//! Integration tests of the storage substrate: B+-trees against a model,
//! buffer-pool pressure during end-to-end divisions, and the experiment
//! harness's cost accounting.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reldiv::core::api::{divide, DivisionConfig};
use reldiv::rel::schema::Field;
use reldiv::rel::tuple::ints;
use reldiv::rel::{Relation, Schema};
use reldiv::storage::btree::BTree;
use reldiv::storage::file::Rid;
use reldiv::storage::manager::StorageConfig;
use reldiv::storage::{DiskId, PageId, StorageManager};
use reldiv::{Algorithm, DivisionSpec, HashDivisionMode};

/// B+-tree vs `BTreeMap` model under random interleaved operations.
#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u8),
    Delete(u16, u8),
    Search(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u16..200, 0u8..4).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        (0u16..200, 0u8..4).prop_map(|(k, v)| TreeOp::Delete(k, v)),
        (0u16..200).prop_map(TreeOp::Search),
        (0u16..200, 0u16..200).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

fn rid(v: u8) -> Rid {
    Rid {
        page: PageId::new(DiskId(0), v as u64),
        slot: v as u16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_matches_a_model(ops in prop::collection::vec(tree_op(), 1..400)) {
        let mut sm = StorageManager::new(StorageConfig {
            data_page_size: 256,
            run_page_size: 128,
            buffer_bytes: 1 << 20,
            work_memory_bytes: 1 << 20,
        });
        let mut tree = BTree::create(&mut sm, StorageManager::DATA_DISK).expect("create");
        // Model: multiset of (key, rid) pairs.
        let mut model: std::collections::BTreeSet<(u16, u8)> = Default::default();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    // The model is a set; skip duplicate (k, v) pairs so
                    // both sides stay comparable.
                    if model.insert((k, v)) {
                        tree.insert(&mut sm, &k.to_be_bytes(), rid(v)).expect("insert");
                    }
                }
                TreeOp::Delete(k, v) => {
                    let in_model = model.remove(&(k, v));
                    let deleted =
                        tree.delete(&mut sm, &k.to_be_bytes(), rid(v)).expect("delete");
                    prop_assert_eq!(deleted, in_model);
                }
                TreeOp::Search(k) => {
                    let mut got = tree.search(&mut sm, &k.to_be_bytes()).expect("search");
                    got.sort();
                    let mut want: Vec<Rid> = model
                        .iter()
                        .filter(|(mk, _)| *mk == k)
                        .map(|&(_, v)| rid(v))
                        .collect();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree
                        .range(&mut sm, &lo.to_be_bytes(), &hi.to_be_bytes())
                        .expect("range");
                    let want: Vec<(u16, u8)> = model
                        .iter()
                        .filter(|(k, _)| (lo..hi).contains(k))
                        .copied()
                        .collect();
                    prop_assert_eq!(got.len(), want.len());
                    for ((k_bytes, _), (k, _)) in got.iter().zip(&want) {
                        let expected = k.to_be_bytes();
                        prop_assert_eq!(k_bytes.as_slice(), expected.as_slice());
                    }
                }
            }
            let count = tree.validate(&mut sm).expect("validate");
            prop_assert_eq!(count as usize, model.len());
        }
    }
}

/// End-to-end division from record files under severe buffer pressure:
/// a 16-frame pool forces constant eviction and re-reads, but the answer
/// must not change.
#[test]
fn division_survives_a_tiny_buffer_pool() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut rows = Vec::new();
    for q in 0..300i64 {
        for d in 0..10i64 {
            if q % 3 != 0 || d < 9 {
                rows.push(ints(&[q, d]));
            }
        }
    }
    // Shuffle so file order is arbitrary.
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }
    let dividend = Relation::from_tuples(Schema::new(vec![Field::int("q"), Field::int("d")]), rows)
        .expect("dividend");
    let divisor = Relation::from_tuples(
        Schema::new(vec![Field::int("d")]),
        (0..10).map(|d| ints(&[d])).collect(),
    )
    .expect("divisor");
    // Multiples of 3 are missing course 9 and must not qualify.
    let expected: Vec<i64> = (0..300).filter(|q| q % 3 != 0).collect();

    let storage = StorageManager::shared(StorageConfig {
        data_page_size: 1024,
        run_page_size: 256,
        buffer_bytes: 16 * 1024, // 16 frames of 1 KB
        work_memory_bytes: 1 << 22,
    });
    let d_src = reldiv::core::api::load_source(&storage, &dividend).expect("load");
    let s_src = reldiv::core::api::load_source(&storage, &divisor).expect("load");
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).expect("spec");
    for algorithm in [
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ] {
        let q = divide(
            &storage,
            &d_src,
            &s_src,
            &spec,
            algorithm,
            &DivisionConfig {
                assume_unique: true,
                sort: reldiv::exec::sort::SortConfig {
                    memory_bytes: 8 * 1024,
                    fan_in: 8,
                },
                ..Default::default()
            },
        )
        .expect("divide");
        let mut got: Vec<i64> = q
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().expect("int"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected, "{algorithm:?}");
    }
    let stats = storage.borrow().buffer_stats();
    assert!(
        stats.evictions > 0,
        "the tiny pool must have evicted: {stats:?}"
    );
}

/// The harness's cost accounting is self-consistent: I/O cost equals the
/// Table 3 pricing of the collected statistics, and modeled CPU equals
/// the Table 1 pricing of the counted operations.
#[test]
fn harness_cost_accounting_is_consistent() {
    let w = reldiv::workload::WorkloadSpec {
        divisor_size: 100,
        quotient_size: 100,
        ..Default::default()
    }
    .generate(3);
    let m = reldiv_bench::run_division_experiment(
        &w.dividend,
        &w.divisor,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &DivisionConfig {
            assume_unique: true,
            ..Default::default()
        },
    );
    let params = reldiv::storage::IoCostParams::paper();
    assert!((m.io_ms - params.cost_ms(&m.io)).abs() < 1e-9);
    let units = reldiv_costmodel::CostUnits::paper();
    let cpu = reldiv_costmodel::units::price_ops(
        &units,
        m.ops.comparisons,
        m.ops.hashes,
        m.ops.moves,
        m.ops.bitops,
    );
    assert!((m.cpu_ms_modeled - cpu).abs() < 1e-9);
    assert_eq!(m.quotient_cardinality, 100);
    // Hash-division on R = Q × S: 2 hashes per dividend tuple plus one
    // per divisor tuple, and at least one bit op per dividend tuple.
    assert!(m.ops.hashes >= 2 * m.dividend_size + m.divisor_size);
    assert!(m.ops.bitops >= m.dividend_size);
}
