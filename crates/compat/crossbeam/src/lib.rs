//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides the [`channel`] module the workspace uses: multi-producer
//! multi-consumer channels with `unbounded` and `bounded` constructors,
//! cloneable senders *and* receivers, and crossbeam's disconnection
//! semantics (send fails once every receiver is gone; recv fails once the
//! queue is empty and every sender is gone). Built on a mutex-protected
//! deque with two condition variables — not lock-free, but semantically
//! faithful and plenty fast for the simulated cluster and the query
//! service.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signaled when the queue gains an item or the last sender leaves.
        not_empty: Condvar,
        /// Signaled when the queue loses an item or the last receiver leaves.
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error for [`Sender::send`]: every receiver disconnected; the
    /// unsent message is returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// Every receiver disconnected.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: channel empty and every sender
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Channel empty and every sender disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and every sender disconnected.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// `cap = 0` is modeled as capacity 1 (the stand-in has no
    /// rendezvous mode; the workspace never uses zero-capacity channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
        chan.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full. Fails only
        /// when every receiver has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.chan);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; a full bounded channel yields
        /// [`TrySendError::Full`] immediately.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.chan);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            lock(&self.chan).queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty. Fails only when
        /// the channel is empty and every sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.chan);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.chan);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.chan);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                st = g;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            lock(&self.chan).queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator for [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.chan).senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.chan).receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.chan);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers so they observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.chan);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn cloned_receivers_compete() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(7).unwrap();
            tx.send(8).unwrap();
            drop(tx);
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 15);
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
