//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`] — with a
//! xoshiro256++ generator behind `StdRng`. Streams differ from the real
//! crate (workload generators document seeds, not byte streams), but all
//! statistical properties the tests rely on (uniformity, determinism per
//! seed, distinct streams per seed) hold.

/// The random-source core: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from the generator's full output domain
/// (the `Standard` distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by widening multiply (bias is at most
/// `span / 2^64`, far below anything a test could observe).
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_span(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(3i64..8);
            assert!((3..8).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..100 {
            let v = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&v));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not near 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
