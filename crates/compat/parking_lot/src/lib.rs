//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly, not
//! `Result`s). Poison from a panicked holder is deliberately ignored —
//! parking_lot has no poisoning, and the wrappers reproduce that by
//! recovering the inner guard.

use std::fmt;
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it by
/// value and put the re-acquired guard back; outside a wait it is always
/// `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner()),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// A condition variable usable with [`Mutex`].
///
/// parking_lot's `wait` takes `&mut MutexGuard`; the `Option` inside
/// [`MutexGuard`] lets the wait consume the std guard and restore the
/// re-acquired one without unsafe code.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(
            self.inner
                .wait(g)
                .unwrap_or_else(|poison| poison.into_inner()),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
