//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice-cursor surface it actually uses: [`Buf`] for
//! reading little-endian integers off the front of a `&[u8]`, and
//! [`BufMut`] for appending to a `Vec<u8>`. Semantics match the real
//! crate for these methods (including panics on under-run), so swapping
//! the real dependency back in is a one-line change.

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// The bytes ahead of the cursor.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `i64` and advances past it.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64` and advances past it.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32` and advances past it.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i64_and_padding() {
        let mut out: Vec<u8> = Vec::new();
        out.put_i64_le(-7);
        out.put_slice(b"ab");
        out.put_bytes(0, 3);
        assert_eq!(out.len(), 13);

        let mut cur: &[u8] = &out;
        assert_eq!(cur.get_i64_le(), -7);
        assert_eq!(cur.remaining(), 5);
        assert_eq!(&cur.chunk()[..2], b"ab");
        cur.advance(5);
        assert_eq!(cur.remaining(), 0);
    }
}
