//! Minimal offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API the workspace's benches use —
//! `benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, and [`black_box`] — backed by a plain wall-clock
//! loop that prints mean time per iteration. No statistics, no HTML
//! reports; enough to run `cargo bench` and compare numbers by eye.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_bench(&id.into().id, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id.into().id),
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.into().id),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate iteration count to roughly 20ms per sample.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(50));
    let iterations = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).max(1) as u64;

    let mut total = Duration::ZERO;
    let mut count = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        count += iterations;
    }
    let mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
    println!("{label:<60} {:>12.3} µs/iter", mean_ns / 1000.0);
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("g", 2), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
