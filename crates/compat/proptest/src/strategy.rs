//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Real proptest generates shrinkable value trees; this stand-in
/// generates plain values (no shrinking), which keeps the trait simple
/// enough that ranges and tuples implement it directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Weighted choice among same-typed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms; at least one arm, weights
    /// summing to a nonzero total.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick below total weight always lands in an arm")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_and_union() {
        let mut rng = TestRng::new(5);
        let s = (0i64..10, 5u8..=6).prop_map(|(a, b)| a + b as i64);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
        let u = Union::new(vec![(3, Just(1).boxed()), (1, Just(2).boxed())]);
        let picks: Vec<i32> = (0..200).map(|_| u.generate(&mut rng)).collect();
        let ones = picks.iter().filter(|&&v| v == 1).count();
        assert!(ones > 100 && ones < 200, "weighted arm dominates: {ones}");
    }
}
