//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` from `inner` half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::new(7);
        let s = of(0i64..10);
        let vals: Vec<Option<i64>> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_some()));
        assert!(vals.iter().any(|v| v.is_none()));
    }
}
