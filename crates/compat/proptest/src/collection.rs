//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Sets of roughly `size` elements drawn from `element`.
///
/// Duplicates are retried a bounded number of times; a domain smaller
/// than the requested size yields the largest set reachable within the
/// retry budget (as in real proptest, the size is a target, not a
/// guarantee, once the domain saturates).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Maps of roughly `size` entries with keys from `key` and values from
/// `value`; key collisions overwrite (bounded retries as for sets).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.sample(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_stay_in_range() {
        let mut rng = TestRng::new(3);
        let s = vec(0i64..5, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn set_saturates_small_domains() {
        let mut rng = TestRng::new(4);
        let s = btree_set(0i64..3, 3..=3);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 3, "domain of 3 fills a size-3 set");
    }

    #[test]
    fn map_respects_target_size() {
        let mut rng = TestRng::new(5);
        let s = btree_map(0i64..100, 0i64..5, 4..=4);
        let m = s.generate(&mut rng);
        assert_eq!(m.len(), 4);
    }
}
