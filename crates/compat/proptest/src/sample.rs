//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly picks one of `values` (cloned per case).
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select needs at least one value");
    Select { values }
}

/// The strategy returned by [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_hits_every_value() {
        let mut rng = TestRng::new(6);
        let s = select(vec![10usize, 20, 30]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
