//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u16_covers_high_values() {
        let mut rng = TestRng::new(9);
        let s = any::<u16>();
        let max = (0..200).map(|_| s.generate(&mut rng)).max().unwrap();
        assert!(max > u16::MAX / 2, "full domain reached: max {max}");
    }
}
