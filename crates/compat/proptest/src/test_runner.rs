//! Test configuration and the deterministic per-case generator.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving strategies: SplitMix64, seeded from the test's
/// identity and the case index, so every run of every machine generates
/// the same inputs for a given case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw value.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeds case `case` of the test named `test_id`.
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in test_id.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng::new(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("mod::test", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("mod::test", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_eq!(
            a.iter().collect::<std::collections::HashSet<_>>().len(),
            4,
            "cases draw distinct streams"
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
