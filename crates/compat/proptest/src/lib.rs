//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small property-testing harness with proptest's macro and
//! combinator surface: `proptest! { #![proptest_config(..)] #[test] fn
//! t(x in strategy) {..} }`, `prop_oneof!`, `prop_assert*!`, range and
//! tuple strategies, `Just`, `any::<T>()`, `prop::collection::{vec,
//! btree_map, btree_set}`, `prop::sample::select`, and
//! `prop::option::of`.
//!
//! Differences from the real crate: generation is **deterministic** (the
//! case seed is a hash of the test's module path and name plus the case
//! index, so failures reproduce exactly across runs and machines) and
//! there is **no shrinking** — a failing case panics with the ordinary
//! assert message. Strategies generate values directly rather than value
//! trees.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
///
/// Unlike real proptest (which records a failure and shrinks), this
/// simply panics; the deterministic per-case seed makes the failure
/// reproducible.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks among strategies, optionally weighted (`3 => strat`). All arms
/// must produce the same value type; arms are boxed internally.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ..) { body }` becomes a `#[test]`
/// (attributes written above the fn, including `#[test]`, are preserved)
/// that runs the body `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pname:pat_param in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pname =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    { $body }
                }
            }
        )*
    };
}
