//! End-to-end cluster tests: a real 4-node TCP deployment must produce
//! exactly the quotient the single-node engine produces, under both
//! Section 6 strategies, with and without bit-vector filtering, across
//! the paper's Table 4-style workload grid — plus the traffic and
//! caching behaviour the strategies exist to deliver.

use std::time::Duration;

use reldiv_cluster::{ClusterQueryOptions, LocalCluster, Strategy};
use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{divide_relations, Algorithm};
use reldiv_rel::tuple::ints;
use reldiv_rel::{Relation, Tuple};
use reldiv_service::ServiceConfig;
use reldiv_storage::manager::StorageConfig;
use reldiv_workload::WorkloadSpec;

const TIMEOUT: Option<Duration> = Some(Duration::from_secs(60));

/// Nodes with ample work memory: these tests verify distribution, not
/// the overflow ladder (which the single-node suites already cover, and
/// which is painfully slow in debug builds at |R| ≈ 170k).
fn start_nodes(n: usize) -> LocalCluster {
    LocalCluster::start_with(n, |_| ServiceConfig {
        storage: StorageConfig::large(),
        ..ServiceConfig::default()
    })
    .expect("start nodes")
}

/// Canonical order-independent form of a quotient, for byte-exact
/// comparison between cluster and single-node results.
fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

/// The single-node oracle: the same hash division the nodes run.
fn oracle(dividend: &Relation, divisor: &Relation) -> Vec<String> {
    let quotient = divide_relations(
        dividend,
        divisor,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    )
    .expect("single-node division");
    canon(quotient.tuples())
}

fn options(strategy: Strategy, bits: Option<usize>) -> ClusterQueryOptions {
    ClusterQueryOptions {
        strategy,
        bit_vector_bits: bits,
        spec: None,
        profile: false,
    }
}

#[test]
fn grid_matches_single_node_oracle_under_both_strategies() {
    let cluster = start_nodes(4);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    for &divisor_size in &[25u64, 100, 400] {
        for &quotient_size in &[25u64, 100, 400] {
            let w = WorkloadSpec {
                divisor_size,
                quotient_size,
                incomplete_groups: quotient_size.min(40),
                incomplete_fill: 0.6,
                noise_per_group: 2,
                ..WorkloadSpec::default()
            }
            .generate(divisor_size * 1000 + quotient_size);
            let expected = oracle(&w.dividend, &w.divisor);
            assert_eq!(expected.len(), quotient_size as usize);
            coord.register("r", &w.dividend, &[0]).expect("register r");
            coord.register("s", &w.divisor, &[0]).expect("register s");
            for (strategy, bits) in [
                (Strategy::QuotientPartitioning, None),
                (Strategy::DivisorPartitioning, None),
                (Strategy::DivisorPartitioning, Some(16 * 1024)),
            ] {
                let response = coord
                    .divide("r", "s", &options(strategy, bits))
                    .unwrap_or_else(|e| {
                        panic!("|S|={divisor_size} |Q|={quotient_size} {strategy:?}: {e}")
                    });
                assert_eq!(
                    canon(&response.tuples),
                    expected,
                    "|S|={divisor_size} |Q|={quotient_size} {strategy:?} bits={bits:?}"
                );
                assert_eq!(response.report.nodes, 4);
                assert!(response.report.messages > 0, "work crossed the network");
                // Request/reply protocol: every frame sent got a frame back.
                for link in &response.report.per_link {
                    assert_eq!(link.messages_sent, link.messages_received);
                }
            }
        }
    }
}

#[test]
fn bit_vector_filtering_cuts_bytes_shipped() {
    // Heavy noise: most dividend tuples reference divisor values that do
    // not exist, exactly the case Section 6's bit-vector filtering wins.
    let w = WorkloadSpec {
        divisor_size: 20,
        quotient_size: 50,
        noise_per_group: 60,
        ..WorkloadSpec::default()
    }
    .generate(11);
    let expected = oracle(&w.dividend, &w.divisor);

    let cluster = start_nodes(4);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    let plain = coord
        .divide("r", "s", &options(Strategy::DivisorPartitioning, None))
        .expect("unfiltered run");
    assert_eq!(canon(&plain.tuples), expected);

    // A fresh coordinator so temp caching cannot mask the comparison.
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let filtered = coord
        .divide(
            "r",
            "s",
            &options(Strategy::DivisorPartitioning, Some(64 * 1024)),
        )
        .expect("filtered run");
    assert_eq!(canon(&filtered.tuples), expected);
    assert!(
        filtered.report.filtered_tuples > 0,
        "noise tuples must be dropped at the sending sites"
    );
    let fill = filtered.report.filter_fill_ratio.expect("filter ran");
    assert!(fill > 0.0 && fill < 0.5, "20 values in 64Ki bits: {fill}");
    assert!(
        filtered.report.bytes < plain.report.bytes,
        "filtering must cut wire bytes: {} !< {}",
        filtered.report.bytes,
        plain.report.bytes
    );
}

#[test]
fn quotient_partitioning_repartitions_a_badly_sharded_dividend() {
    // The dividend is sharded on the *divisor* column, so quotient
    // values span nodes; the coordinator must repartition transparently
    // or local quotients would be wrong.
    let w = WorkloadSpec {
        divisor_size: 25,
        quotient_size: 40,
        incomplete_groups: 10,
        incomplete_fill: 0.5,
        ..WorkloadSpec::default()
    }
    .generate(23);
    let expected = oracle(&w.dividend, &w.divisor);

    let cluster = start_nodes(4);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[1]).unwrap(); // wrong keys on purpose
    coord.register("s", &w.divisor, &[0]).unwrap();
    let response = coord
        .divide("r", "s", &options(Strategy::QuotientPartitioning, None))
        .expect("divide");
    assert_eq!(canon(&response.tuples), expected);
}

#[test]
fn empty_divisor_is_vacuous_under_both_strategies() {
    // R ÷ {} = distinct quotient projection of R; filtering must not
    // engage (an all-zero filter would wrongly drop every tuple).
    let w = WorkloadSpec {
        divisor_size: 8,
        quotient_size: 12,
        noise_per_group: 1,
        ..WorkloadSpec::default()
    }
    .generate(3);
    let empty = Relation::from_tuples(w.divisor.schema().clone(), Vec::new()).unwrap();
    let expected = oracle(&w.dividend, &empty);

    let cluster = start_nodes(3);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &empty, &[0]).unwrap();
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord
            .divide("r", "s", &options(strategy, Some(4096)))
            .expect("divide");
        assert_eq!(canon(&response.tuples), expected, "{strategy:?}");
        assert_eq!(response.report.filtered_tuples, 0, "{strategy:?}");
    }
}

#[test]
fn explicit_spec_divides_a_non_trailing_layout() {
    // Dividend laid out (divisor-id, quotient-id): the trailing-divisor
    // convention would be wrong, the explicit spec must reach the nodes.
    let dividend = Relation::from_tuples(
        reldiv_workload::dividend_schema(),
        vec![
            ints(&[101, 1]),
            ints(&[102, 1]),
            ints(&[101, 2]),
            ints(&[101, 3]),
            ints(&[102, 3]),
        ],
    )
    .unwrap();
    let divisor = Relation::from_tuples(
        reldiv_workload::divisor_schema(),
        vec![ints(&[101]), ints(&[102])],
    )
    .unwrap();

    let cluster = start_nodes(2);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &dividend, &[1]).unwrap();
    coord.register("s", &divisor, &[0]).unwrap();
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord
            .divide(
                "r",
                "s",
                &ClusterQueryOptions {
                    strategy,
                    bit_vector_bits: None,
                    spec: Some((vec![0], vec![1])),
                    profile: false,
                },
            )
            .expect("divide");
        // Groups 1 and 3 hold both divisor values; group 2 only 101.
        assert_eq!(
            canon(&response.tuples),
            canon(&[ints(&[1]), ints(&[3])]),
            "{strategy:?}"
        );
    }
}

#[test]
fn divisor_partitioning_excludes_nodes_without_divisor_data() {
    // Two distinct divisor values spread over four nodes occupy at most
    // two of them; the other nodes must not participate in the collection
    // phase (a phase count of four would empty the quotient).
    let w = WorkloadSpec {
        divisor_size: 2,
        quotient_size: 10,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(17);
    let expected = oracle(&w.dividend, &w.divisor);

    let cluster = start_nodes(4);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let response = coord
        .divide("r", "s", &options(Strategy::DivisorPartitioning, None))
        .expect("divide");
    assert_eq!(canon(&response.tuples), expected);
    let p = response.report.participating.len();
    assert!(
        (1..=2).contains(&p),
        "2 divisor values occupy at most 2 nodes, got {p}"
    );
    // Noise tuples routed to non-participating nodes are dropped at the
    // coordinator switch and accounted for.
    assert!(response.report.filtered_tuples > 0);
}

#[test]
fn replication_and_repartition_caches_cut_repeat_traffic() {
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 80,
        incomplete_groups: 20,
        incomplete_fill: 0.5,
        ..WorkloadSpec::default()
    }
    .generate(29);
    let cluster = start_nodes(4);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let first = coord.divide("r", "s", &options(strategy, None)).unwrap();
        let second = coord.divide("r", "s", &options(strategy, None)).unwrap();
        assert_eq!(canon(&first.tuples), canon(&second.tuples));
        assert!(
            second.report.bytes < first.report.bytes,
            "{strategy:?}: cached divisor replica / temp shards must not \
             re-ship: {} !< {}",
            second.report.bytes,
            first.report.bytes
        );
    }

    // Re-registering bumps the stamp: caches must invalidate, and the
    // new divisor must actually take effect.
    let smaller = Relation::from_tuples(
        w.divisor.schema().clone(),
        w.divisor.tuples()[..10].to_vec(),
    )
    .unwrap();
    coord.register("s", &smaller, &[0]).unwrap();
    let expected = oracle(&w.dividend, &smaller);
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let refreshed = coord.divide("r", "s", &options(strategy, None)).unwrap();
        assert_eq!(canon(&refreshed.tuples), expected, "{strategy:?}");
    }
}

#[test]
fn profile_merges_node_trees_under_a_network_root() {
    let w = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 20,
        ..WorkloadSpec::default()
    }
    .generate(5);
    let cluster = start_nodes(3);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let response = coord
        .divide(
            "r",
            "s",
            &ClusterQueryOptions {
                strategy: Strategy::DivisorPartitioning,
                bit_vector_bits: Some(4096),
                spec: None,
                profile: true,
            },
        )
        .expect("divide");
    let profile = response.report.profile.expect("profile requested");
    let root = &profile.root;
    assert_eq!(root.network_bytes, response.report.bytes);
    assert_eq!(
        root.children.len(),
        response.report.participating.len(),
        "one span per participating node"
    );
    for child in &root.children {
        assert!(child.label.starts_with("node "));
        // The node's own EXPLAIN ANALYZE tree is grafted beneath.
        assert!(
            !child.children.is_empty(),
            "node span carries the node-local profile"
        );
    }
    // The rendered tree mentions the strategy and the filter.
    let rendered = profile.render();
    assert!(rendered.contains("DivisorPartitioning"), "{rendered}");
    assert!(rendered.contains("bit-vector filter"), "{rendered}");
}

#[test]
fn unknown_relations_and_bad_specs_are_coordinator_errors() {
    let cluster = start_nodes(2);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    let err = coord
        .divide("nope", "s", &options(Strategy::QuotientPartitioning, None))
        .unwrap_err();
    assert!(matches!(err, reldiv_cluster::ClusterError::BadRequest(_)));

    let w = WorkloadSpec::default().generate(1);
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let err = coord
        .divide(
            "r",
            "s",
            &ClusterQueryOptions {
                strategy: Strategy::DivisorPartitioning,
                bit_vector_bits: None,
                spec: Some((vec![0, 1], vec![0])), // overlapping, wrong arity
                profile: false,
            },
        )
        .unwrap_err();
    assert!(matches!(err, reldiv_cluster::ClusterError::BadRequest(_)));

    let err = coord.register("r", &w.dividend, &[7]).unwrap_err();
    assert!(matches!(err, reldiv_cluster::ClusterError::BadRequest(_)));
}

#[test]
fn filtered_repartition_cache_is_keyed_by_divisor_identity() {
    // Regression: a filtered dividend repartition prunes tuples against
    // one divisor's filter. Dividing the *same* dividend by a different
    // divisor (or a re-registered one) with the same filter geometry
    // must not reuse that temp — the pruned tuples differ.
    let w = WorkloadSpec {
        divisor_size: 8,
        quotient_size: 30,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(71);
    let w2 = WorkloadSpec {
        divisor_size: 5,
        quotient_size: 30,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(72);
    let cluster = start_nodes(3);
    let mut coord = cluster.coordinator(TIMEOUT).expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s0", &w.divisor, &[0]).unwrap();
    coord.register("s1", &w2.divisor, &[0]).unwrap();

    let opts = options(Strategy::DivisorPartitioning, Some(4096));
    let first = coord.divide("r", "s0", &opts).expect("r ÷ s0");
    assert_eq!(canon(&first.tuples), oracle(&w.dividend, &w.divisor));

    // Same dividend, same filter bits, different divisor.
    let second = coord.divide("r", "s1", &opts).expect("r ÷ s1");
    assert_eq!(canon(&second.tuples), oracle(&w.dividend, &w2.divisor));

    // Same divisor name, new contents: the stamp in the filter tag must
    // invalidate the old temp.
    coord.register("s0", &w2.divisor, &[0]).unwrap();
    let third = coord.divide("r", "s0", &opts).expect("r ÷ s0 v2");
    assert_eq!(canon(&third.tuples), oracle(&w.dividend, &w2.divisor));

    // And repeating an identical query still hits the cache.
    let again = coord.divide("r", "s0", &opts).expect("repeat");
    assert_eq!(canon(&again.tuples), oracle(&w.dividend, &w2.divisor));
    assert!(again.report.bytes < third.report.bytes);
    // A cache hit serves a temp whose tuples were pruned when it was
    // built: the report must carry that build-time count, not zero.
    assert!(third.report.filtered_tuples > 0, "noise must be pruned");
    assert_eq!(
        again.report.filtered_tuples, third.report.filtered_tuples,
        "a cached temp reports the tuples dropped when it was built"
    );
}
