//! Elastic membership and the catalog epoch.
//!
//! * `join_node` / `remove_node` re-replicate every base relation under
//!   the new placement, and queries keep matching the single-node
//!   oracle.
//! * Every membership change bumps the *catalog epoch* and pushes it to
//!   the nodes. A coordinator holding an older view gets a typed
//!   `StaleEpoch` refusal on its next data-plane request — **never** a
//!   wrong quotient — and `refresh()` brings it current (property-tested
//!   over random join/leave sequences).

use std::time::Duration;

use proptest::prelude::*;
use reldiv_cluster::{ClusterQueryOptions, Coordinator, LocalCluster, RetryPolicy, Strategy};
use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{divide_relations, Algorithm};
use reldiv_rel::Tuple;
use reldiv_workload::WorkloadSpec;

fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

fn options(strategy: Strategy) -> ClusterQueryOptions {
    ClusterQueryOptions {
        strategy,
        bit_vector_bits: None,
        spec: None,
        profile: false,
    }
}

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        node_attempts: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        ..RetryPolicy::default()
    }
}

fn workload() -> (reldiv_workload::Workload, Vec<String>) {
    let w = WorkloadSpec {
        divisor_size: 8,
        quotient_size: 25,
        incomplete_groups: 8,
        incomplete_fill: 0.5,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(101);
    let expected = canon(
        divide_relations(
            &w.dividend,
            &w.divisor,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        )
        .unwrap()
        .tuples(),
    );
    (w, expected)
}

#[test]
fn join_node_rebalances_and_queries_stay_exact() {
    let (w, expected) = workload();
    let cluster = LocalCluster::start(2).expect("start nodes");
    let pool = LocalCluster::start(1).expect("start joiner");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_replication(2).unwrap();
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let epoch_before = coord.epoch();

    let node = coord.join_node(pool.addrs()[0]).expect("join");
    assert_eq!(node, 2);
    assert_eq!(coord.nodes(), 3);
    assert!(coord.epoch() > epoch_before, "joining bumps the epoch");
    // The re-registration spread fragments over all three nodes with
    // k = 2: every fragment has two holders.
    let rel = coord.relation("r").expect("r survived the join");
    assert_eq!(rel.holders.len(), 3);
    for (fragment, holders) in rel.holders.iter().enumerate() {
        assert_eq!(holders.len(), 2, "fragment {fragment} holders after join");
    }
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord.divide("r", "s", &options(strategy)).expect("divide");
        assert_eq!(canon(&response.tuples), expected, "{strategy:?} after join");
    }
}

#[test]
fn remove_node_shrinks_and_queries_stay_exact() {
    let (w, expected) = workload();
    let cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_replication(2).unwrap();
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    coord.remove_node(1).expect("remove a live node");
    assert_eq!(coord.nodes(), 2);
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord.divide("r", "s", &options(strategy)).expect("divide");
        assert_eq!(
            canon(&response.tuples),
            expected,
            "{strategy:?} after remove"
        );
    }
}

#[test]
fn a_dead_node_can_be_removed_and_its_fragments_relocate() {
    // The operational loop the feature exists for: a node dies, queries
    // keep working through failover, and the corpse is then *removed* —
    // snapshotting its fragments from the replicas — restoring full
    // replication on the survivors.
    let (w, expected) = workload();
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_retry_policy(fast_retries());
    coord.set_replication(2).unwrap();
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    cluster.kill(2);
    coord
        .remove_node(2)
        .expect("removing a dead node snapshots from the replicas");
    assert_eq!(coord.nodes(), 2);
    // Replication is intact on the survivors: both hold every fragment.
    let rel = coord.relation("r").unwrap();
    for (fragment, holders) in rel.holders.iter().enumerate() {
        assert_eq!(
            holders.len(),
            2,
            "fragment {fragment} re-replicated after the removal"
        );
    }
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord.divide("r", "s", &options(strategy)).expect("divide");
        assert_eq!(
            canon(&response.tuples),
            expected,
            "{strategy:?} after removing the corpse"
        );
    }
}

#[test]
fn stale_coordinator_gets_a_typed_refusal_then_refreshes() {
    let (w, expected) = workload();
    let cluster = LocalCluster::start(2).expect("start nodes");
    let pool = LocalCluster::start(1).expect("start joiner");
    let mut admin = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect admin");
    let mut stale = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect second coordinator");
    admin.set_replication(2).unwrap();
    admin.register("r", &w.dividend, &[0]).unwrap();
    admin.register("s", &w.divisor, &[0]).unwrap();
    // The second coordinator learns the catalog by registering the same
    // contents (idempotent), then goes stale when the admin reshapes the
    // cluster.
    stale.set_replication(2).unwrap();
    stale.register("r", &w.dividend, &[0]).unwrap();
    stale.register("s", &w.divisor, &[0]).unwrap();

    admin.join_node(pool.addrs()[0]).expect("join");

    // The stale coordinator's next query is refused with the typed
    // error — not answered from the old placement.
    let err = stale
        .divide("r", "s", &options(Strategy::DivisorPartitioning))
        .expect_err("a stale view must be refused");
    assert!(
        err.is_stale_epoch(),
        "wanted a StaleEpoch refusal, got: {err}"
    );
    // Stale *writes* are refused the same way.
    let err = stale
        .register("r", &w.dividend, &[0])
        .expect_err("a stale write must be refused");
    assert!(err.is_stale_epoch(), "stale register: {err}");

    // refresh() adopts the cluster's view (including the node the admin
    // added, which the stale coordinator has never seen) and queries
    // come back exact.
    stale.refresh().expect("refresh");
    assert_eq!(stale.nodes(), 3, "refresh adopted the widened membership");
    assert_eq!(stale.epoch(), admin.epoch());
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = stale.divide("r", "s", &options(strategy)).expect("divide");
        assert_eq!(
            canon(&response.tuples),
            expected,
            "{strategy:?} after refresh"
        );
    }
}

/// One membership op from the property generator.
#[derive(Debug, Clone, Copy)]
enum Op {
    Join,
    Remove(usize),
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Random join/leave sequences: after **every** op, a coordinator
    /// still holding the old view is refused with the typed `StaleEpoch`
    /// (never served a wrong quotient), and after `refresh()` its
    /// quotient is byte-exact.
    #[test]
    fn random_membership_churn_never_yields_a_wrong_quotient(
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..=3)
    ) {
        let (w, expected) = workload();
        let cluster = LocalCluster::start(2).expect("start nodes");
        let pool = LocalCluster::start(3).expect("start joiner pool");
        let mut admin = cluster
            .coordinator(Some(Duration::from_secs(5)))
            .expect("connect admin");
        let mut follower = cluster
            .coordinator(Some(Duration::from_secs(5)))
            .expect("connect follower");
        admin.set_replication(2).unwrap();
        admin.register("r", &w.dividend, &[0]).unwrap();
        admin.register("s", &w.divisor, &[0]).unwrap();
        // The follower learns the catalog by registering the same
        // contents (the coordinator catalog is coordinator-local; only
        // epoch and membership travel through refresh).
        follower.set_replication(2).unwrap();
        follower.register("r", &w.dividend, &[0]).unwrap();
        follower.register("s", &w.divisor, &[0]).unwrap();

        let mut next_joiner = 0usize;
        for (join, pick) in ops {
            // Decide the op against the current shape: joins need a
            // fresh pool node, removals must keep two nodes alive.
            let op = if (join && next_joiner < pool.nodes()) || admin.nodes() <= 2 {
                if next_joiner >= pool.nodes() {
                    break;
                }
                Op::Join
            } else {
                Op::Remove(pick % admin.nodes())
            };
            match op {
                Op::Join => {
                    admin.join_node(pool.addrs()[next_joiner]).expect("join");
                    next_joiner += 1;
                }
                Op::Remove(node) => {
                    admin.remove_node(node).expect("remove");
                }
            }

            // The follower's view predates the op. Whatever it does next
            // must be refused typed or answered exactly — never wrong.
            match follower.divide("r", "s", &options(Strategy::DivisorPartitioning)) {
                Ok(response) => prop_assert_eq!(
                    canon(&response.tuples),
                    expected.clone(),
                    "an answered stale query must still be exact"
                ),
                Err(e) => prop_assert!(
                    e.is_stale_epoch(),
                    "stale refusal must be typed, got: {}", e
                ),
            }
            follower.refresh().expect("refresh");
            prop_assert_eq!(follower.nodes(), admin.nodes());
            let response = follower
                .divide("r", "s", &options(Strategy::QuotientPartitioning))
                .expect("refreshed divide");
            prop_assert_eq!(
                canon(&response.tuples),
                expected.clone(),
                "refreshed quotient must be exact"
            );
        }
    }
}

// Keep a compile-time handle on Coordinator in scope for the doc link
// above; `connect` is exercised by the sweep binaries.
#[allow(dead_code)]
fn _types(_: &Coordinator) {}
