//! The upgraded chaos invariant: with replication factor `k ≥ 2`, kill
//! any single node at any point — before a query, mid-query, between
//! queries — and the coordinator still returns the **byte-exact**
//! quotient, verified against a single-node oracle, for both Section 6
//! strategies across a Table 4 workload grid.
//!
//! (With `k = 1` a dead node is a typed error — that contract lives in
//! `chaos.rs`. This suite is about the failure *disappearing*.)

use std::time::{Duration, Instant};

use reldiv_cluster::{ClusterQueryOptions, LocalCluster, RetryPolicy, Strategy};
use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{divide_relations, Algorithm};
use reldiv_rel::Tuple;
use reldiv_workload::WorkloadSpec;

fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

fn options(strategy: Strategy, bits: Option<usize>) -> ClusterQueryOptions {
    ClusterQueryOptions {
        strategy,
        bit_vector_bits: bits,
        spec: None,
        profile: false,
    }
}

/// A failover schedule tight enough for tests: quick retries, quick
/// exclusion decisions, deterministic jitter.
fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        node_attempts: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        ..RetryPolicy::default()
    }
}

/// A small Table 4 grid: divisor cardinality × dividend shape, the axes
/// Section 7 sweeps.
fn table4_grid() -> Vec<(u64, WorkloadSpec)> {
    vec![
        (
            61,
            WorkloadSpec {
                divisor_size: 1,
                quotient_size: 40,
                noise_per_group: 2,
                ..WorkloadSpec::default()
            },
        ),
        (
            67,
            WorkloadSpec {
                divisor_size: 10,
                quotient_size: 30,
                incomplete_groups: 10,
                incomplete_fill: 0.5,
                noise_per_group: 2,
                ..WorkloadSpec::default()
            },
        ),
        (
            71,
            WorkloadSpec {
                divisor_size: 100,
                quotient_size: 20,
                incomplete_groups: 8,
                incomplete_fill: 0.3,
                ..WorkloadSpec::default()
            },
        ),
    ]
}

fn oracle(w: &reldiv_workload::Workload) -> Vec<String> {
    canon(
        divide_relations(
            &w.dividend,
            &w.divisor,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        )
        .expect("oracle division")
        .tuples(),
    )
}

#[test]
fn kill_any_single_node_before_the_query_and_the_quotient_is_exact() {
    // Every node takes a turn dying, across the whole grid and both
    // strategies (plus filtered divisor partitioning). Registration
    // happens while all nodes are alive; the kill lands before the
    // query, so every phase of the query must route around the corpse.
    let nodes = 3;
    for (seed, spec) in table4_grid() {
        let w = spec.generate(seed);
        let expected = oracle(&w);
        for victim in 0..nodes {
            let mut cluster = LocalCluster::start(nodes).expect("start nodes");
            let mut coord = cluster
                .coordinator(Some(Duration::from_secs(5)))
                .expect("connect");
            coord.set_retry_policy(fast_retries());
            coord.set_replication(2).expect("k=2 fits 3 nodes");
            coord.register("r", &w.dividend, &[0]).unwrap();
            coord.register("s", &w.divisor, &[0]).unwrap();
            cluster.kill(victim);
            for (strategy, bits) in [
                (Strategy::QuotientPartitioning, None),
                (Strategy::DivisorPartitioning, None),
                (Strategy::DivisorPartitioning, Some(2048)),
            ] {
                let response = coord
                    .divide("r", "s", &options(strategy, bits))
                    .expect("replication 2 must survive any single dead node");
                assert_eq!(
                    canon(&response.tuples),
                    expected,
                    "seed {seed} victim {victim} {strategy:?}: quotient must be exact"
                );
                assert_eq!(
                    response.report.per_node_quotient[victim], 0,
                    "a dead node cannot have contributed quotient tuples"
                );
            }
            // The failovers are observable, not silent.
            assert!(
                coord.robustness_metrics().failovers > 0,
                "seed {seed} victim {victim}: surviving a dead node requires failovers"
            );
        }
    }
}

#[test]
fn kill_a_node_mid_query_and_every_reply_stays_exact() {
    // The kill lands *while* queries are streaming — whichever phase it
    // interrupts (divisor replication, repartition, partial division,
    // collection), the reply must still be the exact quotient. No typed
    // failure is acceptable here: that is the k = 1 contract, and k = 2.
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 200,
        incomplete_groups: 50,
        incomplete_fill: 0.5,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(73);
    let expected = oracle(&w);
    for victim in 0..3usize {
        let mut cluster = LocalCluster::start(3).expect("start nodes");
        let mut coord = cluster
            .coordinator(Some(Duration::from_secs(5)))
            .expect("connect");
        coord.set_retry_policy(fast_retries());
        coord.set_replication(2).unwrap();
        coord.register("r", &w.dividend, &[0]).unwrap();
        coord.register("s", &w.divisor, &[0]).unwrap();

        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            cluster.kill(victim);
            cluster
        });
        // Keep querying until the kill has demonstrably landed (a
        // failover happened) and then a few more for good measure.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut strategies = [
            Strategy::QuotientPartitioning,
            Strategy::DivisorPartitioning,
        ]
        .into_iter()
        .cycle();
        let mut after_kill = 0;
        while after_kill < 4 {
            assert!(
                Instant::now() < deadline,
                "victim {victim}: kill never surfaced as a failover"
            );
            let strategy = strategies.next().unwrap();
            let response = coord
                .divide("r", "s", &options(strategy, None))
                .unwrap_or_else(|e| {
                    panic!("victim {victim} {strategy:?}: query failed under k=2: {e}")
                });
            assert_eq!(
                canon(&response.tuples),
                expected,
                "victim {victim} {strategy:?}: mid-kill reply must be exact"
            );
            if coord.robustness_metrics().failovers > 0 {
                after_kill += 1;
            }
        }
        let _cluster = killer.join().expect("killer thread");
    }
}

#[test]
fn kill_between_registration_and_update_and_rereads_stay_exact() {
    // A node dies between queries, then the *inputs change* — the
    // re-registration itself must survive the dead node (every fragment
    // still collects an ack) and queries against the new version must be
    // exact for the new oracle.
    let spec = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 30,
        incomplete_groups: 10,
        incomplete_fill: 0.5,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    };
    let w1 = spec.clone().generate(79);
    let w2 = spec.generate(83);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_retry_policy(fast_retries());
    coord.set_replication(2).unwrap();
    coord.register("r", &w1.dividend, &[0]).unwrap();
    coord.register("s", &w1.divisor, &[0]).unwrap();
    let response = coord
        .divide("r", "s", &options(Strategy::DivisorPartitioning, None))
        .expect("healthy run");
    assert_eq!(canon(&response.tuples), oracle(&w1));

    cluster.kill(0);

    // Update both relations under the dead node, then query both
    // strategies against the new contents.
    coord.register("r", &w2.dividend, &[0]).unwrap();
    coord.register("s", &w2.divisor, &[0]).unwrap();
    let expected = oracle(&w2);
    for (strategy, bits) in [
        (Strategy::QuotientPartitioning, None),
        (Strategy::DivisorPartitioning, Some(1024)),
    ] {
        let response = coord
            .divide("r", "s", &options(strategy, bits))
            .expect("k=2 survives the dead node");
        assert_eq!(
            canon(&response.tuples),
            expected,
            "{strategy:?}: post-update quotient must track the new inputs"
        );
    }
}

#[test]
fn empty_divisor_stays_vacuous_with_a_dead_node() {
    // The empty-divisor edge (every quotient value qualifies) crosses
    // the failover path too: participation falls back to every node, so
    // the dead node's fragment must still be served by its replica.
    let w = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 25,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(89);
    let empty = reldiv_rel::Relation::from_tuples(w.divisor.schema().clone(), Vec::new())
        .expect("empty divisor");
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_retry_policy(fast_retries());
    coord.set_replication(2).unwrap();
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &empty, &[0]).unwrap();
    let expected = canon(
        divide_relations(
            &w.dividend,
            &empty,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        )
        .unwrap()
        .tuples(),
    );
    cluster.kill(2);
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let response = coord
            .divide("r", "s", &options(strategy, None))
            .expect("vacuous division survives a dead node");
        assert_eq!(canon(&response.tuples), expected, "{strategy:?}");
    }
}

#[test]
fn failover_reports_ride_in_the_query_report() {
    // Per-query failover counters are deltas, not lifetime totals: a
    // healthy query after a failing one reports zero.
    let w = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 20,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(97);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.set_retry_policy(fast_retries());
    coord.set_replication(2).unwrap();
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    let healthy = coord
        .divide("r", "s", &options(Strategy::DivisorPartitioning, None))
        .expect("healthy run");
    assert_eq!(healthy.report.failovers, 0);
    assert_eq!(healthy.report.replica_retries, 0);

    cluster.kill(1);
    let failed_over = coord
        .divide("r", "s", &options(Strategy::QuotientPartitioning, None))
        .expect("k=2 survives");
    assert!(
        failed_over.report.failovers > 0,
        "the query that routed around the corpse reports its failovers"
    );
    let cumulative = coord.robustness_metrics();
    assert!(cumulative.failovers >= failed_over.report.failovers);
}

#[test]
fn a_node_that_died_and_recovered_answers_probes_again() {
    // Regression: a probe to a dead node severs the coordinator's link;
    // once the node comes back on the same address, the next probe must
    // reach it on a fresh socket — "a later successful probe restores
    // it" cannot hold if the probe stays wedged on the dead stream.
    use reldiv_cluster::{Coordinator, Health};
    use reldiv_service::{ServerHandle, Service, ServiceConfig};

    let start_node = |addr: &str| -> ServerHandle {
        let service = Service::start(ServiceConfig::default()).expect("service");
        ServerHandle::start(service, addr).expect("bind")
    };
    let mut node0 = start_node("127.0.0.1:0");
    let node1 = start_node("127.0.0.1:0");
    let addrs = [node0.local_addr(), node1.local_addr()];
    let mut coord =
        Coordinator::connect(&addrs, Some(Duration::from_millis(500))).expect("connect");

    let healthy = coord.heartbeat();
    assert!(healthy.iter().all(Option::is_some), "all nodes answer");

    node0.kill();
    drop(node0);
    let down = coord.heartbeat();
    assert!(down[0].is_none(), "a dead node misses its probe");
    assert_eq!(coord.health()[0].health, Health::Suspect);
    assert!(down[1].is_some(), "the survivor still answers");

    // Same address, fresh process.
    let _revived = start_node(&addrs[0].to_string());
    let back = coord.heartbeat();
    assert!(
        back[0].is_some(),
        "a recovered node answers the probe on a reconnected link"
    );
    assert_eq!(coord.health()[0].health, Health::Healthy);
    assert!(coord.robustness_metrics().heartbeats_missed >= 1);
}
