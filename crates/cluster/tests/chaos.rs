//! Cluster chaos: nodes with fault-injecting disks, and nodes that die
//! mid-stream. The contract under all of it:
//!
//! * a reply that arrives is *correct* (oracle-verified — retries and
//!   typed failures, never silently wrong quotients),
//! * a node that cannot answer surfaces as a typed error at the
//!   coordinator — [`ClusterError::Node`] for a node-side refusal,
//!   [`ClusterError::NodeFailed`] for a dead link — never as a hang,
//! * the coordinator's traffic accounting stays internally consistent
//!   through every failure.

use std::time::{Duration, Instant};

use reldiv_cluster::{ClusterError, ClusterQueryOptions, LocalCluster, Strategy};
use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{divide_relations, Algorithm};
use reldiv_rel::Tuple;
use reldiv_service::ServiceConfig;
use reldiv_storage::FaultPlan;
use reldiv_workload::WorkloadSpec;

fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

fn options(strategy: Strategy, bits: Option<usize>) -> ClusterQueryOptions {
    ClusterQueryOptions {
        strategy,
        bit_vector_bits: bits,
        spec: None,
        profile: false,
    }
}

#[test]
fn dead_node_is_a_typed_error_not_a_hang() {
    let w = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 20,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(41);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    // Healthy first: the cluster answers.
    coord
        .divide("r", "s", &options(Strategy::QuotientPartitioning, None))
        .expect("healthy run");

    cluster.kill(1);

    // Dead node: every strategy fails with a typed error naming the
    // node, promptly (well under the hang horizon).
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let start = Instant::now();
        let err = coord
            .divide("r", "s", &options(strategy, Some(4096)))
            .expect_err("a dead node cannot produce a full quotient");
        let elapsed = start.elapsed();
        match err {
            ClusterError::NodeFailed { node, .. } => assert_eq!(node, 1, "{strategy:?}"),
            other => panic!("{strategy:?}: wanted NodeFailed, got {other}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "{strategy:?}: failure took {elapsed:?}; node death must not hang"
        );
    }

    // The surviving nodes still answer direct probes: the failure was
    // contained to the dead link.
    coord.node_stats(0).expect("node 0 alive");
    coord.node_stats(2).expect("node 2 alive");
    assert!(coord.node_stats(1).is_err());
}

#[test]
fn node_killed_mid_query_fails_typed() {
    // Kill a node *while* a query stream is running against it. The
    // coordinator must come back with NodeFailed on the broken link —
    // whichever phase the kill lands in — and never stall.
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 200,
        incomplete_groups: 50,
        incomplete_fill: 0.5,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(43);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();
    let expected = canon(
        divide_relations(
            &w.dividend,
            &w.divisor,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        )
        .unwrap()
        .tuples(),
    );

    let killer = std::thread::spawn({
        // LocalCluster::kill needs &mut; hand the whole cluster to the
        // killer thread and take it back when it is done.
        move || {
            std::thread::sleep(Duration::from_millis(20));
            cluster.kill(2);
            cluster
        }
    });
    // Run queries until the kill lands. Each one either completes
    // correctly or fails typed on node 2; no third outcome, no hang.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_failure = false;
    let mut strategies = [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ]
    .into_iter()
    .cycle();
    while !saw_failure {
        assert!(Instant::now() < deadline, "kill never surfaced");
        match coord.divide("r", "s", &options(strategies.next().unwrap(), None)) {
            Ok(response) => assert_eq!(canon(&response.tuples), expected),
            Err(ClusterError::NodeFailed { node, .. }) => {
                assert_eq!(node, 2);
                saw_failure = true;
            }
            // Narrow window: the node may answer one last typed refusal
            // between the kill flag and its socket being severed.
            Err(ClusterError::Node { node, .. }) => assert_eq!(node, 2),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    let _cluster = killer.join().expect("killer thread");
}

#[test]
fn seeded_disk_faults_never_corrupt_a_quotient() {
    // Every node runs on fault-injecting disks with an independent seed.
    // Transient faults are mostly absorbed by the buffer manager's
    // retries; the ones that escalate must come back as typed node
    // errors. Whatever comes back OK must equal the oracle.
    let w = WorkloadSpec {
        divisor_size: 12,
        quotient_size: 30,
        incomplete_groups: 10,
        incomplete_fill: 0.5,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(47);
    let expected = canon(
        divide_relations(
            &w.dividend,
            &w.divisor,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        )
        .unwrap()
        .tuples(),
    );

    let mut completed = 0u32;
    let mut refused = 0u32;
    for seed in 0..4u64 {
        let cluster = LocalCluster::start_with(3, |node| ServiceConfig {
            storage_faults: Some(
                FaultPlan::seeded(seed * 31 + node as u64)
                    .with_read_error_rate(0.04)
                    .with_write_error_rate(0.04),
            ),
            ..ServiceConfig::default()
        })
        .expect("start nodes");
        let mut coord = cluster
            .coordinator(Some(Duration::from_secs(30)))
            .expect("connect");
        coord.register("r", &w.dividend, &[0]).unwrap();
        coord.register("s", &w.divisor, &[0]).unwrap();
        for (strategy, bits) in [
            (Strategy::QuotientPartitioning, None),
            (Strategy::DivisorPartitioning, None),
            (Strategy::DivisorPartitioning, Some(4096)),
        ] {
            match coord.divide("r", "s", &options(strategy, bits)) {
                Ok(response) => {
                    assert_eq!(
                        canon(&response.tuples),
                        expected,
                        "seed {seed} {strategy:?}: a fault must never warp the quotient"
                    );
                    completed += 1;
                }
                // A node-side refusal (storage fault escalated past the
                // retry budget) is acceptable — but only as a typed error.
                Err(ClusterError::Node { .. }) => refused += 1,
                Err(other) => panic!("seed {seed} {strategy:?}: {other}"),
            }
        }
    }
    assert!(
        completed >= 1,
        "retries should carry at least one query through ({refused} refused)"
    );
}

#[test]
fn traffic_accounting_stays_consistent_through_failures() {
    let w = WorkloadSpec {
        divisor_size: 10,
        quotient_size: 25,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(53);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.register("r", &w.dividend, &[0]).unwrap();
    coord.register("s", &w.divisor, &[0]).unwrap();

    let before = coord.link_stats();
    let mut reported = 0u64;
    for (strategy, bits) in [
        (Strategy::QuotientPartitioning, None),
        (Strategy::DivisorPartitioning, None),
        (Strategy::DivisorPartitioning, Some(1024)),
        (Strategy::QuotientPartitioning, None),
    ] {
        let response = coord.divide("r", "s", &options(strategy, bits)).unwrap();
        let report = &response.report;
        // Per-query internal consistency: per-link deltas sum to the
        // query totals, and every request frame saw a reply frame.
        let (msgs, bytes) = report.per_link.iter().fold((0, 0), |(m, b), l| {
            let (lm, lb) = l.total();
            (m + lm, b + lb)
        });
        assert_eq!(msgs, report.messages);
        assert_eq!(bytes, report.bytes);
        for link in &report.per_link {
            assert_eq!(link.messages_sent, link.messages_received);
        }
        reported += report.bytes;
    }
    // Cross-query consistency: the cumulative link counters advanced by
    // exactly the sum of the per-query reports (divide is the only
    // traffic between the two snapshots).
    let after = coord.link_stats();
    let cumulative: u64 = before
        .iter()
        .zip(&after)
        .map(|(b, a)| a.total().1 - b.total().1)
        .sum();
    assert_eq!(cumulative, reported);

    // Failures still count their traffic: a query against a dead node
    // sends frames that the counters must not lose.
    cluster.kill(0);
    let before = coord.link_stats();
    let _ = coord
        .divide("r", "s", &options(Strategy::QuotientPartitioning, None))
        .expect_err("dead node");
    let after = coord.link_stats();
    let sent_after_kill: u64 = before
        .iter()
        .zip(&after)
        .map(|(b, a)| a.messages_sent + a.messages_received - b.messages_sent - b.messages_received)
        .sum();
    assert!(
        sent_after_kill > 0,
        "the failed attempt's frames are still accounted"
    );
}

#[test]
fn failed_reregistration_fails_queries_fast_instead_of_mixing_versions() {
    // Regression: with k = 1 and a dead holder, a re-registration cannot
    // collect an ack for the dead node's fragment — but the surviving
    // nodes have already installed the *new* version. The old catalog
    // entry no longer describes any consistent placement, so the
    // coordinator must forget it: a later query gets a typed error,
    // never a quotient silently mixing old and new fragments.
    let spec = WorkloadSpec {
        divisor_size: 8,
        quotient_size: 20,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    };
    let w1 = spec.clone().generate(101);
    let w2 = spec.generate(103);
    let mut cluster = LocalCluster::start(3).expect("start nodes");
    let mut coord = cluster
        .coordinator(Some(Duration::from_secs(5)))
        .expect("connect");
    coord.register("r", &w1.dividend, &[0]).unwrap();
    coord.register("s", &w1.divisor, &[0]).unwrap();

    cluster.kill(1);
    coord
        .register("r", &w2.dividend, &[0])
        .expect_err("k = 1 cannot settle a write with a dead holder");
    assert!(
        coord.relation("r").is_none(),
        "the torn entry must be forgotten, not left pointing at mixed versions"
    );
    let err = coord
        .divide("r", "s", &options(Strategy::DivisorPartitioning, None))
        .expect_err("queries on the torn relation fail fast");
    assert!(
        matches!(err, ClusterError::BadRequest(_)),
        "expected an unknown-relation refusal, got {err:?}"
    );
    // The relation the failed write never touched is still intact.
    assert!(coord.relation("s").is_some());
}
