//! Replica placement and naming for the replicated sharded catalog.
//!
//! Every fragment of a sharded relation lives on k nodes: the *primary*
//! (node index = fragment index, exactly the PR 4 placement) plus k−1
//! *replicas* on the next nodes round-robin. The primary stores the
//! fragment under the relation's own name; a replica stores it under the
//! reserved `.replica.{fragment}.{name}` catalog name, so one node can
//! hold replicas of many fragments of the same relation without
//! collisions. When the coordinator fails a fragment's sub-query over to
//! a replica holder, it rewrites the relation names in the request
//! accordingly — with one exemption: `.repl.`-prefixed divisor replicas
//! (quotient partitioning) are installed on *every* node under the same
//! name and never need rewriting.

/// The catalog-name prefix under which replica copies are stored.
/// Re-exported from `reldiv-service`, which owns the rule (its
/// `ReplicaWrite` dispatch installs under the same name this module
/// rewrites failover requests to).
pub use reldiv_service::proto::REPLICA_PREFIX;

/// The catalog-name prefix of full divisor replicas (quotient
/// partitioning); these live on every node under the same name and are
/// exempt from replica-name rewriting.
pub const FULL_COPY_PREFIX: &str = ".repl.";

/// The nodes holding `fragment` under round-robin placement: the primary
/// (node index = fragment index) first, then the next `k − 1` nodes,
/// wrapping. `k` is clamped to the node count; `nodes == 0` yields an
/// empty placement.
pub fn placement(fragment: usize, nodes: usize, k: usize) -> Vec<usize> {
    if nodes == 0 {
        return Vec::new();
    }
    (0..k.min(nodes)).map(|i| (fragment + i) % nodes).collect()
}

/// The catalog name a *replica* copy of `base`'s `fragment` is stored
/// under.
pub fn replica_name(fragment: usize, base: &str) -> String {
    reldiv_service::proto::replica_name(fragment, base)
}

/// The catalog name node `node` stores `fragment` of `base` under: the
/// base name on the fragment's primary (node index = fragment index) or
/// on any node for a `.repl.` full copy; the replica name elsewhere.
pub fn name_on(node: usize, fragment: usize, base: &str) -> String {
    if node == fragment || base.starts_with(FULL_COPY_PREFIX) {
        base.to_owned()
    } else {
        replica_name(fragment, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_round_robin_primary_first() {
        assert_eq!(placement(0, 4, 2), vec![0, 1]);
        assert_eq!(placement(3, 4, 2), vec![3, 0]);
        assert_eq!(placement(2, 4, 3), vec![2, 3, 0]);
        assert_eq!(placement(1, 4, 1), vec![1]);
    }

    #[test]
    fn placement_clamps_k_to_the_node_count() {
        assert_eq!(placement(0, 2, 5), vec![0, 1]);
        assert_eq!(placement(1, 1, 3), vec![0]);
        assert_eq!(placement(0, 0, 2), Vec::<usize>::new());
    }

    #[test]
    fn replica_names_embed_the_fragment_index() {
        assert_eq!(replica_name(2, "r"), ".replica.2.r");
        // Distinct fragments of the same relation must not collide on a
        // shared holder.
        assert_ne!(replica_name(0, "r"), replica_name(1, "r"));
    }

    #[test]
    fn name_on_rewrites_only_off_primary_and_never_full_copies() {
        assert_eq!(name_on(2, 2, "r"), "r");
        assert_eq!(name_on(3, 2, "r"), ".replica.2.r");
        // Full divisor replicas live everywhere under one name.
        assert_eq!(name_on(3, 2, ".repl.s.7"), ".repl.s.7");
        // Derived temps are rewritten like base relations.
        assert_eq!(
            name_on(1, 0, ".part.r.3.4.0.0"),
            ".replica.0..part.r.3.4.0.0"
        );
    }
}
