//! A counted TCP link to one node.
//!
//! The paper's Section 6 argument is about *network traffic*: how many
//! tuples each strategy ships, and how much bit-vector filtering saves.
//! Every frame a [`NodeLink`] sends or receives is therefore counted —
//! messages and bytes, per direction, per link — so a cluster run can
//! report exactly what crossed each wire.
//!
//! Reads carry a deadline. A node that dies mid-query (process killed,
//! cable pulled) surfaces as a typed [`ClusterError::NodeFailed`] when
//! the read times out or the socket breaks — never as a hang. The
//! failure is classified ([`FailureKind`]) so the coordinator's failover
//! driver can tell a refused connection (node down before the request)
//! from a mid-stream sever (node died *during* it), and a link can be
//! [`reconnect`](NodeLink::reconnect)ed in place for a retry without
//! losing its traffic counters.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use reldiv_service::proto::{self, Reply, Request};

use crate::health::FailureKind;
use crate::{ClusterError, Result};

/// Per-link traffic counters. Byte counts cover the whole frame: the
/// 4-byte length prefix plus the payload.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent to the node.
    pub messages_sent: u64,
    /// Bytes sent to the node.
    pub bytes_sent: u64,
    /// Frames received from the node.
    pub messages_received: u64,
    /// Bytes received from the node.
    pub bytes_received: u64,
}

impl LinkStats {
    /// Totals of both directions: `(messages, bytes)`.
    pub fn total(&self) -> (u64, u64) {
        (
            self.messages_sent + self.messages_received,
            self.bytes_sent + self.bytes_received,
        )
    }

    /// Accumulates another link's counters into this one.
    pub fn absorb(&mut self, other: &LinkStats) {
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.bytes_received += other.bytes_received;
    }
}

/// Classifies an I/O error for failover decisions.
fn classify_io(e: &io::Error) -> FailureKind {
    match e.kind() {
        io::ErrorKind::ConnectionRefused => FailureKind::Refused,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FailureKind::Timeout,
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof => FailureKind::Severed,
        _ => FailureKind::Other,
    }
}

/// One coordinator → node connection with traffic accounting and a read
/// deadline.
pub struct NodeLink {
    node: usize,
    addr: SocketAddr,
    read_timeout: Option<Duration>,
    stream: TcpStream,
    stats: LinkStats,
}

impl NodeLink {
    /// Connects to the node at `addr`. `read_timeout` bounds every reply
    /// wait; `None` waits forever (tests only — a real deployment should
    /// always bound it).
    pub fn connect(
        node: usize,
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> Result<NodeLink> {
        let fail =
            |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| fail(FailureKind::Other, format!("bad address: {e}")))?
            .next()
            .ok_or_else(|| fail(FailureKind::Other, "address resolves to nothing".into()))?;
        let stream = open_stream(node, addr, read_timeout)?;
        Ok(NodeLink {
            node,
            addr,
            read_timeout,
            stream,
            stats: LinkStats::default(),
        })
    }

    /// The node index this link serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The node's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The read deadline this link was created with.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Renumbers the link after a membership change (node indices are
    /// positional; removing a node shifts everything after it).
    pub(crate) fn renumber(&mut self, node: usize) {
        self.node = node;
    }

    /// Re-dials the node, replacing the underlying stream. Used by the
    /// failover driver before a same-node retry: a severed stream from an
    /// earlier failure must not condemn a node that has since recovered.
    /// Traffic counters survive the reconnect — they describe the link,
    /// not one socket.
    pub fn reconnect(&mut self) -> Result<()> {
        self.stream = open_stream(self.node, self.addr, self.read_timeout)?;
        Ok(())
    }

    /// Sends one request and waits for the reply. Transport failures
    /// (broken socket, timeout, unparseable bytes) become
    /// [`ClusterError::NodeFailed`] with a classified [`FailureKind`]; a
    /// well-formed error reply becomes [`ClusterError::Node`] with the
    /// node's typed error.
    pub fn call(&mut self, request: &Request) -> Result<Reply> {
        let node = self.node;
        let fail =
            |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
        let payload = request
            .encode()
            .map_err(|e| ClusterError::BadRequest(format!("encoding request: {e}")))?;
        proto::write_frame(&mut self.stream, &payload)
            .map_err(|e| fail(classify_io(&e), format!("send: {e}")))?;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.len() as u64 + 4;
        let frame = read_reply_frame(&mut self.stream).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                fail(FailureKind::Timeout, "reply timed out".into())
            } else {
                fail(classify_io(&e), format!("receive: {e}"))
            }
        })?;
        // EOF where a reply frame was due: the node died mid-request.
        let frame =
            frame.ok_or_else(|| fail(FailureKind::Severed, "node closed the connection".into()))?;
        self.stats.messages_received += 1;
        self.stats.bytes_received += frame.len() as u64 + 4;
        match proto::decode_response(&frame) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(error)) => Err(ClusterError::Node { node, error }),
            Err(e) => Err(fail(FailureKind::Other, format!("unparseable reply: {e}"))),
        }
    }
}

/// Dials `addr` and applies the link's socket options.
fn open_stream(node: usize, addr: SocketAddr, read_timeout: Option<Duration>) -> Result<TcpStream> {
    let fail = |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
    let stream =
        TcpStream::connect(addr).map_err(|e| fail(classify_io(&e), format!("connect: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| fail(FailureKind::Other, format!("nodelay: {e}")))?;
    stream
        .set_read_timeout(read_timeout)
        .map_err(|e| fail(FailureKind::Other, format!("read timeout: {e}")))?;
    Ok(stream)
}

/// Reads one reply frame, distinguishing clean EOF (`None`).
fn read_reply_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    proto::read_frame(stream)
}
