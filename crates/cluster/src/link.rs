//! A counted TCP link to one node.
//!
//! The paper's Section 6 argument is about *network traffic*: how many
//! tuples each strategy ships, and how much bit-vector filtering saves.
//! Every frame a [`NodeLink`] sends or receives is therefore counted —
//! messages and bytes, per direction, per link — so a cluster run can
//! report exactly what crossed each wire.
//!
//! Reads carry a deadline. A node that dies mid-query (process killed,
//! cable pulled) surfaces as a typed [`ClusterError::NodeFailed`] when
//! the read times out or the socket breaks — never as a hang. The
//! failure is classified ([`FailureKind`]) so the coordinator's failover
//! driver can tell a refused connection (node down before the request)
//! from a mid-stream sever (node died *during* it), and a link can be
//! [`reconnect`](NodeLink::reconnect)ed in place for a retry without
//! losing its traffic counters.
//!
//! Any transport failure marks the link *dirty*: the socket may still
//! carry a late reply from the failed exchange (a slow-but-alive node
//! eventually answers a timed-out request), and reading that frame would
//! answer a *different* request with stale data. A dirty link replaces
//! its socket before the next call, so a stale frame can never be
//! mistaken for the reply to the request that follows.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use reldiv_service::proto::{self, Reply, Request};

use crate::health::FailureKind;
use crate::{ClusterError, Result};

/// Per-link traffic counters. Byte counts cover the whole frame: the
/// 4-byte length prefix plus the payload.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent to the node.
    pub messages_sent: u64,
    /// Bytes sent to the node.
    pub bytes_sent: u64,
    /// Frames received from the node.
    pub messages_received: u64,
    /// Bytes received from the node.
    pub bytes_received: u64,
}

impl LinkStats {
    /// Totals of both directions: `(messages, bytes)`.
    pub fn total(&self) -> (u64, u64) {
        (
            self.messages_sent + self.messages_received,
            self.bytes_sent + self.bytes_received,
        )
    }

    /// Accumulates another link's counters into this one.
    pub fn absorb(&mut self, other: &LinkStats) {
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.bytes_received += other.bytes_received;
    }
}

/// Classifies an I/O error for failover decisions.
fn classify_io(e: &io::Error) -> FailureKind {
    match e.kind() {
        io::ErrorKind::ConnectionRefused => FailureKind::Refused,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FailureKind::Timeout,
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof => FailureKind::Severed,
        _ => FailureKind::Other,
    }
}

/// One coordinator → node connection with traffic accounting and a read
/// deadline.
pub struct NodeLink {
    node: usize,
    addr: SocketAddr,
    read_timeout: Option<Duration>,
    stream: TcpStream,
    /// A transport failure left the stream in an unknown position (a
    /// late reply may still arrive on it); the next call must reconnect
    /// before trusting anything it reads.
    dirty: bool,
    stats: LinkStats,
}

impl NodeLink {
    /// Connects to the node at `addr`. `read_timeout` bounds every reply
    /// wait; `None` waits forever (tests only — a real deployment should
    /// always bound it).
    pub fn connect(
        node: usize,
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> Result<NodeLink> {
        let fail =
            |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| fail(FailureKind::Other, format!("bad address: {e}")))?
            .next()
            .ok_or_else(|| fail(FailureKind::Other, "address resolves to nothing".into()))?;
        let stream = open_stream(node, addr, read_timeout)?;
        Ok(NodeLink {
            node,
            addr,
            read_timeout,
            stream,
            dirty: false,
            stats: LinkStats::default(),
        })
    }

    /// The node index this link serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The node's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The read deadline this link was created with.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Whether a transport failure left the stream untrustworthy, so the
    /// next [`call`](NodeLink::call) will reconnect before sending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Renumbers the link after a membership change (node indices are
    /// positional; removing a node shifts everything after it).
    pub(crate) fn renumber(&mut self, node: usize) {
        self.node = node;
    }

    /// Re-dials the node, replacing the underlying stream. Used by the
    /// failover driver before a same-node retry: a severed stream from an
    /// earlier failure must not condemn a node that has since recovered.
    /// Traffic counters survive the reconnect — they describe the link,
    /// not one socket.
    pub fn reconnect(&mut self) -> Result<()> {
        // Stay dirty until the fresh socket is actually in place — a
        // failed dial must not launder a stream with a stale reply on it.
        self.dirty = true;
        self.stream = open_stream(self.node, self.addr, self.read_timeout)?;
        self.dirty = false;
        Ok(())
    }

    /// Sends one request and waits for the reply. Transport failures
    /// (broken socket, timeout, unparseable bytes) become
    /// [`ClusterError::NodeFailed`] with a classified [`FailureKind`]; a
    /// well-formed error reply becomes [`ClusterError::Node`] with the
    /// node's typed error.
    pub fn call(&mut self, request: &Request) -> Result<Reply> {
        let node = self.node;
        let fail =
            |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
        let payload = request
            .encode()
            .map_err(|e| ClusterError::BadRequest(format!("encoding request: {e}")))?;
        // A previous transport failure may have left a late reply in
        // flight on this socket; reading it would answer *this* request
        // with a stale frame. Replace the socket first.
        if self.dirty {
            self.reconnect()?;
        }
        if let Err(e) = proto::write_frame(&mut self.stream, &payload) {
            self.dirty = true;
            return Err(fail(classify_io(&e), format!("send: {e}")));
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.len() as u64 + 4;
        let frame = match read_reply_frame(&mut self.stream) {
            Ok(frame) => frame,
            Err(e) => {
                self.dirty = true;
                return Err(
                    if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
                    {
                        fail(FailureKind::Timeout, "reply timed out".into())
                    } else {
                        fail(classify_io(&e), format!("receive: {e}"))
                    },
                );
            }
        };
        // EOF where a reply frame was due: the node died mid-request.
        let Some(frame) = frame else {
            self.dirty = true;
            return Err(fail(
                FailureKind::Severed,
                "node closed the connection".into(),
            ));
        };
        self.stats.messages_received += 1;
        self.stats.bytes_received += frame.len() as u64 + 4;
        match proto::decode_response(&frame) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(error)) => Err(ClusterError::Node { node, error }),
            Err(e) => {
                // The stream is positioned after bytes we could not make
                // sense of; nothing that follows can be trusted either.
                self.dirty = true;
                Err(fail(FailureKind::Other, format!("unparseable reply: {e}")))
            }
        }
    }
}

/// Dials `addr` and applies the link's socket options.
fn open_stream(node: usize, addr: SocketAddr, read_timeout: Option<Duration>) -> Result<TcpStream> {
    let fail = |kind: FailureKind, detail: String| ClusterError::NodeFailed { node, kind, detail };
    let stream =
        TcpStream::connect(addr).map_err(|e| fail(classify_io(&e), format!("connect: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| fail(FailureKind::Other, format!("nodelay: {e}")))?;
    stream
        .set_read_timeout(read_timeout)
        .map_err(|e| fail(FailureKind::Other, format!("read timeout: {e}")))?;
    Ok(stream)
}

/// Reads one reply frame, distinguishing clean EOF (`None`).
fn read_reply_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    proto::read_frame(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Regression: a read timeout on a slow-but-alive node leaves its
    /// late reply in flight on the old socket. The next call on the link
    /// — possibly for a different request, from a different fragment
    /// thread — must not read that stale frame as its answer.
    #[test]
    fn a_timed_out_link_discards_the_late_reply_instead_of_serving_it() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // Connection 1: answer the probe late — after the client's
            // read deadline — with a distinguishable payload (epoch 1).
            let (mut c1, _) = listener.accept().expect("accept 1");
            let _ = proto::read_frame(&mut c1).expect("read 1");
            std::thread::sleep(Duration::from_millis(120));
            let late = proto::encode_response(&Ok(Reply::HeartbeatAck {
                epoch: 1,
                accepting: true,
            }))
            .expect("encode late");
            let _ = proto::write_frame(&mut c1, &late);
            // Connection 2 (the reconnect): answer promptly with epoch 2.
            let (mut c2, _) = listener.accept().expect("accept 2");
            let _ = proto::read_frame(&mut c2).expect("read 2");
            let fresh = proto::encode_response(&Ok(Reply::HeartbeatAck {
                epoch: 2,
                accepting: true,
            }))
            .expect("encode fresh");
            let _ = proto::write_frame(&mut c2, &fresh);
            // Keep c1 alive until the end so its stale frame stays
            // readable the whole time.
            drop(c1);
        });

        let mut link =
            NodeLink::connect(0, addr, Some(Duration::from_millis(30))).expect("connect");
        let err = link.call(&Request::Heartbeat).expect_err("must time out");
        assert!(
            matches!(
                err,
                ClusterError::NodeFailed {
                    kind: FailureKind::Timeout,
                    ..
                }
            ),
            "expected a timeout, got {err:?}"
        );
        assert!(link.is_dirty(), "a timeout must mark the link dirty");

        // Let the late reply land in the old socket's receive buffer.
        std::thread::sleep(Duration::from_millis(150));
        match link.call(&Request::Heartbeat).expect("fresh call succeeds") {
            Reply::HeartbeatAck { epoch, .. } => {
                assert_eq!(epoch, 2, "the stale epoch-1 frame must never be served");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(!link.is_dirty(), "a clean exchange clears the flag");
        server.join().expect("server thread");
    }
}
