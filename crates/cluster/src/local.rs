//! An N-node cluster on loopback, for tests, benchmarks, and chaos runs.
//!
//! Each node is a full [`ServerHandle`] — its own [`Service`] with
//! workers, admission control, cache, metrics, and (optionally) a
//! fault-injecting storage plan — listening on an ephemeral loopback
//! port. The nodes are *real* in every sense that matters to the
//! protocol: the coordinator reaches them only through TCP frames.
//!
//! [`LocalCluster::kill`] hard-stops one node mid-run, which is how the
//! chaos tests prove a dead node surfaces as a typed
//! [`ClusterError::NodeFailed`] at the
//! coordinator instead of a hang.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use reldiv_service::{ServerHandle, Service, ServiceConfig};

use crate::coordinator::Coordinator;
use crate::health::FailureKind;
use crate::link::NodeLink;
use crate::{ClusterError, Result};

/// N in-process node servers on loopback.
pub struct LocalCluster {
    nodes: Vec<Option<ServerHandle>>,
    addrs: Vec<SocketAddr>,
}

impl LocalCluster {
    /// Starts `n` nodes, each configured by `config(node_index)` (so a
    /// chaos test can seed per-node fault plans differently).
    pub fn start_with(n: usize, config: impl Fn(usize) -> ServiceConfig) -> Result<LocalCluster> {
        if n == 0 {
            return Err(ClusterError::BadRequest(
                "cluster needs at least one node".into(),
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for node in 0..n {
            let service =
                Service::start(config(node)).map_err(|e| ClusterError::Node { node, error: e })?;
            let server = ServerHandle::start(service, "127.0.0.1:0").map_err(|e| {
                ClusterError::NodeFailed {
                    node,
                    kind: FailureKind::Other,
                    detail: format!("bind: {e}"),
                }
            })?;
            addrs.push(server.local_addr());
            nodes.push(Some(server));
        }
        Ok(LocalCluster { nodes, addrs })
    }

    /// Starts `n` nodes with the default service configuration.
    pub fn start(n: usize) -> Result<LocalCluster> {
        Self::start_with(n, |_| ServiceConfig::default())
    }

    /// Number of nodes (killed nodes still count — their slots remain).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes' listen addresses, in node order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The in-process service behind node `node`, for white-box
    /// inspection (catalog versions, metrics) in tests. `None` if killed.
    pub fn service(&self, node: usize) -> Option<&Arc<Service>> {
        self.nodes
            .get(node)
            .and_then(|n| n.as_ref().map(ServerHandle::service))
    }

    /// Connects a fresh coordinator to every node with `read_timeout`
    /// bounding each reply wait.
    pub fn coordinator(&self, read_timeout: Option<Duration>) -> Result<Coordinator> {
        let links = self
            .addrs
            .iter()
            .enumerate()
            .map(|(node, addr)| NodeLink::connect(node, addr, read_timeout))
            .collect::<Result<Vec<_>>>()?;
        Coordinator::from_links(links)
    }

    /// Hard-stops node `node`: the server stops accepting, its socket
    /// closes, and in-flight coordinator calls to it fail. Idempotent.
    pub fn kill(&mut self, node: usize) {
        if let Some(slot) = self.nodes.get_mut(node) {
            if let Some(mut server) = slot.take() {
                server.kill();
            }
        }
    }

    /// Shuts every surviving node down.
    pub fn stop(&mut self) {
        for node in 0..self.nodes.len() {
            self.kill(node);
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.stop();
    }
}
