//! The coordinator: a replicated sharded catalog plus the two Section 6
//! strategies executed over real TCP links, with mid-query failover.
//!
//! The coordinator owns no tuple data between queries — relations live
//! hash-partitioned across the node services, placed by the same
//! [`route`] the thread machine uses (FNV-1a on the shard keys), so a
//! relation registered through the coordinator and one partitioned by
//! the in-process machine land identically.
//!
//! ## Replication and failover
//!
//! With a replication factor `k` ([`Coordinator::set_replication`]),
//! every fragment lives on `k` nodes: its primary (node index = fragment
//! index, exactly the `k = 1` placement) plus `k − 1` replicas
//! round-robin ([`catalog::placement`]). Writes fan out to every holder
//! — one [`Request::Shard`] to the primary, [`Request::ReplicaWrite`]s
//! to the replicas — and succeed when **every fragment** collects at
//! least one acknowledgment. Reads and per-fragment sub-queries run
//! through a failover driver: candidates are the fragment's holders
//! (primary first, [`Health::Excluded`] nodes skipped), each tried up to
//! [`RetryPolicy::node_attempts`] times with a link reconnect and a
//! jittered exponential backoff between attempts. The upgraded chaos
//! invariant follows: with `k ≥ 2`, kill any single node at any point
//! during a query and the exact quotient is still returned.
//!
//! ## Elastic membership
//!
//! [`Coordinator::join_node`] and [`Coordinator::remove_node`] change
//! the node set: the coordinator snapshots every base relation (failover
//! reads), bumps the monotonically increasing *catalog epoch*, pushes
//! the new membership view to every node, and re-registers the
//! relations under the new placement. Every data-plane request carries
//! the coordinator's epoch; a node whose installed view is newer answers
//! with a typed `StaleEpoch` refusal — a stale coordinator can never
//! read the wrong fragment, it gets told to [`Coordinator::refresh`].
//!
//! ## Quotient partitioning on the wire
//!
//! "The divisor table must be replicated in the main memory of all
//! participating processors. After replication, all local hash-division
//! operators work completely independently of each other." The
//! coordinator fetches every node's divisor fragment, concatenates them,
//! and installs the full divisor on every node under a version-stamped
//! replica name (so a re-run against unchanged inputs skips the
//! replication entirely). If the dividend is not already sharded on the
//! quotient attributes it is transparently repartitioned first — quotient
//! partitioning is only correct when no quotient value spans nodes. Each
//! node then runs one local hash division and the quotients concatenate.
//!
//! ## Divisor partitioning on the wire
//!
//! Both inputs are repartitioned on the divisor attributes *where they
//! live*: each fragment is bucketed by one of its holders
//! ([`Request::Repartition`]) and only the buckets cross the network,
//! coordinator-switched to their owner nodes. Each participating
//! fragment is divided locally by a holder and the partial quotient
//! tagged; the coordinator runs the paper's collection-phase division
//! ([`CollectionSite`]) over the tagged streams: a quotient value
//! survives only if every participating fragment reported it.
//!
//! ## Bit-vector filtering
//!
//! With a filter size configured, each divisor fragment's holder builds
//! a filter over the fragment ([`Request::BuildFilter`]), the
//! coordinator ORs them ([`BitVectorFilter::union`]), and the union
//! rides inside the dividend repartition requests: dividend tuples that
//! cannot match any divisor tuple are dropped at the node that holds
//! them. Bits cross the network; the tuples they exclude never do.
//!
//! [`Health::Excluded`]: crate::health::Health::Excluded

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{Algorithm, DivisionSpec, ProfileNode, QueryProfile, SpanKind};
use reldiv_parallel::filter::BitVectorFilter;
use reldiv_parallel::strategy::CollectionSite;
use reldiv_parallel::{route, Strategy};
use reldiv_rel::{Relation, Schema, Tuple};
use reldiv_service::proto::{
    DivideRequest, EpochRequest, PartialQuotientReply, RepartitionRequest, ReplicaWriteRequest,
    Reply, Request, ShardRequest, MAX_CLUSTER_NODES,
};
use reldiv_service::MetricsSnapshot;

use crate::catalog;
use crate::health::{splitmix64, FailureKind, NodeHealth, RetryPolicy};
use crate::link::{LinkStats, NodeLink};
use crate::{ClusterError, Result};

/// How a cluster division should run.
#[derive(Debug, Clone, Default)]
pub struct ClusterQueryOptions {
    /// Which Section 6 strategy to execute.
    pub strategy: Strategy,
    /// Bit-vector filter size applied at the sending sites (divisor
    /// partitioning only). `None` ships every dividend tuple.
    pub bit_vector_bits: Option<usize>,
    /// Explicit `(divisor_keys, quotient_keys)`; `None` uses the
    /// trailing-divisor convention.
    pub spec: Option<(Vec<usize>, Vec<usize>)>,
    /// Collect per-node span trees and graft them under a cluster-level
    /// network root.
    pub profile: bool,
}

/// What the coordinator knows about a sharded relation.
#[derive(Debug, Clone)]
pub struct ShardedRelation {
    /// Relation schema (identical on every node).
    pub schema: Schema,
    /// Columns the relation is hash-partitioned on.
    pub shard_keys: Vec<usize>,
    /// Per-node catalog versions returned by the nodes (0 for nodes that
    /// hold nothing of this relation, and after a
    /// [`refresh`](Coordinator::refresh)).
    pub versions: Vec<u64>,
    /// Total tuples registered across all fragments.
    pub cardinality: usize,
    /// Per-fragment cardinalities (zeroed by a
    /// [`refresh`](Coordinator::refresh), which cannot observe them).
    pub per_node: Vec<usize>,
    /// Coordinator-side version stamp, embedded in the names of derived
    /// temporaries (replicas, repartitions) so stale derivations are
    /// never reused after an update.
    pub stamp: u64,
    /// Which nodes acknowledged each fragment's write, primary first —
    /// the failover candidates for reads and sub-queries on that
    /// fragment.
    pub holders: Vec<Vec<usize>>,
    /// Tuples dropped at the sending sites when this relation was built
    /// by a repartition (bit-vector filter plus non-participating
    /// buckets). Zero for base relations. Reported again on every cache
    /// hit so repeated queries account for the tuples the cached temp
    /// excludes.
    pub filtered_at_build: u64,
}

/// Robustness counters accumulated by the coordinator across its
/// lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Same-node retries: a fragment request re-sent to the same holder
    /// after a reconnect and a jittered backoff.
    pub replica_retries: u64,
    /// Fragment requests that moved on from an exhausted holder to the
    /// next one.
    pub failovers: u64,
    /// Nodes excluded from failover candidacy after flapping past
    /// [`RetryPolicy::flap_limit`].
    pub nodes_excluded: u64,
    /// Heartbeat probes that went unanswered.
    pub heartbeats_missed: u64,
}

/// Measurements from one cluster division.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Fragments that held divisor data and ran local divisions (all
    /// fragments under quotient partitioning or an empty divisor).
    pub participating: Vec<usize>,
    /// Dividend tuples dropped at the sending sites — by the bit-vector
    /// filter, or because their divisor cluster is empty and they cannot
    /// influence the quotient.
    pub filtered_tuples: u64,
    /// Fill ratio of the merged bit-vector filter, if one was used.
    pub filter_fill_ratio: Option<f64>,
    /// Per-link traffic for this query (frames and bytes, both ways).
    pub per_link: Vec<LinkStats>,
    /// Total frames across all links for this query.
    pub messages: u64,
    /// Total bytes across all links for this query.
    pub bytes: u64,
    /// Quotient tuples each node contributed.
    pub per_node_quotient: Vec<u64>,
    /// Same-node reconnect-retries during this query.
    pub replica_retries: u64,
    /// Fragment requests served by failing over to another holder during
    /// this query.
    pub failovers: u64,
    /// Wall-clock time of the whole distributed query.
    pub elapsed: Duration,
    /// The merged profile: a network root with one span per node, each
    /// grafting the node's own span tree. Present when requested.
    pub profile: Option<QueryProfile>,
}

/// The quotient a cluster division produced.
#[derive(Debug, Clone)]
pub struct ClusterResponse {
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples.
    pub tuples: Vec<Tuple>,
    /// Traffic and participation measurements.
    pub report: ClusterReport,
}

/// One per-fragment request with its failover candidates. `build` makes
/// the request for a given candidate node, rewriting relation names per
/// the primary-name rule ([`catalog::name_on`]).
struct FragmentTask {
    fragment: usize,
    holders: Vec<usize>,
    build: Box<dyn Fn(usize) -> Request + Send>,
}

/// A fragment request's answer: which holder served it.
struct FragmentReply {
    fragment: usize,
    holder: usize,
    reply: Reply,
}

/// Health and metric observations a fragment thread collected, applied
/// by the coordinator thread after the scope ends.
#[derive(Default)]
struct FragmentEvents {
    /// `(node, success)` call outcomes, in order.
    node_events: Vec<(usize, bool)>,
    replica_retries: u64,
    failovers: u64,
}

/// One write in a fan-out: `fragment`'s data to `node`.
struct WriteItem {
    fragment: usize,
    node: usize,
    request: Request,
}

/// A failed write settlement: the error to surface, plus whether any
/// node acknowledged (and therefore already installed) part of the
/// write — the caller's catalog entry then describes a mixed state.
struct WriteFailure {
    error: ClusterError,
    any_acks: bool,
}

/// The cluster coordinator: replicated sharded catalog + strategy
/// execution over counted TCP links.
pub struct Coordinator {
    links: Vec<NodeLink>,
    catalog: HashMap<String, ShardedRelation>,
    /// `(node, name)` pairs of full divisor replicas (`.repl.`) already
    /// installed, so quotient-partitioning replication is skipped when
    /// the divisor has not changed.
    installed: HashSet<(usize, String)>,
    next_stamp: u64,
    epoch: u64,
    replication: usize,
    health: Vec<NodeHealth>,
    policy: RetryPolicy,
    rng: u64,
    metrics: ClusterMetrics,
}

impl Coordinator {
    fn new(links: Vec<NodeLink>) -> Coordinator {
        let n = links.len();
        let policy = RetryPolicy::default();
        Coordinator {
            links,
            catalog: HashMap::new(),
            installed: HashSet::new(),
            next_stamp: 0,
            epoch: 1,
            replication: 1,
            health: vec![NodeHealth::default(); n],
            policy,
            rng: splitmix64(policy.seed),
            metrics: ClusterMetrics::default(),
        }
    }

    /// Connects to the nodes at `addrs` (node index = position) and
    /// adopts the highest catalog epoch any node reports, so a
    /// coordinator joining an established cluster starts current.
    pub fn connect(
        addrs: &[std::net::SocketAddr],
        read_timeout: Option<Duration>,
    ) -> Result<Coordinator> {
        if addrs.is_empty() {
            return Err(ClusterError::BadRequest(
                "cluster needs at least one node".into(),
            ));
        }
        let mut links = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            links.push(NodeLink::connect(node, addr, read_timeout)?);
        }
        let mut coordinator = Coordinator::new(links);
        coordinator.adopt_epoch_best_effort();
        Ok(coordinator)
    }

    /// Wraps already-connected links (used by [`LocalCluster`]). Unlike
    /// [`Coordinator::connect`] this sends no epoch probe — a stale view
    /// is still caught by the nodes' `StaleEpoch` refusals, and the
    /// links' traffic counters start at exactly zero.
    ///
    /// [`LocalCluster`]: crate::local::LocalCluster
    pub fn from_links(links: Vec<NodeLink>) -> Result<Coordinator> {
        if links.is_empty() {
            return Err(ClusterError::BadRequest(
                "cluster needs at least one node".into(),
            ));
        }
        Ok(Coordinator::new(links))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.links.len()
    }

    /// The coordinator's catalog epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replication factor applied to subsequent registrations.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Sets the replication factor: every fragment registered from now
    /// on lives on `k` nodes. Relations already registered keep their
    /// current holders until re-registered.
    pub fn set_replication(&mut self, k: usize) -> Result<()> {
        if k == 0 || k > self.links.len() {
            return Err(ClusterError::BadRequest(format!(
                "replication factor {k} outside 1..={}",
                self.links.len()
            )));
        }
        self.replication = k;
        Ok(())
    }

    /// Replaces the failover schedule (tests and benchmarks tighten the
    /// backoff).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
        self.rng = splitmix64(policy.seed);
    }

    /// Per-node health standing.
    pub fn health(&self) -> &[NodeHealth] {
        &self.health
    }

    /// Robustness counters accumulated since connection.
    pub fn robustness_metrics(&self) -> ClusterMetrics {
        self.metrics
    }

    /// Cumulative per-link traffic since connection.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.iter().map(|l| l.stats()).collect()
    }

    /// The coordinator's view of a registered relation.
    pub fn relation(&self, name: &str) -> Option<&ShardedRelation> {
        self.catalog.get(name)
    }

    /// Hash-partitions `relation` on `shard_keys` across the nodes and
    /// installs each fragment on its primary plus `k − 1` replicas.
    /// Succeeds when every fragment collects at least one write
    /// acknowledgment; the acknowledging nodes become the fragment's
    /// failover candidates. Replaces any previous version; stale derived
    /// temporaries are forgotten so they are rebuilt on demand.
    pub fn register(
        &mut self,
        name: &str,
        relation: &Relation,
        shard_keys: &[usize],
    ) -> Result<()> {
        let arity = relation.schema().arity();
        if shard_keys.is_empty() {
            return Err(ClusterError::BadRequest("empty shard key set".into()));
        }
        if let Some(&k) = shard_keys.iter().find(|&&k| k >= arity) {
            return Err(ClusterError::BadRequest(format!(
                "shard key {k} out of range for arity {arity}"
            )));
        }
        for reserved in [catalog::REPLICA_PREFIX, catalog::FULL_COPY_PREFIX, ".part."] {
            if name.starts_with(reserved) {
                return Err(ClusterError::BadRequest(format!(
                    "relation name {name:?} uses the reserved prefix {reserved:?}"
                )));
            }
        }
        let n = self.links.len();
        let k = self.replication;
        let mut shards: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        for tuple in relation.tuples() {
            shards[route(tuple, shard_keys, n)].push(tuple.clone());
        }
        let per_node: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let schema = relation.schema().clone();
        let epoch = self.epoch;
        let mut items = Vec::with_capacity(n * k);
        for (fragment, tuples) in shards.into_iter().enumerate() {
            for &node in &catalog::placement(fragment, n, k) {
                let request = if node == fragment {
                    Request::Shard(ShardRequest {
                        name: name.to_owned(),
                        shard: fragment as u16,
                        of: n as u16,
                        shard_keys: shard_keys.to_vec(),
                        schema: schema.clone(),
                        tuples: tuples.clone(),
                        epoch: Some(epoch),
                    })
                } else {
                    Request::ReplicaWrite(ReplicaWriteRequest {
                        name: name.to_owned(),
                        fragment: fragment as u16,
                        of: n as u16,
                        shard_keys: shard_keys.to_vec(),
                        schema: schema.clone(),
                        tuples: tuples.clone(),
                        epoch: Some(epoch),
                    })
                };
                items.push(WriteItem {
                    fragment,
                    node,
                    request,
                });
            }
        }
        let (holders, versions) = match self.settle_writes(items, n, k) {
            Ok(settled) => settled,
            Err(WriteFailure { error, any_acks }) => {
                // Nodes that did ack have already replaced their copy
                // with the new version while others kept the old one;
                // the existing catalog entry then describes no
                // consistent placement. Drop it (and everything derived
                // from it) so the next query fails fast with an unknown
                // relation instead of silently mixing versions. With
                // zero acks (every node refused — e.g. a StaleEpoch
                // rejection of the whole fan-out) nothing was installed
                // and the old entry is still good.
                if any_acks {
                    self.catalog.remove(name);
                    self.forget_derivations_of(name);
                }
                return Err(error);
            }
        };
        self.next_stamp += 1;
        self.catalog.insert(
            name.to_owned(),
            ShardedRelation {
                schema,
                shard_keys: shard_keys.to_vec(),
                versions,
                cardinality: relation.tuples().len(),
                per_node,
                stamp: self.next_stamp,
                holders,
                filtered_at_build: 0,
            },
        );
        // Anything derived from the old version is stale.
        self.forget_derivations_of(name);
        Ok(())
    }

    /// Runs `dividend ÷ divisor` across the cluster.
    pub fn divide(
        &mut self,
        dividend: &str,
        divisor: &str,
        options: &ClusterQueryOptions,
    ) -> Result<ClusterResponse> {
        let start = Instant::now();
        let before: Vec<LinkStats> = self.links.iter().map(|l| l.stats()).collect();
        let metrics_before = self.metrics;
        let dividend_rel = self.lookup(dividend)?;
        let divisor_rel = self.lookup(divisor)?;
        let spec = match &options.spec {
            Some((dk, qk)) => DivisionSpec::new(
                &dividend_rel.schema,
                &divisor_rel.schema,
                dk.clone(),
                qk.clone(),
            ),
            None => DivisionSpec::trailing_divisor(&dividend_rel.schema, &divisor_rel.schema),
        }
        .map_err(|e| ClusterError::BadRequest(e.to_string()))?;
        let quotient_schema = spec
            .quotient_schema(&dividend_rel.schema)
            .map_err(|e| ClusterError::BadRequest(e.to_string()))?;

        let outcome = match options.strategy {
            Strategy::QuotientPartitioning => {
                self.divide_quotient_partitioned(dividend, divisor, &spec, options)?
            }
            Strategy::DivisorPartitioning => {
                self.divide_divisor_partitioned(dividend, divisor, &spec, options)?
            }
        };
        let StrategyOutcome {
            tuples,
            participating,
            filtered_tuples,
            filter_fill_ratio,
            partials,
        } = outcome;

        let after: Vec<LinkStats> = self.links.iter().map(|l| l.stats()).collect();
        let per_link: Vec<LinkStats> = before
            .iter()
            .zip(&after)
            .map(|(b, a)| LinkStats {
                messages_sent: a.messages_sent - b.messages_sent,
                bytes_sent: a.bytes_sent - b.bytes_sent,
                messages_received: a.messages_received - b.messages_received,
                bytes_received: a.bytes_received - b.bytes_received,
            })
            .collect();
        let (messages, bytes) = per_link.iter().fold((0, 0), |(m, b), l| {
            let (lm, lb) = l.total();
            (m + lm, b + lb)
        });
        let mut per_node_quotient = vec![0u64; self.links.len()];
        for p in &partials {
            per_node_quotient[p.holder] += p.reply.tuples.len() as u64;
        }
        let elapsed = start.elapsed();
        let profile = options.profile.then(|| {
            merge_profiles(
                options.strategy,
                self.links.len(),
                &participating,
                filtered_tuples,
                filter_fill_ratio,
                &per_link,
                bytes,
                elapsed,
                &partials,
            )
        });
        Ok(ClusterResponse {
            schema: quotient_schema,
            tuples,
            report: ClusterReport {
                strategy: options.strategy,
                nodes: self.links.len(),
                participating,
                filtered_tuples,
                filter_fill_ratio,
                per_link,
                messages,
                bytes,
                per_node_quotient,
                replica_retries: self.metrics.replica_retries - metrics_before.replica_retries,
                failovers: self.metrics.failovers - metrics_before.failovers,
                elapsed,
                profile,
            },
        })
    }

    /// Reads one node's service counters.
    pub fn node_stats(&mut self, node: usize) -> Result<MetricsSnapshot> {
        let link = self
            .links
            .get_mut(node)
            .ok_or_else(|| ClusterError::BadRequest(format!("no node {node}")))?;
        match link.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(node, &other)),
        }
    }

    /// Probes every node with a heartbeat and folds the answers into the
    /// health state machine: a miss turns the node Suspect (and counts
    /// toward flap exclusion), an answer restores a Suspect node. A link
    /// dirtied by an earlier failure re-dials before the probe
    /// ([`NodeLink::call`] on a dirty link reconnects first), so a node
    /// that died and came back *can* answer and be restored — the probe
    /// is never wedged on the dead socket.
    /// Returns each node's `(epoch, accepting)` or `None` for a miss.
    pub fn heartbeat(&mut self) -> Vec<Option<(u64, bool)>> {
        let limit = self.policy.flap_limit;
        let mut out = Vec::with_capacity(self.links.len());
        for node in 0..self.links.len() {
            match self.links[node].call(&Request::Heartbeat) {
                Ok(Reply::HeartbeatAck { epoch, accepting }) => {
                    self.health[node].record_success();
                    out.push(Some((epoch, accepting)));
                }
                _ => {
                    self.health[node].heartbeats_missed += 1;
                    self.metrics.heartbeats_missed += 1;
                    if self.health[node].record_failure(limit) {
                        self.metrics.nodes_excluded += 1;
                    }
                    out.push(None);
                }
            }
        }
        out
    }

    /// Re-synchronizes a (possibly stale) coordinator with the cluster:
    /// reconnects every link, adopts the highest-epoch membership view
    /// any node reports (rebuilding links if the member set changed),
    /// pushes the adopted view back out, forgets all derived temporaries
    /// and cached replicas, resets node health (excluded nodes get a
    /// fresh start under the new view), and re-derives every fragment's
    /// holders from the adopted placement.
    pub fn refresh(&mut self) -> Result<()> {
        for link in &mut self.links {
            let _ = link.reconnect();
        }
        let mut best: Option<(u64, Vec<String>, u16)> = None;
        for link in &mut self.links {
            if let Ok(Reply::Epoch {
                epoch,
                members,
                replication,
            }) = link.call(&Request::ClusterEpoch(EpochRequest::Get))
            {
                if best.as_ref().is_none_or(|(e, _, _)| epoch > *e) {
                    best = Some((epoch, members, replication));
                }
            }
        }
        if let Some((epoch, members, replication)) = best {
            let current: Vec<String> = self.links.iter().map(|l| l.addr().to_string()).collect();
            if members != current {
                let timeout = self.links[0].read_timeout();
                let links = members
                    .iter()
                    .enumerate()
                    .map(|(node, addr)| NodeLink::connect(node, addr.as_str(), timeout))
                    .collect::<Result<Vec<_>>>()?;
                self.links = links;
            }
            self.epoch = self.epoch.max(epoch);
            self.replication = (replication as usize).clamp(1, self.links.len());
        }
        self.push_epoch();
        self.forget_derived();
        let n = self.links.len();
        let k = self.replication;
        let mut stamp = self.next_stamp;
        for rel in self.catalog.values_mut() {
            stamp += 1;
            rel.stamp = stamp;
            rel.versions = vec![0; n];
            rel.per_node = vec![0; n];
            rel.holders = (0..n).map(|f| catalog::placement(f, n, k)).collect();
        }
        self.next_stamp = stamp;
        self.health = vec![NodeHealth::default(); n];
        Ok(())
    }

    /// Adds the node at `addr` to the cluster: snapshots every base
    /// relation (failover reads), bumps the catalog epoch, pushes the
    /// new membership view to every node (the joiner included), and
    /// re-registers the relations under the widened placement. Returns
    /// the new node's index.
    pub fn join_node(&mut self, addr: impl std::net::ToSocketAddrs) -> Result<usize> {
        let node = self.links.len();
        if node + 1 > MAX_CLUSTER_NODES {
            return Err(ClusterError::BadRequest(format!(
                "cluster is at the {MAX_CLUSTER_NODES}-node protocol limit"
            )));
        }
        let bases = self.snapshot_bases()?;
        let timeout = self.links[0].read_timeout();
        let link = NodeLink::connect(node, addr, timeout)?;
        self.links.push(link);
        self.health.push(NodeHealth::default());
        self.epoch += 1;
        self.push_epoch();
        self.forget_derived();
        self.reregister(bases)?;
        Ok(node)
    }

    /// Removes node `node` from the cluster (dead or alive): snapshots
    /// every base relation first (failover reads survive the node being
    /// gone when `k ≥ 2`), drops its link, renumbers the rest, bumps the
    /// catalog epoch, pushes the shrunk membership view, and
    /// re-registers the relations under the narrowed placement.
    pub fn remove_node(&mut self, node: usize) -> Result<()> {
        if node >= self.links.len() {
            return Err(ClusterError::BadRequest(format!("no node {node}")));
        }
        if self.links.len() == 1 {
            return Err(ClusterError::BadRequest(
                "cannot remove the last node".into(),
            ));
        }
        let bases = self.snapshot_bases()?;
        self.links.remove(node);
        for (index, link) in self.links.iter_mut().enumerate() {
            link.renumber(index);
        }
        self.health = vec![NodeHealth::default(); self.links.len()];
        self.replication = self.replication.min(self.links.len());
        self.epoch += 1;
        self.push_epoch();
        self.forget_derived();
        self.reregister(bases)?;
        Ok(())
    }

    /// Asks every node to shut down gracefully. Node failures are
    /// collected, not short-circuited, so one dead node does not leave
    /// the rest running.
    pub fn shutdown_nodes(&mut self) -> Vec<Result<()>> {
        self.links
            .iter_mut()
            .map(|link| match link.call(&Request::Shutdown) {
                Ok(Reply::ShuttingDown) => Ok(()),
                Ok(other) => Err(unexpected(link.node(), &other)),
                Err(e) => Err(e),
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Membership plumbing

    /// Best-effort epoch adoption at connect time: take the highest
    /// epoch (and its replication factor) any node reports.
    fn adopt_epoch_best_effort(&mut self) {
        let mut best: Option<(u64, u16)> = None;
        for link in &mut self.links {
            if let Ok(Reply::Epoch {
                epoch, replication, ..
            }) = link.call(&Request::ClusterEpoch(EpochRequest::Get))
            {
                if best.is_none_or(|(e, _)| epoch > e) {
                    best = Some((epoch, replication));
                }
            }
        }
        if let Some((epoch, replication)) = best {
            self.epoch = self.epoch.max(epoch);
            self.replication = (replication as usize).clamp(1, self.links.len());
        }
    }

    /// Pushes the coordinator's membership view to every node,
    /// best-effort: a dead node cannot take it (it learns on restart or
    /// removal), and a node holding a *newer* view refuses — which the
    /// next data-plane request surfaces as `StaleEpoch`.
    fn push_epoch(&mut self) {
        let members: Vec<String> = self.links.iter().map(|l| l.addr().to_string()).collect();
        let request = Request::ClusterEpoch(EpochRequest::Set {
            epoch: self.epoch,
            members,
            replication: self.replication as u16,
        });
        for link in &mut self.links {
            let _ = link.call(&request);
        }
    }

    /// Fetches the full contents of every base relation, in sorted name
    /// order, via failover reads.
    #[allow(clippy::type_complexity)]
    fn snapshot_bases(&mut self) -> Result<Vec<(String, Schema, Vec<usize>, Vec<Tuple>)>> {
        let mut names: Vec<String> = self
            .catalog
            .keys()
            .filter(|k| !k.starts_with(".part.") && !k.starts_with(catalog::FULL_COPY_PREFIX))
            .cloned()
            .collect();
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let rel = self.lookup(&name)?.clone();
            let tuples = self.fetch_fragments(&name, &rel)?;
            out.push((name, rel.schema, rel.shard_keys, tuples));
        }
        Ok(out)
    }

    /// Re-registers snapshotted base relations under the current
    /// membership and replication factor.
    fn reregister(&mut self, bases: Vec<(String, Schema, Vec<usize>, Vec<Tuple>)>) -> Result<()> {
        for (name, schema, shard_keys, tuples) in bases {
            let relation = Relation::from_tuples(schema, tuples)
                .map_err(|e| ClusterError::Exec(format!("rebuilding {name:?}: {e}")))?;
            self.register(&name, &relation, &shard_keys)?;
        }
        Ok(())
    }

    /// Forgets every derived temporary and cached replica: after a
    /// membership or epoch change they describe a placement that no
    /// longer exists.
    fn forget_derived(&mut self) {
        self.installed.clear();
        self.catalog.retain(|name, _| !name.starts_with(".part."));
    }

    /// Forgets the derived temporaries and cached divisor replicas of
    /// one relation: anything built from a version that is being (or
    /// failed to be) replaced is stale.
    fn forget_derivations_of(&mut self, name: &str) {
        let prefix_repl = format!(".repl.{name}.");
        let prefix_part = format!(".part.{name}.");
        self.installed.retain(|(_, t)| !t.starts_with(&prefix_repl));
        self.catalog.retain(|t, _| !t.starts_with(&prefix_part));
    }

    // -----------------------------------------------------------------
    // Strategy drivers

    fn divide_quotient_partitioned(
        &mut self,
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        options: &ClusterQueryOptions,
    ) -> Result<StrategyOutcome> {
        // Quotient partitioning is only correct when no quotient value
        // spans nodes: repartition the dividend on the quotient keys
        // unless it is already sharded that way.
        let dividend_rel = self.lookup(dividend)?.clone();
        let local_dividend = if dividend_rel.shard_keys == spec.quotient_keys {
            dividend.to_owned()
        } else {
            self.repartition_to_temp(dividend, &spec.quotient_keys, None, "")?
                .0
        };
        // Replicate the divisor to every node, cached by the catalog
        // stamp. A node that fails the install simply misses the replica
        // — the failover driver skips it as a candidate.
        let divisor_rel = self.lookup(divisor)?.clone();
        let repl = format!(".repl.{divisor}.{}", divisor_rel.stamp);
        let nodes = self.links.len();
        let missing: Vec<usize> = (0..nodes)
            .filter(|&n| !self.installed.contains(&(n, repl.clone())))
            .collect();
        if !missing.is_empty() {
            let fragments = self.fetch_fragments(divisor, &divisor_rel)?;
            let all_cols: Vec<usize> = (0..divisor_rel.schema.arity()).collect();
            let epoch = self.epoch;
            let items: Vec<WriteItem> = missing
                .iter()
                .map(|&node| WriteItem {
                    fragment: node,
                    node,
                    request: Request::Shard(ShardRequest {
                        name: repl.clone(),
                        shard: 0,
                        of: 1,
                        shard_keys: all_cols.clone(),
                        schema: divisor_rel.schema.clone(),
                        tuples: fragments.clone(),
                        epoch: Some(epoch),
                    }),
                })
                .collect();
            for (_, node, result) in self.fan_out_writes(items) {
                match result {
                    Ok(Reply::Sharded { .. }) => {
                        self.installed.insert((node, repl.clone()));
                    }
                    Ok(other) => return Err(unexpected(node, &other)),
                    Err(e) => {
                        if e.is_stale_epoch() {
                            return Err(e);
                        }
                    }
                }
            }
        }
        // One independent local division per fragment; quotients
        // concatenate.
        let participating: Vec<usize> = (0..nodes).collect();
        let partials = self.divide_partial(
            &participating,
            &local_dividend,
            &repl,
            spec,
            options.profile,
        )?;
        let mut tuples = Vec::new();
        for p in &partials {
            tuples.extend(p.reply.tuples.iter().cloned());
        }
        Ok(StrategyOutcome {
            tuples,
            participating,
            filtered_tuples: 0,
            filter_fill_ratio: None,
            partials,
        })
    }

    fn divide_divisor_partitioned(
        &mut self,
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        options: &ClusterQueryOptions,
    ) -> Result<StrategyOutcome> {
        let divisor_rel = self.lookup(divisor)?.clone();
        let empty_divisor = divisor_rel.cardinality == 0;
        let nodes = self.links.len();
        // Build and merge the per-fragment bit-vector filters. An empty
        // divisor makes the division vacuous (every quotient value
        // qualifies), so filtering would wrongly drop everything.
        let filter = match options.bit_vector_bits {
            Some(bits) if !empty_divisor => {
                Some(self.merged_filter(divisor, &divisor_rel, bits)?)
            }
            _ => None,
        };
        let filter_fill_ratio = filter.as_ref().map(|f| f.fill_ratio());
        // Repartition the divisor on all its columns; the owner of bucket
        // j is node j.
        let all_cols: Vec<usize> = (0..divisor_rel.schema.arity()).collect();
        let (divisor_parts, _) = self.repartition_to_temp(divisor, &all_cols, None, "")?;
        let divisor_per_node = self.lookup(&divisor_parts)?.per_node.clone();
        let participating: Vec<usize> = if empty_divisor {
            (0..nodes).collect()
        } else {
            (0..nodes).filter(|&n| divisor_per_node[n] > 0).collect()
        };
        // Repartition the dividend on the divisor attributes, filter
        // applied at the sending sites. Tuples routed to a node with no
        // divisor cluster cannot influence the quotient and are dropped
        // at the coordinator switch (counted, never shipped onward).
        // A filtered temp's contents depend on the divisor that built the
        // filter, so its cache identity must carry that divisor's name
        // and stamp — otherwise dividing the same dividend by a different
        // divisor would reuse tuples pruned against the wrong one.
        let filter_tag = if filter.is_some() {
            format!(".{divisor}.{}", divisor_rel.stamp)
        } else {
            String::new()
        };
        let (dividend_parts, filtered_tuples) = self.repartition_to_temp_participating(
            dividend,
            spec,
            filter,
            &filter_tag,
            &participating,
        )?;
        let partials = self.divide_partial(
            &participating,
            &dividend_parts,
            &divisor_parts,
            spec,
            options.profile,
        )?;
        // The collection-phase division, shared verbatim with the thread
        // machine: a quotient value survives only if every participating
        // fragment reported it.
        let quotient_schema = spec
            .quotient_schema(&self.lookup(dividend)?.schema)
            .map_err(|e| ClusterError::BadRequest(e.to_string()))?;
        let mut site = CollectionSite::new(&quotient_schema, &participating, empty_divisor)
            .map_err(|e| ClusterError::Exec(e.to_string()))?;
        for p in &partials {
            for t in &p.reply.tuples {
                site.absorb(p.fragment, t)
                    .map_err(|e| ClusterError::Exec(e.to_string()))?;
            }
        }
        Ok(StrategyOutcome {
            tuples: site.finish(),
            participating,
            filtered_tuples,
            filter_fill_ratio,
            partials,
        })
    }

    // -----------------------------------------------------------------
    // Wire phases

    /// Runs one request per fragment through the failover driver: one
    /// scoped thread per fragment, candidates tried primary-first with
    /// reconnects and jittered backoff between same-node attempts.
    /// Health observations and retry counters are collected per fragment
    /// and folded in after the scope ends. Any fragment exhausting its
    /// candidates fails the phase — a missing fragment would silently
    /// corrupt the quotient — with `StaleEpoch` preferred over transport
    /// errors so a stale coordinator knows to refresh.
    fn call_fragments(&mut self, tasks: Vec<FragmentTask>) -> Result<Vec<FragmentReply>> {
        let policy = self.policy;
        let base_rng = self.rng;
        self.rng = splitmix64(self.rng);
        let health_view: Vec<NodeHealth> = self.health.clone();
        let outcomes: Vec<(Result<FragmentReply>, FragmentEvents)> = {
            let links: Vec<Mutex<&mut NodeLink>> = self.links.iter_mut().map(Mutex::new).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = tasks
                    .into_iter()
                    .map(|task| {
                        let links = &links;
                        let health_view = &health_view;
                        s.spawn(move || {
                            let rng = splitmix64(base_rng ^ (task.fragment as u64 + 1));
                            run_fragment(&task, links, health_view, policy, rng)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            (
                                Err(ClusterError::Exec("fragment thread panicked".into())),
                                FragmentEvents::default(),
                            )
                        })
                    })
                    .collect()
            })
        };
        let mut replies = Vec::new();
        let mut stale: Option<ClusterError> = None;
        let mut first_err: Option<ClusterError> = None;
        for (result, events) in outcomes {
            self.apply_events(events);
            match result {
                Ok(r) => replies.push(r),
                Err(e) => {
                    if e.is_stale_epoch() {
                        stale.get_or_insert(e);
                    } else {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        if let Some(e) = stale {
            return Err(e);
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        replies.sort_by_key(|r| r.fragment);
        Ok(replies)
    }

    /// Folds one fragment's health observations and retry counters into
    /// the coordinator state.
    fn apply_events(&mut self, events: FragmentEvents) {
        self.metrics.replica_retries += events.replica_retries;
        self.metrics.failovers += events.failovers;
        let limit = self.policy.flap_limit;
        for (node, ok) in events.node_events {
            if ok {
                self.health[node].record_success();
            } else if self.health[node].record_failure(limit) {
                self.metrics.nodes_excluded += 1;
            }
        }
    }

    /// Runs a batch of writes: one scoped thread per node executes that
    /// node's list sequentially on its own link (no locking — each link
    /// has exactly one writer). Returns every `(fragment, node, result)`
    /// and folds transport failures into node health; acknowledgment
    /// accounting is the caller's.
    fn fan_out_writes(&mut self, items: Vec<WriteItem>) -> Vec<(usize, usize, Result<Reply>)> {
        let n = self.links.len();
        let mut per_node: Vec<Vec<(usize, Request)>> = (0..n).map(|_| Vec::new()).collect();
        for item in items {
            per_node[item.node].push((item.fragment, item.request));
        }
        let results: Vec<Vec<(usize, usize, Result<Reply>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .links
                .iter_mut()
                .zip(per_node)
                .enumerate()
                .filter_map(|(node, (link, list))| {
                    if list.is_empty() {
                        None
                    } else {
                        Some(s.spawn(move || {
                            list.into_iter()
                                .map(|(fragment, request)| (fragment, node, link.call(&request)))
                                .collect::<Vec<_>>()
                        }))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        let flat: Vec<(usize, usize, Result<Reply>)> = results.into_iter().flatten().collect();
        let limit = self.policy.flap_limit;
        for (_, node, result) in &flat {
            match result {
                Ok(_) => self.health[*node].record_success(),
                Err(ClusterError::NodeFailed { .. }) => {
                    if self.health[*node].record_failure(limit) {
                        self.metrics.nodes_excluded += 1;
                    }
                }
                Err(_) => {}
            }
        }
        flat
    }

    /// Settles a replicated write fan-out: every fragment must collect
    /// at least one acknowledgment (else the fragment is lost and the
    /// write fails, `StaleEpoch` preferred). Returns each fragment's
    /// acknowledging holders in placement order (primary first) and the
    /// per-node catalog versions; a failure reports whether any node
    /// acked, so the caller knows if the cluster is in a mixed state.
    fn settle_writes(
        &mut self,
        items: Vec<WriteItem>,
        fragments: usize,
        k: usize,
    ) -> std::result::Result<(Vec<Vec<usize>>, Vec<u64>), WriteFailure> {
        let n = self.links.len();
        let mut holders: Vec<Vec<usize>> = vec![Vec::new(); fragments];
        let mut versions = vec![0u64; n];
        let mut stale: Option<ClusterError> = None;
        let mut frag_err: Vec<Option<ClusterError>> = (0..fragments).map(|_| None).collect();
        let mut any_acks = false;
        for (fragment, node, result) in self.fan_out_writes(items) {
            match result {
                Ok(Reply::Sharded { version }) | Ok(Reply::ReplicaAck { version, .. }) => {
                    any_acks = true;
                    holders[fragment].push(node);
                    versions[node] = version;
                }
                Ok(other) => {
                    frag_err[fragment].get_or_insert(unexpected(node, &other));
                }
                Err(e) => {
                    if e.is_stale_epoch() && stale.is_none() {
                        stale = Some(e.clone());
                    }
                    frag_err[fragment].get_or_insert(e);
                }
            }
        }
        if let Some(error) = stale {
            return Err(WriteFailure { error, any_acks });
        }
        for (fragment, holder_set) in holders.iter_mut().enumerate() {
            if holder_set.is_empty() && frag_err[fragment].is_some() {
                let error = frag_err[fragment].take().expect("checked above");
                return Err(WriteFailure { error, any_acks });
            }
            let order = catalog::placement(fragment, n, k);
            holder_set
                .sort_by_key(|node| order.iter().position(|x| x == node).unwrap_or(usize::MAX));
        }
        Ok((holders, versions))
    }

    fn lookup(&self, name: &str) -> Result<&ShardedRelation> {
        self.catalog
            .get(name)
            .ok_or_else(|| ClusterError::BadRequest(format!("unknown relation {name:?}")))
    }

    /// Fetches every fragment of `name` (a one-bucket repartition per
    /// fragment, served by any holder) and concatenates them in fragment
    /// order.
    fn fetch_fragments(&mut self, name: &str, rel: &ShardedRelation) -> Result<Vec<Tuple>> {
        let epoch = self.epoch;
        let tasks: Vec<FragmentTask> = (0..rel.holders.len())
            .map(|fragment| {
                let name = name.to_owned();
                let keys = rel.shard_keys.clone();
                FragmentTask {
                    fragment,
                    holders: rel.holders[fragment].clone(),
                    build: Box::new(move |node| {
                        Request::Repartition(RepartitionRequest {
                            name: catalog::name_on(node, fragment, &name),
                            keys: keys.clone(),
                            parts: 1,
                            filter: None,
                            epoch: Some(epoch),
                        })
                    }),
                }
            })
            .collect();
        let mut out = Vec::new();
        for r in self.call_fragments(tasks)? {
            match r.reply {
                Reply::Repartitioned { mut buckets, .. } => {
                    out.append(&mut buckets.remove(0));
                }
                other => return Err(unexpected(r.holder, &other)),
            }
        }
        Ok(out)
    }

    /// Builds a filter over each fragment of `name` (served by any
    /// holder) and ORs the fragments' filters together.
    fn merged_filter(
        &mut self,
        name: &str,
        rel: &ShardedRelation,
        bits: usize,
    ) -> Result<BitVectorFilter> {
        let epoch = self.epoch;
        let keys: Vec<usize> = (0..rel.schema.arity()).collect();
        let tasks: Vec<FragmentTask> = (0..rel.holders.len())
            .map(|fragment| {
                let name = name.to_owned();
                let keys = keys.clone();
                FragmentTask {
                    fragment,
                    holders: rel.holders[fragment].clone(),
                    build: Box::new(move |node| Request::BuildFilter {
                        name: catalog::name_on(node, fragment, &name),
                        keys: keys.clone(),
                        bits: bits as u32,
                        epoch: Some(epoch),
                    }),
                }
            })
            .collect();
        let mut merged: Option<BitVectorFilter> = None;
        for r in self.call_fragments(tasks)? {
            match r.reply {
                Reply::Filter { filter, .. } => match &mut merged {
                    None => merged = Some(filter),
                    Some(m) => {
                        if !m.union(&filter) {
                            return Err(ClusterError::NodeFailed {
                                node: r.holder,
                                kind: FailureKind::Other,
                                detail: format!(
                                    "filter geometry mismatch: {} vs {} bits",
                                    m.bits(),
                                    filter.bits()
                                ),
                            });
                        }
                    }
                },
                other => return Err(unexpected(r.holder, &other)),
            }
        }
        merged.ok_or_else(|| ClusterError::BadRequest("cluster has no nodes".into()))
    }

    /// Repartitions `name` on `keys` across all nodes into a temp
    /// relation; returns `(temp name, tuples filtered at the senders)`.
    /// Cached by the source relation's stamp: if every participating
    /// fragment of the temp still has a holder, nothing crosses the
    /// network.
    fn repartition_to_temp(
        &mut self,
        name: &str,
        keys: &[usize],
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
    ) -> Result<(String, u64)> {
        let participating: Vec<usize> = (0..self.links.len()).collect();
        self.repartition_keys_to(name, keys, filter, filter_tag, &participating)
    }

    /// Like [`Self::repartition_to_temp`] but on the division spec's
    /// divisor keys and shipping only to `participating` nodes; buckets
    /// owned by non-participating nodes are dropped and counted.
    fn repartition_to_temp_participating(
        &mut self,
        name: &str,
        spec: &DivisionSpec,
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
        participating: &[usize],
    ) -> Result<(String, u64)> {
        self.repartition_keys_to(name, &spec.divisor_keys, filter, filter_tag, participating)
    }

    fn repartition_keys_to(
        &mut self,
        name: &str,
        keys: &[usize],
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
        participating: &[usize],
    ) -> Result<(String, u64)> {
        let rel = self.lookup(name)?.clone();
        let nodes = self.links.len();
        let k = self.replication;
        let epoch = self.epoch;
        let fbits = filter.as_ref().map_or(0, |f| f.bits());
        let key_tag: String = keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("_");
        // `filter_tag` names the divisor (and its stamp) whose filter
        // pruned the tuples; unfiltered temps carry no tag.
        let temp = format!(
            ".part.{name}.{}.{nodes}.{key_tag}.{fbits}{filter_tag}",
            rel.stamp
        );
        if let Some(existing) = self.catalog.get(&temp) {
            if participating
                .iter()
                .all(|&f| !existing.holders[f].is_empty())
            {
                // The cached temp was built by dropping tuples at the
                // senders; a query served from it excludes them just the
                // same, so report the build-time count, not zero.
                return Ok((temp, existing.filtered_at_build));
            }
        }
        // Phase 1: each fragment is bucketed by one of its holders
        // (filter applied at the sender).
        let tasks: Vec<FragmentTask> = (0..rel.holders.len())
            .map(|fragment| {
                let name = name.to_owned();
                let keys = keys.to_vec();
                let filter = filter.clone();
                FragmentTask {
                    fragment,
                    holders: rel.holders[fragment].clone(),
                    build: Box::new(move |node| {
                        Request::Repartition(RepartitionRequest {
                            name: catalog::name_on(node, fragment, &name),
                            keys: keys.clone(),
                            parts: nodes as u16,
                            filter: filter.clone(),
                            epoch: Some(epoch),
                        })
                    }),
                }
            })
            .collect();
        let mut dest: Vec<Vec<Tuple>> = vec![Vec::new(); nodes];
        let mut filtered = 0u64;
        for r in self.call_fragments(tasks)? {
            match r.reply {
                Reply::Repartitioned {
                    buckets,
                    filtered: f,
                    ..
                } => {
                    if buckets.len() != nodes {
                        return Err(ClusterError::NodeFailed {
                            node: r.holder,
                            kind: FailureKind::Other,
                            detail: format!("{} buckets for {nodes} nodes", buckets.len()),
                        });
                    }
                    filtered += f;
                    for (j, mut bucket) in buckets.into_iter().enumerate() {
                        dest[j].append(&mut bucket);
                    }
                }
                other => return Err(unexpected(r.holder, &other)),
            }
        }
        // Phase 2: switch each aggregated bucket to its owner node plus
        // that fragment's replicas. Buckets owned by non-participating
        // nodes are dropped here — their divisor cluster is empty, so
        // their tuples cannot appear in the quotient.
        let is_participating: Vec<bool> = {
            let mut v = vec![false; nodes];
            for &p in participating {
                v[p] = true;
            }
            v
        };
        let mut items = Vec::new();
        let mut per_node = vec![0usize; nodes];
        for (j, bucket) in dest.into_iter().enumerate() {
            if !is_participating[j] {
                filtered += bucket.len() as u64;
                continue;
            }
            per_node[j] = bucket.len();
            for &node in &catalog::placement(j, nodes, k) {
                let request = if node == j {
                    Request::Shard(ShardRequest {
                        name: temp.clone(),
                        shard: j as u16,
                        of: nodes as u16,
                        shard_keys: keys.to_vec(),
                        schema: rel.schema.clone(),
                        tuples: bucket.clone(),
                        epoch: Some(epoch),
                    })
                } else {
                    Request::ReplicaWrite(ReplicaWriteRequest {
                        name: temp.clone(),
                        fragment: j as u16,
                        of: nodes as u16,
                        shard_keys: keys.to_vec(),
                        schema: rel.schema.clone(),
                        tuples: bucket.clone(),
                        epoch: Some(epoch),
                    })
                };
                items.push(WriteItem {
                    fragment: j,
                    node,
                    request,
                });
            }
        }
        // A partial failure needs no catalog cleanup here: the temp is
        // only recorded on success, and a retry rewrites every fragment
        // under the same name.
        let (mut holders, versions) = self.settle_writes(items, nodes, k).map_err(|f| f.error)?;
        // A fragment that got no write at all (non-participating) keeps
        // an empty holder list — it never serves requests.
        for (j, h) in holders.iter_mut().enumerate() {
            if !is_participating[j] {
                h.clear();
            }
        }
        // Record the temp in the coordinator catalog so later phases can
        // resolve its schema, holders, and per-node occupancy (the
        // participation decision for divisor partitioning reads it).
        self.next_stamp += 1;
        self.catalog.insert(
            temp.clone(),
            ShardedRelation {
                schema: rel.schema.clone(),
                shard_keys: keys.to_vec(),
                versions,
                cardinality: per_node.iter().sum(),
                per_node,
                stamp: self.next_stamp,
                holders,
                filtered_at_build: filtered,
            },
        );
        Ok((temp, filtered))
    }

    /// Runs `DividePartial` for each participating fragment through the
    /// failover driver, with dense tags in participation order, and
    /// verifies the echo. A fragment's candidates are the dividend
    /// holders that also hold the divisor (all install sites for a
    /// `.repl.` full copy; the divisor temp's holders otherwise).
    fn divide_partial(
        &mut self,
        participating: &[usize],
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        profile: bool,
    ) -> Result<Vec<Partial>> {
        let dividend_rel = self.lookup(dividend)?.clone();
        let full_copy = divisor.starts_with(catalog::FULL_COPY_PREFIX);
        let divisor_holders = if full_copy {
            None
        } else {
            Some(self.lookup(divisor)?.holders.clone())
        };
        let epoch = self.epoch;
        let mut tag_of: HashMap<usize, u16> = HashMap::new();
        let mut tasks = Vec::with_capacity(participating.len());
        for (tag, &fragment) in participating.iter().enumerate() {
            let tag = tag as u16;
            tag_of.insert(fragment, tag);
            let mut holders: Vec<usize> = dividend_rel.holders[fragment].clone();
            if full_copy {
                holders.retain(|&c| self.installed.contains(&(c, divisor.to_owned())));
            } else if let Some(dh) = &divisor_holders {
                holders.retain(|&c| dh[fragment].contains(&c));
            }
            if holders.is_empty() {
                return Err(ClusterError::Exec(format!(
                    "fragment {fragment}: no live node holds both operands"
                )));
            }
            let dividend = dividend.to_owned();
            let divisor = divisor.to_owned();
            let dk = spec.divisor_keys.clone();
            let qk = spec.quotient_keys.clone();
            tasks.push(FragmentTask {
                fragment,
                holders,
                build: Box::new(move |node| Request::DividePartial {
                    tag,
                    query: DivideRequest {
                        dividend: catalog::name_on(node, fragment, &dividend),
                        divisor: catalog::name_on(node, fragment, &divisor),
                        algorithm: Some(Algorithm::HashDivision {
                            mode: HashDivisionMode::Standard,
                        }),
                        assume_unique: false,
                        spec: Some((dk.clone(), qk.clone())),
                        deadline_ms: None,
                        profile,
                        distribute: None,
                        restricted: None,
                        mem_budget: None,
                    },
                    epoch: Some(epoch),
                }),
            });
        }
        let mut partials = Vec::with_capacity(participating.len());
        for r in self.call_fragments(tasks)? {
            match r.reply {
                Reply::PartialQuotient(reply) => {
                    let want = tag_of[&r.fragment];
                    if reply.tag != want {
                        return Err(ClusterError::NodeFailed {
                            node: r.holder,
                            kind: FailureKind::Other,
                            detail: format!("tag mismatch: sent {want} got {}", reply.tag),
                        });
                    }
                    partials.push(Partial {
                        fragment: r.fragment,
                        holder: r.holder,
                        reply,
                    });
                }
                other => return Err(unexpected(r.holder, &other)),
            }
        }
        Ok(partials)
    }
}

/// Tries a fragment's candidates in order: per candidate, up to
/// `policy.node_attempts` calls with a reconnect and jittered backoff
/// between them. A typed node refusal moves straight to the next
/// candidate (the node is alive — retrying the same request cannot
/// help); `StaleEpoch` is remembered and preferred when everything is
/// exhausted.
fn run_fragment(
    task: &FragmentTask,
    links: &[Mutex<&mut NodeLink>],
    health: &[NodeHealth],
    policy: RetryPolicy,
    mut rng: u64,
) -> (Result<FragmentReply>, FragmentEvents) {
    let mut events = FragmentEvents::default();
    let mut candidates: Vec<usize> = task
        .holders
        .iter()
        .copied()
        .filter(|&h| health[h].candidate())
        .collect();
    if candidates.is_empty() {
        // Every holder is excluded; trying them anyway beats failing
        // without a single attempt.
        candidates = task.holders.clone();
    }
    let mut stale: Option<ClusterError> = None;
    let mut last: Option<ClusterError> = None;
    for (rank, &holder) in candidates.iter().enumerate() {
        if rank > 0 {
            events.failovers += 1;
        }
        'attempts: for attempt in 1..=policy.node_attempts.max(1) {
            if attempt > 1 {
                events.replica_retries += 1;
                std::thread::sleep(policy.delay(attempt - 1, &mut rng));
                let reconnected = lock(&links[holder]).reconnect();
                if let Err(e) = reconnected {
                    events.node_events.push((holder, false));
                    last = Some(e);
                    break 'attempts;
                }
            }
            let request = (task.build)(holder);
            let outcome = lock(&links[holder]).call(&request);
            match outcome {
                Ok(reply) => {
                    events.node_events.push((holder, true));
                    return (
                        Ok(FragmentReply {
                            fragment: task.fragment,
                            holder,
                            reply,
                        }),
                        events,
                    );
                }
                Err(e @ ClusterError::NodeFailed { .. }) => {
                    events.node_events.push((holder, false));
                    last = Some(e);
                }
                Err(e) => {
                    if e.is_stale_epoch() && stale.is_none() {
                        stale = Some(e.clone());
                    }
                    last = Some(e);
                    break 'attempts;
                }
            }
        }
    }
    let err = stale.or(last).unwrap_or_else(|| {
        ClusterError::Exec(format!("fragment {} has no holders", task.fragment))
    });
    (Err(err), events)
}

/// Locks a mutex, surviving poisoning (a panicked sibling thread must
/// not wedge the whole phase).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Partial {
    fragment: usize,
    holder: usize,
    reply: PartialQuotientReply,
}

struct StrategyOutcome {
    tuples: Vec<Tuple>,
    participating: Vec<usize>,
    filtered_tuples: u64,
    filter_fill_ratio: Option<f64>,
    partials: Vec<Partial>,
}

fn unexpected(node: usize, reply: &Reply) -> ClusterError {
    ClusterError::NodeFailed {
        node,
        kind: FailureKind::Other,
        detail: format!("unexpected reply {reply:?}"),
    }
}

/// Folds a cluster run into one `EXPLAIN ANALYZE` tree: a network root
/// carrying the query's total wire traffic, one child span per
/// participating fragment carrying its serving node's link traffic and
/// local measurements, with the node's own span tree grafted beneath it.
#[allow(clippy::too_many_arguments)]
fn merge_profiles(
    strategy: Strategy,
    nodes: usize,
    participating: &[usize],
    filtered_tuples: u64,
    filter_fill_ratio: Option<f64>,
    per_link: &[LinkStats],
    bytes: u64,
    elapsed: Duration,
    partials: &[Partial],
) -> QueryProfile {
    let children = partials
        .iter()
        .map(|p| {
            let link = per_link.get(p.holder).copied().unwrap_or_default();
            ProfileNode {
                label: format!("node {}", p.holder),
                kind: SpanKind::Node,
                wall_micros: p.reply.micros,
                tuples_in: 0,
                tuples_out: p.reply.tuples.len() as u64,
                ops: p.reply.ops,
                pages_read: 0,
                pages_written: 0,
                spill_bytes: 0,
                network_bytes: link.total().1,
                phases: Vec::new(),
                children: p
                    .reply
                    .profile
                    .clone()
                    .map(|q| q.root)
                    .into_iter()
                    .collect(),
            }
        })
        .collect();
    let mut phases = vec![
        format!("{strategy:?} over TCP"),
        format!("{} of {nodes} nodes participating", participating.len()),
    ];
    if let Some(fill) = filter_fill_ratio {
        phases.push(format!(
            "bit-vector filter dropped {filtered_tuples} tuples (fill {fill:.2})"
        ));
    } else if filtered_tuples > 0 {
        phases.push(format!("{filtered_tuples} tuples dropped at the switch"));
    }
    QueryProfile {
        root: ProfileNode {
            label: format!("cluster division ({nodes} nodes)"),
            kind: SpanKind::Network,
            wall_micros: elapsed.as_micros() as u64,
            tuples_in: 0,
            tuples_out: partials.iter().map(|p| p.reply.tuples.len() as u64).sum(),
            ops: partials
                .iter()
                .fold(reldiv_rel::counters::OpSnapshot::default(), |acc, p| {
                    acc.merge(&p.reply.ops)
                }),
            pages_read: 0,
            pages_written: 0,
            spill_bytes: 0,
            network_bytes: bytes,
            phases,
            children,
        },
    }
}
