//! The coordinator: a sharded catalog plus the two Section 6 strategies
//! executed over real TCP links.
//!
//! The coordinator owns no tuple data between queries — relations live
//! hash-partitioned across the node services, placed by the same
//! [`route`] the thread machine uses (FNV-1a on the shard keys), so a
//! relation registered through the coordinator and one partitioned by
//! the in-process machine land identically.
//!
//! ## Quotient partitioning on the wire
//!
//! "The divisor table must be replicated in the main memory of all
//! participating processors. After replication, all local hash-division
//! operators work completely independently of each other." The
//! coordinator fetches every node's divisor fragment, concatenates them,
//! and installs the full divisor on every node under a version-stamped
//! replica name (so a re-run against unchanged inputs skips the
//! replication entirely). If the dividend is not already sharded on the
//! quotient attributes it is transparently repartitioned first — quotient
//! partitioning is only correct when no quotient value spans nodes. Each
//! node then runs one local hash division and the quotients concatenate.
//!
//! ## Divisor partitioning on the wire
//!
//! Both inputs are repartitioned on the divisor attributes *where they
//! live*: each node buckets its own shard ([`Request::Repartition`]) and
//! only the buckets cross the network, coordinator-switched to their
//! owner nodes. Each participating node divides its bucket pair locally
//! and tags the partial quotient; the coordinator runs the paper's
//! collection-phase division ([`CollectionSite`]) over the tagged
//! streams: a quotient value survives only if every participating node
//! reported it.
//!
//! ## Bit-vector filtering
//!
//! With a filter size configured, each divisor-owning node builds a
//! filter over its fragment ([`Request::BuildFilter`]), the coordinator
//! ORs them ([`BitVectorFilter::union`]), and the union rides inside the
//! dividend repartition requests: dividend tuples that cannot match any
//! divisor tuple are dropped at the node that holds them. Bits cross the
//! network; the tuples they exclude never do.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{Algorithm, DivisionSpec, ProfileNode, QueryProfile, SpanKind};
use reldiv_parallel::filter::BitVectorFilter;
use reldiv_parallel::strategy::CollectionSite;
use reldiv_parallel::{route, Strategy};
use reldiv_rel::{Relation, Schema, Tuple};
use reldiv_service::proto::{
    DivideRequest, PartialQuotientReply, RepartitionRequest, Reply, Request, ShardRequest,
};
use reldiv_service::MetricsSnapshot;

use crate::link::{LinkStats, NodeLink};
use crate::{ClusterError, Result};

/// How a cluster division should run.
#[derive(Debug, Clone, Default)]
pub struct ClusterQueryOptions {
    /// Which Section 6 strategy to execute.
    pub strategy: Strategy,
    /// Bit-vector filter size applied at the sending sites (divisor
    /// partitioning only). `None` ships every dividend tuple.
    pub bit_vector_bits: Option<usize>,
    /// Explicit `(divisor_keys, quotient_keys)`; `None` uses the
    /// trailing-divisor convention.
    pub spec: Option<(Vec<usize>, Vec<usize>)>,
    /// Collect per-node span trees and graft them under a cluster-level
    /// network root.
    pub profile: bool,
}

/// What the coordinator knows about a sharded relation.
#[derive(Debug, Clone)]
pub struct ShardedRelation {
    /// Relation schema (identical on every node).
    pub schema: Schema,
    /// Columns the relation is hash-partitioned on.
    pub shard_keys: Vec<usize>,
    /// Per-node catalog versions returned by the nodes.
    pub versions: Vec<u64>,
    /// Total tuples registered across all shards.
    pub cardinality: usize,
    /// Per-node shard cardinalities.
    pub per_node: Vec<usize>,
    /// Coordinator-side version stamp, embedded in the names of derived
    /// temporaries (replicas, repartitions) so stale derivations are
    /// never reused after an update.
    pub stamp: u64,
}

/// Measurements from one cluster division.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Nodes that held divisor data and ran local divisions (all nodes
    /// under quotient partitioning or an empty divisor).
    pub participating: Vec<usize>,
    /// Dividend tuples dropped at the sending sites — by the bit-vector
    /// filter, or because their divisor cluster is empty and they cannot
    /// influence the quotient.
    pub filtered_tuples: u64,
    /// Fill ratio of the merged bit-vector filter, if one was used.
    pub filter_fill_ratio: Option<f64>,
    /// Per-link traffic for this query (frames and bytes, both ways).
    pub per_link: Vec<LinkStats>,
    /// Total frames across all links for this query.
    pub messages: u64,
    /// Total bytes across all links for this query.
    pub bytes: u64,
    /// Quotient tuples each node contributed.
    pub per_node_quotient: Vec<u64>,
    /// Wall-clock time of the whole distributed query.
    pub elapsed: Duration,
    /// The merged profile: a network root with one span per node, each
    /// grafting the node's own span tree. Present when requested.
    pub profile: Option<QueryProfile>,
}

/// The quotient a cluster division produced.
#[derive(Debug, Clone)]
pub struct ClusterResponse {
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples.
    pub tuples: Vec<Tuple>,
    /// Traffic and participation measurements.
    pub report: ClusterReport,
}

/// The cluster coordinator: sharded catalog + strategy execution over
/// counted TCP links.
pub struct Coordinator {
    links: Vec<NodeLink>,
    catalog: HashMap<String, ShardedRelation>,
    /// `(node, temp name)` pairs already installed, so replication and
    /// repartitioning are skipped when the inputs have not changed.
    installed: HashSet<(usize, String)>,
    next_stamp: u64,
}

impl Coordinator {
    /// Connects to the nodes at `addrs` (node index = position).
    pub fn connect(
        addrs: &[std::net::SocketAddr],
        read_timeout: Option<Duration>,
    ) -> Result<Coordinator> {
        if addrs.is_empty() {
            return Err(ClusterError::BadRequest(
                "cluster needs at least one node".into(),
            ));
        }
        let mut links = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            links.push(NodeLink::connect(node, addr, read_timeout)?);
        }
        Ok(Coordinator {
            links,
            catalog: HashMap::new(),
            installed: HashSet::new(),
            next_stamp: 0,
        })
    }

    /// Wraps already-connected links (used by [`LocalCluster`]).
    ///
    /// [`LocalCluster`]: crate::local::LocalCluster
    pub fn from_links(links: Vec<NodeLink>) -> Result<Coordinator> {
        if links.is_empty() {
            return Err(ClusterError::BadRequest(
                "cluster needs at least one node".into(),
            ));
        }
        Ok(Coordinator {
            links,
            catalog: HashMap::new(),
            installed: HashSet::new(),
            next_stamp: 0,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.links.len()
    }

    /// Cumulative per-link traffic since connection.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.iter().map(|l| l.stats()).collect()
    }

    /// The coordinator's view of a registered relation.
    pub fn relation(&self, name: &str) -> Option<&ShardedRelation> {
        self.catalog.get(name)
    }

    /// Hash-partitions `relation` on `shard_keys` across the nodes and
    /// installs one shard per node. Replaces any previous version; stale
    /// derived temporaries are forgotten so they are rebuilt on demand.
    pub fn register(
        &mut self,
        name: &str,
        relation: &Relation,
        shard_keys: &[usize],
    ) -> Result<()> {
        let arity = relation.schema().arity();
        if shard_keys.is_empty() {
            return Err(ClusterError::BadRequest("empty shard key set".into()));
        }
        if let Some(&k) = shard_keys.iter().find(|&&k| k >= arity) {
            return Err(ClusterError::BadRequest(format!(
                "shard key {k} out of range for arity {arity}"
            )));
        }
        let n = self.links.len();
        let mut shards: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        for tuple in relation.tuples() {
            shards[route(tuple, shard_keys, n)].push(tuple.clone());
        }
        let per_node: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let schema = relation.schema().clone();
        let requests: Vec<Option<Request>> = shards
            .into_iter()
            .enumerate()
            .map(|(node, tuples)| {
                Some(Request::Shard(ShardRequest {
                    name: name.to_owned(),
                    shard: node as u16,
                    of: n as u16,
                    shard_keys: shard_keys.to_vec(),
                    schema: schema.clone(),
                    tuples,
                }))
            })
            .collect();
        let mut versions = vec![0u64; n];
        for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
            match reply {
                Some(Reply::Sharded { version }) => versions[node] = version,
                Some(other) => {
                    return Err(unexpected(node, &other));
                }
                None => unreachable!("every node got a shard"),
            }
        }
        self.next_stamp += 1;
        self.catalog.insert(
            name.to_owned(),
            ShardedRelation {
                schema,
                shard_keys: shard_keys.to_vec(),
                versions,
                cardinality: relation.tuples().len(),
                per_node,
                stamp: self.next_stamp,
            },
        );
        // Anything derived from the old version is stale.
        let prefix_repl = format!(".repl.{name}.");
        let prefix_part = format!(".part.{name}.");
        self.installed
            .retain(|(_, t)| !t.starts_with(&prefix_repl) && !t.starts_with(&prefix_part));
        Ok(())
    }

    /// Runs `dividend ÷ divisor` across the cluster.
    pub fn divide(
        &mut self,
        dividend: &str,
        divisor: &str,
        options: &ClusterQueryOptions,
    ) -> Result<ClusterResponse> {
        let start = Instant::now();
        let before: Vec<LinkStats> = self.links.iter().map(|l| l.stats()).collect();
        let dividend_rel = self.lookup(dividend)?;
        let divisor_rel = self.lookup(divisor)?;
        let spec = match &options.spec {
            Some((dk, qk)) => DivisionSpec::new(
                &dividend_rel.schema,
                &divisor_rel.schema,
                dk.clone(),
                qk.clone(),
            ),
            None => DivisionSpec::trailing_divisor(&dividend_rel.schema, &divisor_rel.schema),
        }
        .map_err(|e| ClusterError::BadRequest(e.to_string()))?;
        let quotient_schema = spec
            .quotient_schema(&dividend_rel.schema)
            .map_err(|e| ClusterError::BadRequest(e.to_string()))?;

        let outcome = match options.strategy {
            Strategy::QuotientPartitioning => {
                self.divide_quotient_partitioned(dividend, divisor, &spec, options)?
            }
            Strategy::DivisorPartitioning => {
                self.divide_divisor_partitioned(dividend, divisor, &spec, options)?
            }
        };
        let StrategyOutcome {
            tuples,
            participating,
            filtered_tuples,
            filter_fill_ratio,
            partials,
        } = outcome;

        let after: Vec<LinkStats> = self.links.iter().map(|l| l.stats()).collect();
        let per_link: Vec<LinkStats> = before
            .iter()
            .zip(&after)
            .map(|(b, a)| LinkStats {
                messages_sent: a.messages_sent - b.messages_sent,
                bytes_sent: a.bytes_sent - b.bytes_sent,
                messages_received: a.messages_received - b.messages_received,
                bytes_received: a.bytes_received - b.bytes_received,
            })
            .collect();
        let (messages, bytes) = per_link.iter().fold((0, 0), |(m, b), l| {
            let (lm, lb) = l.total();
            (m + lm, b + lb)
        });
        let mut per_node_quotient = vec![0u64; self.links.len()];
        for p in &partials {
            per_node_quotient[p.node] = p.reply.tuples.len() as u64;
        }
        let elapsed = start.elapsed();
        let profile = options.profile.then(|| {
            merge_profiles(
                options.strategy,
                self.links.len(),
                &participating,
                filtered_tuples,
                filter_fill_ratio,
                &per_link,
                bytes,
                elapsed,
                &partials,
            )
        });
        Ok(ClusterResponse {
            schema: quotient_schema,
            tuples,
            report: ClusterReport {
                strategy: options.strategy,
                nodes: self.links.len(),
                participating,
                filtered_tuples,
                filter_fill_ratio,
                per_link,
                messages,
                bytes,
                per_node_quotient,
                elapsed,
                profile,
            },
        })
    }

    /// Reads one node's service counters.
    pub fn node_stats(&mut self, node: usize) -> Result<MetricsSnapshot> {
        let link = self
            .links
            .get_mut(node)
            .ok_or_else(|| ClusterError::BadRequest(format!("no node {node}")))?;
        match link.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(node, &other)),
        }
    }

    /// Asks every node to shut down gracefully. Node failures are
    /// collected, not short-circuited, so one dead node does not leave
    /// the rest running.
    pub fn shutdown_nodes(&mut self) -> Vec<Result<()>> {
        self.links
            .iter_mut()
            .map(|link| match link.call(&Request::Shutdown) {
                Ok(Reply::ShuttingDown) => Ok(()),
                Ok(other) => Err(unexpected(link.node(), &other)),
                Err(e) => Err(e),
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Strategy drivers

    fn divide_quotient_partitioned(
        &mut self,
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        options: &ClusterQueryOptions,
    ) -> Result<StrategyOutcome> {
        // Quotient partitioning is only correct when no quotient value
        // spans nodes: repartition the dividend on the quotient keys
        // unless it is already sharded that way.
        let dividend_rel = self.lookup(dividend)?.clone();
        let local_dividend = if dividend_rel.shard_keys == spec.quotient_keys {
            dividend.to_owned()
        } else {
            self.repartition_to_temp(dividend, &spec.quotient_keys, None, "")?
                .0
        };
        // Replicate the divisor, cached by the catalog stamp.
        let divisor_rel = self.lookup(divisor)?.clone();
        let repl = format!(".repl.{divisor}.{}", divisor_rel.stamp);
        let nodes = self.links.len();
        let all_installed = (0..nodes).all(|n| self.installed.contains(&(n, repl.clone())));
        if !all_installed {
            let fragments = self.fetch_fragments(divisor, &divisor_rel)?;
            let all_cols: Vec<usize> = (0..divisor_rel.schema.arity()).collect();
            let requests: Vec<Option<Request>> = (0..nodes)
                .map(|_| {
                    Some(Request::Shard(ShardRequest {
                        name: repl.clone(),
                        shard: 0,
                        of: 1,
                        shard_keys: all_cols.clone(),
                        schema: divisor_rel.schema.clone(),
                        tuples: fragments.clone(),
                    }))
                })
                .collect();
            for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
                match reply {
                    Some(Reply::Sharded { .. }) => {
                        self.installed.insert((node, repl.clone()));
                    }
                    Some(other) => return Err(unexpected(node, &other)),
                    None => unreachable!("every node got the replica"),
                }
            }
        }
        // One independent local division per node; quotients concatenate.
        let participating: Vec<usize> = (0..nodes).collect();
        let partials = self.divide_partial(
            &participating,
            &local_dividend,
            &repl,
            spec,
            options.profile,
        )?;
        let mut tuples = Vec::new();
        for p in &partials {
            tuples.extend(p.reply.tuples.iter().cloned());
        }
        Ok(StrategyOutcome {
            tuples,
            participating,
            filtered_tuples: 0,
            filter_fill_ratio: None,
            partials,
        })
    }

    fn divide_divisor_partitioned(
        &mut self,
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        options: &ClusterQueryOptions,
    ) -> Result<StrategyOutcome> {
        let divisor_rel = self.lookup(divisor)?.clone();
        let empty_divisor = divisor_rel.cardinality == 0;
        let nodes = self.links.len();
        // Build and merge the per-fragment bit-vector filters. An empty
        // divisor makes the division vacuous (every quotient value
        // qualifies), so filtering would wrongly drop everything.
        let filter = match options.bit_vector_bits {
            Some(bits) if !empty_divisor => {
                Some(self.merged_filter(divisor, &divisor_rel, bits)?)
            }
            _ => None,
        };
        let filter_fill_ratio = filter.as_ref().map(|f| f.fill_ratio());
        // Repartition the divisor on all its columns; the owner of bucket
        // j is node j.
        let all_cols: Vec<usize> = (0..divisor_rel.schema.arity()).collect();
        let (divisor_parts, _) = self.repartition_to_temp(divisor, &all_cols, None, "")?;
        let divisor_per_node = self.lookup(&divisor_parts)?.per_node.clone();
        let participating: Vec<usize> = if empty_divisor {
            (0..nodes).collect()
        } else {
            (0..nodes).filter(|&n| divisor_per_node[n] > 0).collect()
        };
        // Repartition the dividend on the divisor attributes, filter
        // applied at the sending sites. Tuples routed to a node with no
        // divisor cluster cannot influence the quotient and are dropped
        // at the coordinator switch (counted, never shipped onward).
        // A filtered temp's contents depend on the divisor that built the
        // filter, so its cache identity must carry that divisor's name
        // and stamp — otherwise dividing the same dividend by a different
        // divisor would reuse tuples pruned against the wrong one.
        let filter_tag = if filter.is_some() {
            format!(".{divisor}.{}", divisor_rel.stamp)
        } else {
            String::new()
        };
        let (dividend_parts, filtered_tuples) = self.repartition_to_temp_participating(
            dividend,
            spec,
            filter,
            &filter_tag,
            &participating,
        )?;
        let partials = self.divide_partial(
            &participating,
            &dividend_parts,
            &divisor_parts,
            spec,
            options.profile,
        )?;
        // The collection-phase division, shared verbatim with the thread
        // machine: a quotient value survives only if every participating
        // node reported it.
        let quotient_schema = spec
            .quotient_schema(&self.lookup(dividend)?.schema)
            .map_err(|e| ClusterError::BadRequest(e.to_string()))?;
        let mut site = CollectionSite::new(&quotient_schema, &participating, empty_divisor)
            .map_err(|e| ClusterError::Exec(e.to_string()))?;
        for p in &partials {
            for t in &p.reply.tuples {
                site.absorb(p.node, t)
                    .map_err(|e| ClusterError::Exec(e.to_string()))?;
            }
        }
        Ok(StrategyOutcome {
            tuples: site.finish(),
            participating,
            filtered_tuples,
            filter_fill_ratio,
            partials,
        })
    }

    // -----------------------------------------------------------------
    // Wire phases

    /// Runs one request per node concurrently (one scoped thread per
    /// link with work). `None` entries are skipped. Any node failure
    /// fails the whole phase — a missing shard would silently corrupt
    /// the quotient.
    fn fan_out(&mut self, requests: Vec<Option<Request>>) -> Result<Vec<Option<Reply>>> {
        debug_assert_eq!(requests.len(), self.links.len());
        let results: Vec<Option<Result<Reply>>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .links
                .iter_mut()
                .zip(requests)
                .map(|(link, request)| request.map(|request| s.spawn(move || link.call(&request))))
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(node, handle)| {
                    handle.map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(ClusterError::NodeFailed {
                                node,
                                detail: "link thread panicked".into(),
                            })
                        })
                    })
                })
                .collect()
        });
        results
            .into_iter()
            .map(|r| r.transpose())
            .collect::<Result<Vec<Option<Reply>>>>()
    }

    fn lookup(&self, name: &str) -> Result<&ShardedRelation> {
        self.catalog
            .get(name)
            .ok_or_else(|| ClusterError::BadRequest(format!("unknown relation {name:?}")))
    }

    /// Fetches every node's local fragment of `name` (a one-bucket
    /// repartition) and concatenates them in node order.
    fn fetch_fragments(&mut self, name: &str, rel: &ShardedRelation) -> Result<Vec<Tuple>> {
        let keys: Vec<usize> = rel.shard_keys.clone();
        let requests: Vec<Option<Request>> = (0..self.links.len())
            .map(|_| {
                Some(Request::Repartition(RepartitionRequest {
                    name: name.to_owned(),
                    keys: keys.clone(),
                    parts: 1,
                    filter: None,
                }))
            })
            .collect();
        let mut out = Vec::new();
        for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
            match reply {
                Some(Reply::Repartitioned { mut buckets, .. }) => {
                    out.append(&mut buckets.remove(0));
                }
                Some(other) => return Err(unexpected(node, &other)),
                None => unreachable!("every node was asked"),
            }
        }
        Ok(out)
    }

    /// Asks every node to build a filter over its local fragment of
    /// `name` and ORs the fragments' filters together.
    fn merged_filter(
        &mut self,
        name: &str,
        rel: &ShardedRelation,
        bits: usize,
    ) -> Result<BitVectorFilter> {
        let keys: Vec<usize> = (0..rel.schema.arity()).collect();
        let requests: Vec<Option<Request>> = (0..self.links.len())
            .map(|_| {
                Some(Request::BuildFilter {
                    name: name.to_owned(),
                    keys: keys.clone(),
                    bits: bits as u32,
                })
            })
            .collect();
        let mut merged: Option<BitVectorFilter> = None;
        for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
            match reply {
                Some(Reply::Filter { filter, .. }) => match &mut merged {
                    None => merged = Some(filter),
                    Some(m) => {
                        if !m.union(&filter) {
                            return Err(ClusterError::NodeFailed {
                                node,
                                detail: format!(
                                    "filter geometry mismatch: {} vs {} bits",
                                    m.bits(),
                                    filter.bits()
                                ),
                            });
                        }
                    }
                },
                Some(other) => return Err(unexpected(node, &other)),
                None => unreachable!("every node was asked"),
            }
        }
        merged.ok_or_else(|| ClusterError::BadRequest("cluster has no nodes".into()))
    }

    /// Repartitions `name` on `keys` across all nodes into a temp
    /// relation; returns `(temp name, tuples filtered at the senders)`.
    /// Cached by the source relation's stamp: if every node already holds
    /// the temp shards, nothing crosses the network.
    fn repartition_to_temp(
        &mut self,
        name: &str,
        keys: &[usize],
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
    ) -> Result<(String, u64)> {
        let participating: Vec<usize> = (0..self.links.len()).collect();
        self.repartition_keys_to(name, keys, filter, filter_tag, &participating)
    }

    /// Like [`Self::repartition_to_temp`] but on the division spec's
    /// divisor keys and shipping only to `participating` nodes; buckets
    /// owned by non-participating nodes are dropped and counted.
    fn repartition_to_temp_participating(
        &mut self,
        name: &str,
        spec: &DivisionSpec,
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
        participating: &[usize],
    ) -> Result<(String, u64)> {
        self.repartition_keys_to(name, &spec.divisor_keys, filter, filter_tag, participating)
    }

    fn repartition_keys_to(
        &mut self,
        name: &str,
        keys: &[usize],
        filter: Option<BitVectorFilter>,
        filter_tag: &str,
        participating: &[usize],
    ) -> Result<(String, u64)> {
        let rel = self.lookup(name)?.clone();
        let nodes = self.links.len();
        let fbits = filter.as_ref().map_or(0, |f| f.bits());
        let key_tag: String = keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("_");
        // `filter_tag` names the divisor (and its stamp) whose filter
        // pruned the tuples; unfiltered temps carry no tag.
        let temp = format!(
            ".part.{name}.{}.{nodes}.{key_tag}.{fbits}{filter_tag}",
            rel.stamp
        );
        let cached = participating
            .iter()
            .all(|&n| self.installed.contains(&(n, temp.clone())));
        if cached {
            return Ok((temp, 0));
        }
        // Phase 1: every node buckets its local shard (filter applied at
        // the sender).
        let requests: Vec<Option<Request>> = (0..nodes)
            .map(|_| {
                Some(Request::Repartition(RepartitionRequest {
                    name: name.to_owned(),
                    keys: keys.to_vec(),
                    parts: nodes as u16,
                    filter: filter.clone(),
                }))
            })
            .collect();
        let mut dest: Vec<Vec<Tuple>> = vec![Vec::new(); nodes];
        let mut filtered = 0u64;
        for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
            match reply {
                Some(Reply::Repartitioned {
                    buckets,
                    filtered: f,
                    ..
                }) => {
                    if buckets.len() != nodes {
                        return Err(ClusterError::NodeFailed {
                            node,
                            detail: format!("{} buckets for {nodes} nodes", buckets.len()),
                        });
                    }
                    filtered += f;
                    for (j, mut bucket) in buckets.into_iter().enumerate() {
                        dest[j].append(&mut bucket);
                    }
                }
                Some(other) => return Err(unexpected(node, &other)),
                None => unreachable!("every node was asked"),
            }
        }
        // Phase 2: switch each aggregated bucket to its owner node.
        // Buckets owned by non-participating nodes are dropped here —
        // their divisor cluster is empty, so their tuples cannot appear
        // in the quotient.
        let is_participating: Vec<bool> = {
            let mut v = vec![false; nodes];
            for &p in participating {
                v[p] = true;
            }
            v
        };
        let mut requests: Vec<Option<Request>> = vec![None; nodes];
        let mut per_node = vec![0usize; nodes];
        for (j, bucket) in dest.into_iter().enumerate() {
            if !is_participating[j] {
                filtered += bucket.len() as u64;
                continue;
            }
            per_node[j] = bucket.len();
            requests[j] = Some(Request::Shard(ShardRequest {
                name: temp.clone(),
                shard: j as u16,
                of: nodes as u16,
                shard_keys: keys.to_vec(),
                schema: rel.schema.clone(),
                tuples: bucket,
            }));
        }
        let replies = self.fan_out(requests)?;
        let mut versions = vec![0u64; nodes];
        for (node, reply) in replies.into_iter().enumerate() {
            match reply {
                Some(Reply::Sharded { version }) => {
                    versions[node] = version;
                    self.installed.insert((node, temp.clone()));
                }
                Some(other) => return Err(unexpected(node, &other)),
                None => {}
            }
        }
        // Record the temp in the coordinator catalog so later phases can
        // resolve its schema and per-node occupancy (the participation
        // decision for divisor partitioning reads it).
        self.next_stamp += 1;
        self.catalog.insert(
            temp.clone(),
            ShardedRelation {
                schema: rel.schema.clone(),
                shard_keys: keys.to_vec(),
                versions,
                cardinality: per_node.iter().sum(),
                per_node,
                stamp: self.next_stamp,
            },
        );
        Ok((temp, filtered))
    }

    /// Runs `DividePartial` on each participating node concurrently,
    /// with dense tags in participation order, and verifies the echo.
    fn divide_partial(
        &mut self,
        participating: &[usize],
        dividend: &str,
        divisor: &str,
        spec: &DivisionSpec,
        profile: bool,
    ) -> Result<Vec<Partial>> {
        let nodes = self.links.len();
        let mut requests: Vec<Option<Request>> = vec![None; nodes];
        let mut tag_of = vec![u16::MAX; nodes];
        for (tag, &node) in participating.iter().enumerate() {
            tag_of[node] = tag as u16;
            requests[node] = Some(Request::DividePartial {
                tag: tag as u16,
                query: DivideRequest {
                    dividend: dividend.to_owned(),
                    divisor: divisor.to_owned(),
                    algorithm: Some(Algorithm::HashDivision {
                        mode: HashDivisionMode::Standard,
                    }),
                    assume_unique: false,
                    spec: Some((spec.divisor_keys.clone(), spec.quotient_keys.clone())),
                    deadline_ms: None,
                    profile,
                    distribute: None,
                    restricted: None,
                },
            });
        }
        let mut partials = Vec::with_capacity(participating.len());
        for (node, reply) in self.fan_out(requests)?.into_iter().enumerate() {
            match reply {
                Some(Reply::PartialQuotient(reply)) => {
                    if reply.tag != tag_of[node] {
                        return Err(ClusterError::NodeFailed {
                            node,
                            detail: format!(
                                "tag mismatch: sent {} got {}",
                                tag_of[node], reply.tag
                            ),
                        });
                    }
                    partials.push(Partial { node, reply });
                }
                Some(other) => return Err(unexpected(node, &other)),
                None => {}
            }
        }
        Ok(partials)
    }
}

struct Partial {
    node: usize,
    reply: PartialQuotientReply,
}

struct StrategyOutcome {
    tuples: Vec<Tuple>,
    participating: Vec<usize>,
    filtered_tuples: u64,
    filter_fill_ratio: Option<f64>,
    partials: Vec<Partial>,
}

fn unexpected(node: usize, reply: &Reply) -> ClusterError {
    ClusterError::NodeFailed {
        node,
        detail: format!("unexpected reply {reply:?}"),
    }
}

/// Folds a cluster run into one `EXPLAIN ANALYZE` tree: a network root
/// carrying the query's total wire traffic, one child span per
/// participating node carrying its link traffic and local measurements,
/// with the node's own span tree grafted beneath it.
#[allow(clippy::too_many_arguments)]
fn merge_profiles(
    strategy: Strategy,
    nodes: usize,
    participating: &[usize],
    filtered_tuples: u64,
    filter_fill_ratio: Option<f64>,
    per_link: &[LinkStats],
    bytes: u64,
    elapsed: Duration,
    partials: &[Partial],
) -> QueryProfile {
    let children = partials
        .iter()
        .map(|p| {
            let link = per_link.get(p.node).copied().unwrap_or_default();
            ProfileNode {
                label: format!("node {}", p.node),
                kind: SpanKind::Node,
                wall_micros: p.reply.micros,
                tuples_in: 0,
                tuples_out: p.reply.tuples.len() as u64,
                ops: p.reply.ops,
                pages_read: 0,
                pages_written: 0,
                spill_bytes: 0,
                network_bytes: link.total().1,
                phases: Vec::new(),
                children: p
                    .reply
                    .profile
                    .clone()
                    .map(|q| q.root)
                    .into_iter()
                    .collect(),
            }
        })
        .collect();
    let mut phases = vec![
        format!("{strategy:?} over TCP"),
        format!("{} of {nodes} nodes participating", participating.len()),
    ];
    if let Some(fill) = filter_fill_ratio {
        phases.push(format!(
            "bit-vector filter dropped {filtered_tuples} tuples (fill {fill:.2})"
        ));
    } else if filtered_tuples > 0 {
        phases.push(format!("{filtered_tuples} tuples dropped at the switch"));
    }
    QueryProfile {
        root: ProfileNode {
            label: format!("cluster division ({nodes} nodes)"),
            kind: SpanKind::Network,
            wall_micros: elapsed.as_micros() as u64,
            tuples_in: 0,
            tuples_out: partials.iter().map(|p| p.reply.tuples.len() as u64).sum(),
            ops: partials
                .iter()
                .fold(reldiv_rel::counters::OpSnapshot::default(), |acc, p| {
                    acc.merge(&p.reply.ops)
                }),
            pages_read: 0,
            pages_written: 0,
            spill_bytes: 0,
            network_bytes: bytes,
            phases,
            children,
        },
    }
}
