//! # reldiv-cluster — distributed division over real TCP
//!
//! Section 6 of the paper runs hash-division on a GAMMA-style
//! shared-nothing machine. `reldiv-parallel` simulates that machine with
//! threads and channels; this crate *deploys* it: every node is a full
//! `reldiv-service` process (storage, execution, admission control,
//! metrics) reached over the length-prefixed TCP protocol, and the
//! coordinator is a real process on the other end of real sockets.
//!
//! * [`Coordinator`] — owns the sharded catalog (relations
//!   hash-partitioned across the nodes with the same
//!   [`route`](reldiv_parallel::route) the thread machine uses) and
//!   executes `R ÷ S` with either Section 6 strategy **on the wire**:
//!   - [`Strategy::QuotientPartitioning`] — the divisor is replicated to
//!     every node (cached by catalog version), each node divides its
//!     dividend shard locally, and the quotients concatenate.
//!   - [`Strategy::DivisorPartitioning`] — both inputs are repartitioned
//!     on the divisor attributes *where they live* (each node buckets its
//!     own shard; only buckets cross the network), and the coordinator
//!     runs the paper's collection-phase division over the tagged partial
//!     quotients — the same [`CollectionSite`] the thread machine uses.
//! * **Replication & failover** ([`catalog`], [`health`]) — each fragment lives on a primary plus `k − 1` replica
//!   nodes (round-robin placement); every write fans out to all holders,
//!   and reads/sub-queries fail over between holders with bounded,
//!   jittered retries. With `k ≥ 2`, killing any single node at any
//!   point during a query still returns the exact quotient.
//! * **Elastic membership** — [`join_node`](Coordinator::join_node) /
//!   [`remove_node`](Coordinator::remove_node) re-replicate fragments
//!   under the new placement; a monotonically increasing *catalog epoch*
//!   rides on every data-plane request so a stale coordinator gets a
//!   typed `StaleEpoch` refusal, never a wrong quotient.
//! * **Bit-vector filtering** ([`filter`](reldiv_parallel::filter)) —
//!   each divisor-owning node builds a filter over its fragment, the
//!   coordinator ORs them, and the union rides inside the dividend
//!   repartition requests so non-matching tuples are dropped *at the
//!   sending site*: bits move over the network, tuples don't.
//! * [`NodeLink`] — a counted connection: per-link message and byte
//!   totals in both directions, so the traffic Section 6 reasons about is
//!   measurable per wire, and a read deadline so a dead node surfaces as
//!   a typed [`ClusterError::NodeFailed`] (with a classified
//!   [`FailureKind`]) instead of a hang.
//! * [`LocalCluster`] — spawns N in-process node servers on loopback for
//!   tests and benchmarks, with a [`kill`](LocalCluster::kill) switch for
//!   chaos testing.
//!
//! [`Strategy::QuotientPartitioning`]: reldiv_parallel::Strategy::QuotientPartitioning
//! [`Strategy::DivisorPartitioning`]: reldiv_parallel::Strategy::DivisorPartitioning
//! [`CollectionSite`]: reldiv_parallel::strategy::CollectionSite

#![deny(missing_docs)]

pub mod catalog;
pub mod coordinator;
pub mod health;
pub mod link;
pub mod local;

use std::fmt;

use reldiv_service::ServiceError;

pub use coordinator::{
    ClusterMetrics, ClusterQueryOptions, ClusterReport, ClusterResponse, Coordinator,
    ShardedRelation,
};
pub use health::{FailureKind, Health, NodeHealth, RetryPolicy};
pub use link::{LinkStats, NodeLink};
pub use local::LocalCluster;
pub use reldiv_parallel::Strategy;

/// Errors surfaced by the cluster coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node stopped answering: the connection broke, timed out, or
    /// returned bytes that do not parse. Surfaced only after failover
    /// exhausted every holder of the fragment; the coordinator's catalog
    /// still names the node so a retry after recovery is possible.
    NodeFailed {
        /// Index of the failed node.
        node: usize,
        /// How the failure presented on the wire.
        kind: FailureKind,
        /// What the link observed.
        detail: String,
    },
    /// A node answered with a typed service error (bad request, unknown
    /// relation, overload, stale epoch, …).
    Node {
        /// Index of the answering node.
        node: usize,
        /// The node's error.
        error: ServiceError,
    },
    /// The request is malformed at the coordinator (unknown relation,
    /// bad spec, zero nodes).
    BadRequest(String),
    /// The coordinator-side collection phase failed.
    Exec(String),
}

impl ClusterError {
    /// Whether this error is a node's `StaleEpoch` refusal: the
    /// coordinator's membership view is older than the cluster's and
    /// must be [`refresh`](Coordinator::refresh)ed before retrying.
    pub fn is_stale_epoch(&self) -> bool {
        matches!(
            self,
            ClusterError::Node {
                error: ServiceError::StaleEpoch(_),
                ..
            }
        )
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NodeFailed { node, kind, detail } => {
                write!(f, "node {node} failed ({kind}): {detail}")
            }
            ClusterError::Node { node, error } => {
                write!(f, "node {node} refused: {error}")
            }
            ClusterError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ClusterError::Exec(msg) => write!(f, "collection phase: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Cluster result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
