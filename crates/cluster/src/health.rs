//! Per-node health tracking and the coordinator's retry schedule.
//!
//! The coordinator classifies every request failure ([`FailureKind`])
//! and folds the observations into a per-node state machine
//! ([`NodeHealth`]): a node that fails a call or a heartbeat probe turns
//! [`Health::Suspect`]; a later successful probe restores it to
//! [`Health::Healthy`]. Each Healthy→Suspect transition counts as a
//! *flap*, and a node that flaps more than [`RetryPolicy::flap_limit`]
//! times is [`Health::Excluded`]: it stops being a failover candidate
//! until the coordinator's membership view is rebuilt
//! ([`refresh`](crate::Coordinator::refresh)), because a node that
//! oscillates between alive and dead costs a retry round-trip on every
//! query it touches.

use std::time::Duration;

/// How a request to a node failed, classified from the transport error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The TCP connection was refused — nothing is listening (node
    /// process dead, before any request byte moved).
    Refused,
    /// The reply wait exceeded the link's read deadline.
    Timeout,
    /// The connection was severed mid-stream (reset, broken pipe, or an
    /// EOF where a reply frame was due) — the node died *during* the
    /// request.
    Severed,
    /// Any other failure (encode errors, thread panics, address
    /// problems).
    Other,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Refused => write!(f, "connection refused"),
            FailureKind::Timeout => write!(f, "timeout"),
            FailureKind::Severed => write!(f, "severed mid-stream"),
            FailureKind::Other => write!(f, "other"),
        }
    }
}

/// A node's standing in the coordinator's failover decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Health {
    /// Answering normally.
    #[default]
    Healthy,
    /// Failed its last call or probe; still tried as a failover
    /// candidate (after the healthy candidates), and restored by the
    /// next successful probe.
    Suspect,
    /// Flapped past [`RetryPolicy::flap_limit`]: skipped as a candidate
    /// until the membership view is rebuilt.
    Excluded,
}

/// The per-node health state machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeHealth {
    /// Current standing.
    pub health: Health,
    /// Healthy→Suspect transitions observed so far.
    pub flaps: u32,
    /// Heartbeat probes this node failed to answer.
    pub heartbeats_missed: u64,
}

impl NodeHealth {
    /// Records a failed call or probe. Returns `true` when this
    /// observation *newly* excluded the node (the caller counts it into
    /// `nodes_excluded` exactly once).
    pub fn record_failure(&mut self, flap_limit: u32) -> bool {
        match self.health {
            Health::Healthy => {
                self.flaps += 1;
                if self.flaps > flap_limit {
                    self.health = Health::Excluded;
                    true
                } else {
                    self.health = Health::Suspect;
                    false
                }
            }
            Health::Suspect | Health::Excluded => false,
        }
    }

    /// Records a successful call or probe: a Suspect node is restored.
    /// Exclusion is sticky — a flapper that answers one probe does not
    /// regain candidacy.
    pub fn record_success(&mut self) {
        if self.health == Health::Suspect {
            self.health = Health::Healthy;
        }
    }

    /// Whether the node may serve as a failover candidate.
    pub fn candidate(&self) -> bool {
        self.health != Health::Excluded
    }
}

/// The coordinator's failover schedule: how often to retry a failing
/// node, how long to back off, and when to give up on a flapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per candidate node, including the first (the extras
    /// reconnect the link before retrying — a severed stream from an
    /// earlier failure must not condemn a recovered node).
    pub node_attempts: u32,
    /// Backoff before the first retry on a node; doubles per retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Healthy→Suspect transitions after which a node is excluded.
    pub flap_limit: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            node_attempts: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: 0xC1A5_7E12,
            flap_limit: 3,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (1-based) on a
    /// node: uniformly in `[half, full]` of the capped exponential step,
    /// drawn from the deterministic stream `rng`.
    pub fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (attempt - 1).min(20));
        let full = exp.min(self.cap).as_nanos() as u64;
        *rng = splitmix64(*rng);
        let jittered = full / 2 + if full == 0 { 0 } else { *rng % (full / 2 + 1) };
        Duration::from_nanos(jittered)
    }
}

/// The splitmix64 step: a tiny deterministic stream for retry jitter.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_failure_makes_a_healthy_node_suspect_and_success_restores_it() {
        let mut h = NodeHealth::default();
        assert_eq!(h.health, Health::Healthy);
        assert!(!h.record_failure(3));
        assert_eq!(h.health, Health::Suspect);
        assert_eq!(h.flaps, 1);
        // Repeated failures while Suspect are one flap, not many: a node
        // that is simply *down* is not a flapper.
        assert!(!h.record_failure(3));
        assert_eq!(h.flaps, 1);
        h.record_success();
        assert_eq!(h.health, Health::Healthy);
    }

    #[test]
    fn flapping_past_the_limit_excludes_the_node_exactly_once() {
        let mut h = NodeHealth::default();
        let limit = 3;
        for flap in 1..=limit {
            assert!(!h.record_failure(limit), "flap {flap} within the limit");
            h.record_success();
        }
        // The flap that exceeds the limit excludes, and reports it once.
        assert!(h.record_failure(limit));
        assert_eq!(h.health, Health::Excluded);
        assert!(!h.candidate());
        // Sticky: neither success nor further failure changes standing
        // or double-counts the exclusion.
        h.record_success();
        assert_eq!(h.health, Health::Excluded);
        assert!(!h.record_failure(limit));
    }

    #[test]
    fn backoff_is_jittered_within_the_exponential_envelope() {
        let policy = RetryPolicy {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            ..RetryPolicy::default()
        };
        let mut rng = splitmix64(policy.seed);
        for attempt in 1..=8 {
            let exp = policy
                .base
                .saturating_mul(1 << (attempt - 1))
                .min(policy.cap);
            let d = policy.delay(attempt, &mut rng);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
    }
}
