//! A Zipf(θ) sampler over ranks `1..=n`.
//!
//! Used to skew group sizes in synthetic division workloads. Sampling is
//! by inverted cumulative distribution over the precomputed normalization,
//! O(log n) per sample.

use rand::Rng;

/// Zipf distribution over `1..=n` with exponent `theta` (> 0).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n`. `theta` near 0 is almost
    /// uniform; `theta` around 1 is classic Zipf; larger is more skewed.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `1..=n`; rank 1 is the most likely.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability of rank `k` (1-based), for tests.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) >= z.pmf(k + 1), "pmf must be non-increasing");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=10).contains(&s));
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let hits_low = (0..10_000).filter(|_| z.sample(&mut rng) <= 10).count();
        assert!(
            hits_low > 5_000,
            "theta=1.2 should put most mass on the head: {hits_low}"
        );
    }

    #[test]
    fn near_uniform_for_tiny_theta() {
        let z = Zipf::new(4, 0.01);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 0.02, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn single_rank_always_samples_one() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 1);
    }
}
