//! # reldiv-workload — workload generators for the division experiments
//!
//! Generates the relations of the paper's analytical and experimental
//! studies, plus the variations the paper reasons about but does not
//! tabulate:
//!
//! * [`exact_product`] — the paper's assumed case `R = Q × S` (Section 4:
//!   "all tuples of R participate in the quotient"), with 16-byte dividend
//!   records and 8-byte divisor/quotient records, shuffled because
//!   "neither R nor S are sorted originally";
//! * [`WorkloadSpec`] — the general builder: non-matching "noise" tuples
//!   (the physics courses of the paper's second example), incomplete
//!   quotient groups, duplicates, and Zipf-skewed group sizes; every
//!   generated workload carries its ground-truth quotient;
//! * [`university`] — the running-example schema (Courses with titles
//!   containing "database", Transcripts with grades) used by the examples.
//!
//! All generation is deterministic in the seed.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use reldiv_rel::schema::{Field, Schema};
use reldiv_rel::tuple::ints;
use reldiv_rel::{Relation, Tuple, Value};

pub mod university;
pub mod zipf;

/// The dividend/divisor schemas of the experimental study: 16-byte
/// dividend records `(quotient-id, divisor-id)` and 8-byte divisor
/// records `(divisor-id)`.
pub fn dividend_schema() -> Schema {
    Schema::new(vec![Field::int("quotient-id"), Field::int("divisor-id")])
}

/// Divisor schema: a single 8-byte integer column.
pub fn divisor_schema() -> Schema {
    Schema::new(vec![Field::int("divisor-id")])
}

/// Generates the paper's assumed case `R = Q × S`: `quotient_size`
/// quotient values each paired with all `divisor_size` divisor values.
/// The dividend is shuffled with the seed.
pub fn exact_product(divisor_size: u64, quotient_size: u64, seed: u64) -> (Relation, Relation) {
    let spec = WorkloadSpec {
        divisor_size,
        quotient_size,
        ..WorkloadSpec::default()
    };
    let w = spec.generate(seed);
    (w.dividend, w.divisor)
}

/// A generated workload with its ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The dividend relation `R`.
    pub dividend: Relation,
    /// The divisor relation `S`.
    pub divisor: Relation,
    /// The quotient-id values that belong to the true quotient, sorted.
    pub expected_quotient: Vec<i64>,
}

/// Declarative workload builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// `|S|`: number of distinct divisor values (ids `1_000_000 + i`).
    pub divisor_size: u64,
    /// Number of quotient values that take *all* divisor values
    /// (the true quotient, ids `0..quotient_size`).
    pub quotient_size: u64,
    /// Additional quotient values with *incomplete* divisor sets; each
    /// takes a random strict subset of the divisor (ids continue upward).
    /// These are quotient candidates that do not participate — the case
    /// the paper speculates makes hash-division "always outperform all
    /// other algorithms".
    pub incomplete_groups: u64,
    /// Fraction of divisor values (rounded down) each incomplete group
    /// takes; clamped to `divisor_size - 1` so the group stays incomplete.
    pub incomplete_fill: f64,
    /// Non-matching tuples appended per complete group: dividend tuples
    /// whose divisor-id is outside the divisor (the physics courses),
    /// discarded early by hash-division.
    pub noise_per_group: u64,
    /// Extra copies of each dividend tuple (1 = no duplicates). Exercises
    /// duplicate insensitivity.
    pub dividend_copies: u64,
    /// Extra copies of each divisor tuple (1 = no duplicates).
    pub divisor_copies: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            divisor_size: 25,
            quotient_size: 25,
            incomplete_groups: 0,
            incomplete_fill: 0.5,
            noise_per_group: 0,
            dividend_copies: 1,
            divisor_copies: 1,
        }
    }
}

impl WorkloadSpec {
    fn incomplete_take(&self) -> u64 {
        ((self.divisor_size as f64 * self.incomplete_fill) as u64)
            .min(self.divisor_size.saturating_sub(1))
    }

    /// Dividend cardinality this spec will generate.
    pub fn dividend_cardinality(&self) -> u64 {
        (self.quotient_size * (self.divisor_size + self.noise_per_group)
            + self.incomplete_groups * self.incomplete_take())
            * self.dividend_copies
    }

    /// Generates the workload deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let divisor_base = 1_000_000i64;
        let noise_base = 2_000_000i64;

        // Divisor: ids divisor_base..+divisor_size, with optional copies.
        let mut divisor_rows: Vec<i64> = Vec::new();
        for i in 0..self.divisor_size as i64 {
            for _ in 0..self.divisor_copies {
                divisor_rows.push(divisor_base + i);
            }
        }
        divisor_rows.shuffle(&mut rng);
        let divisor = Relation::from_tuples(
            divisor_schema(),
            divisor_rows.iter().map(|&d| ints(&[d])).collect(),
        )
        .expect("generated divisor conforms to schema");

        // Dividend.
        let mut rows: Vec<[i64; 2]> = Vec::new();
        // Complete groups: the true quotient.
        for q in 0..self.quotient_size as i64 {
            for i in 0..self.divisor_size as i64 {
                rows.push([q, divisor_base + i]);
            }
            for n in 0..self.noise_per_group as i64 {
                // Non-matching divisor ids, unique per (group, n).
                rows.push([q, noise_base + q * self.noise_per_group as i64 + n]);
            }
        }
        // Incomplete groups: random strict subsets.
        let incomplete_take = self.incomplete_take() as usize;
        for g in 0..self.incomplete_groups as i64 {
            let q = self.quotient_size as i64 + g;
            let mut ids: Vec<i64> = (0..self.divisor_size as i64).collect();
            ids.shuffle(&mut rng);
            for &i in ids.iter().take(incomplete_take) {
                rows.push([q, divisor_base + i]);
            }
        }
        // Copies, then shuffle.
        let mut all = Vec::with_capacity(rows.len() * self.dividend_copies as usize);
        for _ in 0..self.dividend_copies {
            all.extend_from_slice(&rows);
        }
        all.shuffle(&mut rng);
        let dividend =
            Relation::from_tuples(dividend_schema(), all.iter().map(|r| ints(r)).collect())
                .expect("generated dividend conforms to schema");

        // Ground truth. An empty divisor makes every group that appears in
        // the dividend vacuously qualify.
        let expected_quotient: Vec<i64> = if self.divisor_size == 0 {
            (0..(self.quotient_size + self.incomplete_groups) as i64)
                .filter(|&q| {
                    let is_complete = q < self.quotient_size as i64;
                    if is_complete {
                        self.noise_per_group > 0 // only noise rows exist
                    } else {
                        incomplete_take > 0
                    }
                })
                .collect()
        } else {
            (0..self.quotient_size as i64).collect()
        };

        Workload {
            dividend,
            divisor,
            expected_quotient,
        }
    }
}

/// A workload with Zipf-skewed incomplete groups: group `g` takes a
/// number of divisor values proportional to a Zipf sample, so a few
/// groups are near-complete and most are tiny — the skew shape real
/// for-all queries see.
pub fn zipf_workload(
    divisor_size: u64,
    complete_groups: u64,
    skewed_groups: u64,
    theta: f64,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let divisor_base = 1_000_000i64;
    let divisor = Relation::from_tuples(
        divisor_schema(),
        (0..divisor_size as i64)
            .map(|i| ints(&[divisor_base + i]))
            .collect(),
    )
    .expect("divisor conforms");

    let mut rows: Vec<[i64; 2]> = Vec::new();
    for q in 0..complete_groups as i64 {
        for i in 0..divisor_size as i64 {
            rows.push([q, divisor_base + i]);
        }
    }
    let sampler = zipf::Zipf::new(divisor_size.max(1) as usize, theta);
    for g in 0..skewed_groups as i64 {
        let q = complete_groups as i64 + g;
        // Zipf rank → group size in 1..divisor_size (strictly incomplete).
        let take = (sampler.sample(&mut rng) as u64).min(divisor_size.saturating_sub(1));
        let mut ids: Vec<i64> = (0..divisor_size as i64).collect();
        ids.shuffle(&mut rng);
        for &i in ids.iter().take(take as usize) {
            rows.push([q, divisor_base + i]);
        }
    }
    rows.shuffle(&mut rng);
    let dividend = Relation::from_tuples(dividend_schema(), rows.iter().map(|r| ints(r)).collect())
        .expect("dividend conforms");
    Workload {
        dividend,
        divisor,
        expected_quotient: (0..complete_groups as i64).collect(),
    }
}

/// Computes the true quotient of arbitrary relations by brute force (for
/// verifying algorithms on random inputs). Quadratic; test-sized inputs
/// only.
pub fn brute_force_divide(
    dividend: &Relation,
    divisor: &Relation,
    divisor_keys: &[usize],
    quotient_keys: &[usize],
) -> Vec<Tuple> {
    use std::collections::{BTreeMap, BTreeSet};
    let divisor_set: BTreeSet<Vec<String>> = divisor
        .tuples()
        .iter()
        .map(|t| t.values().iter().map(Value::to_string).collect())
        .collect();
    let mut groups: BTreeMap<Vec<String>, (Tuple, BTreeSet<Vec<String>>)> = BTreeMap::new();
    for t in dividend.tuples() {
        let qkey: Vec<String> = quotient_keys
            .iter()
            .map(|&k| t.value(k).to_string())
            .collect();
        let dkey: Vec<String> = divisor_keys
            .iter()
            .map(|&k| t.value(k).to_string())
            .collect();
        let entry = groups
            .entry(qkey)
            .or_insert_with(|| (t.project(quotient_keys), BTreeSet::new()));
        if divisor_set.contains(&dkey) {
            entry.1.insert(dkey);
        }
    }
    groups
        .into_values()
        .filter(|(_, have)| have.len() == divisor_set.len())
        .map(|(t, _)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_product_has_expected_cardinalities() {
        let (dividend, divisor) = exact_product(25, 100, 42);
        assert_eq!(divisor.cardinality(), 25);
        assert_eq!(dividend.cardinality(), 2500);
        // Record sizes match the paper: 16-byte dividend, 8-byte divisor.
        assert_eq!(dividend.schema().record_width(), 16);
        assert_eq!(divisor.schema().record_width(), 8);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = WorkloadSpec::default().generate(7);
        let b = WorkloadSpec::default().generate(7);
        let c = WorkloadSpec::default().generate(8);
        assert_eq!(a.dividend, b.dividend);
        assert_eq!(a.divisor, b.divisor);
        assert_ne!(a.dividend, c.dividend, "different seed, different shuffle");
    }

    #[test]
    fn dividend_is_shuffled() {
        let w = WorkloadSpec {
            divisor_size: 10,
            quotient_size: 10,
            ..Default::default()
        }
        .generate(1);
        let sorted = {
            let mut r = w.dividend.clone();
            r.sort_by_keys(&[0, 1]);
            r
        };
        assert_ne!(
            w.dividend.tuples(),
            sorted.tuples(),
            "input must not arrive sorted"
        );
    }

    #[test]
    fn noise_and_incomplete_groups_do_not_change_the_quotient() {
        let spec = WorkloadSpec {
            divisor_size: 8,
            quotient_size: 5,
            incomplete_groups: 7,
            incomplete_fill: 0.5,
            noise_per_group: 3,
            ..Default::default()
        };
        let w = spec.generate(3);
        assert_eq!(w.expected_quotient, vec![0, 1, 2, 3, 4]);
        let brute = brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]);
        let got: Vec<i64> = brute.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(
            got, w.expected_quotient,
            "brute force agrees with ground truth"
        );
    }

    #[test]
    fn incomplete_groups_are_strictly_incomplete() {
        let spec = WorkloadSpec {
            divisor_size: 4,
            quotient_size: 1,
            incomplete_groups: 10,
            incomplete_fill: 1.0, // clamped to divisor_size - 1
            ..Default::default()
        };
        let w = spec.generate(9);
        let brute = brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]);
        assert_eq!(brute.len(), 1, "only the complete group qualifies");
    }

    #[test]
    fn duplicates_multiply_cardinality_not_quotient() {
        let spec = WorkloadSpec {
            divisor_size: 5,
            quotient_size: 3,
            dividend_copies: 3,
            divisor_copies: 2,
            ..Default::default()
        };
        let w = spec.generate(11);
        assert_eq!(w.dividend.cardinality(), 3 * 5 * 3);
        assert_eq!(w.divisor.cardinality(), 10);
        assert_eq!(w.expected_quotient, vec![0, 1, 2]);
        assert_eq!(spec.dividend_cardinality(), w.dividend.cardinality() as u64);
    }

    #[test]
    fn cardinality_formula_matches_generation() {
        let spec = WorkloadSpec {
            divisor_size: 10,
            quotient_size: 4,
            incomplete_groups: 6,
            incomplete_fill: 0.3,
            noise_per_group: 2,
            dividend_copies: 2,
            ..Default::default()
        };
        let w = spec.generate(5);
        assert_eq!(spec.dividend_cardinality(), w.dividend.cardinality() as u64);
    }

    #[test]
    fn zipf_workload_quotient_is_complete_groups() {
        let w = zipf_workload(16, 4, 50, 1.1, 13);
        let brute = brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]);
        let got: Vec<i64> = brute.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(w.expected_quotient, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_divisor_workload_ground_truth() {
        let spec = WorkloadSpec {
            divisor_size: 0,
            quotient_size: 3,
            noise_per_group: 2,
            ..Default::default()
        };
        let w = spec.generate(2);
        // Groups exist only via their noise tuples; all of them qualify
        // vacuously.
        assert_eq!(w.expected_quotient, vec![0, 1, 2]);
        assert!(w.divisor.is_empty());
    }

    #[test]
    fn brute_force_handles_duplicates_and_noise() {
        use reldiv_rel::tuple::ints;
        let dividend = Relation::from_tuples(
            dividend_schema(),
            vec![
                ints(&[1, 10]),
                ints(&[1, 10]),
                ints(&[1, 20]),
                ints(&[2, 10]),
                ints(&[2, 10]),
                ints(&[3, 99]),
            ],
        )
        .unwrap();
        let divisor = Relation::from_tuples(
            divisor_schema(),
            vec![ints(&[10]), ints(&[20]), ints(&[10])],
        )
        .unwrap();
        let q = brute_force_divide(&dividend, &divisor, &[1], &[0]);
        assert_eq!(q, vec![ints(&[1])]);
    }
}

/// Schema for wide-record experiments: a fixed-width string quotient
/// column of `quotient_width` bytes plus an 8-byte integer divisor
/// column.
///
/// The paper's testbed was disk-constrained: "we had to restrict our
/// record sizes to 8 bytes for the divisor and the quotient, and to 16
/// bytes for the dividend." These schemas lift that restriction so the
/// record-width dimension the paper could not explore becomes
/// measurable.
pub fn wide_dividend_schema(quotient_width: usize) -> Schema {
    Schema::new(vec![
        Field::str("quotient-key", quotient_width),
        Field::int("divisor-id"),
    ])
}

/// Generates `R = Q × S` with a string quotient key padded to
/// `quotient_width` bytes (dividend records of `quotient_width + 8`
/// bytes), shuffled deterministically.
pub fn wide_exact_product(
    divisor_size: u64,
    quotient_size: u64,
    quotient_width: usize,
    seed: u64,
) -> (Relation, Relation) {
    assert!(quotient_width >= 12, "width must fit the q-key prefix");
    let mut rng = StdRng::seed_from_u64(seed);
    let divisor_base = 1_000_000i64;
    let divisor = Relation::from_tuples(
        divisor_schema(),
        (0..divisor_size as i64)
            .map(|i| ints(&[divisor_base + i]))
            .collect(),
    )
    .expect("divisor conforms");
    let pad = "x".repeat(quotient_width - 12);
    let mut rows: Vec<Tuple> = Vec::with_capacity((quotient_size * divisor_size) as usize);
    for q in 0..quotient_size {
        let key = format!("q{q:09}{pad}xx");
        debug_assert_eq!(key.len(), quotient_width);
        for i in 0..divisor_size as i64 {
            rows.push(Tuple::new(vec![
                Value::from(key.clone()),
                Value::Int(divisor_base + i),
            ]));
        }
    }
    rows.shuffle(&mut rng);
    let dividend = Relation::from_tuples(wide_dividend_schema(quotient_width), rows)
        .expect("dividend conforms");
    (dividend, divisor)
}

#[cfg(test)]
mod wide_tests {
    use super::*;

    #[test]
    fn wide_records_have_the_requested_width() {
        let (dividend, divisor) = wide_exact_product(5, 4, 64, 1);
        assert_eq!(dividend.schema().record_width(), 64 + 8);
        assert_eq!(divisor.schema().record_width(), 8);
        assert_eq!(dividend.cardinality(), 20);
    }

    #[test]
    fn wide_product_divides_to_q() {
        let (dividend, divisor) = wide_exact_product(6, 7, 32, 2);
        let brute = brute_force_divide(&dividend, &divisor, &[1], &[0]);
        assert_eq!(brute.len(), 7);
    }

    #[test]
    fn wide_generation_is_deterministic() {
        let a = wide_exact_product(4, 4, 16, 9);
        let b = wide_exact_product(4, 4, 16, 9);
        assert_eq!(a.0, b.0);
    }

    #[test]
    #[should_panic(expected = "width must fit")]
    fn undersized_width_is_rejected() {
        let _ = wide_exact_product(2, 2, 8, 0);
    }
}
