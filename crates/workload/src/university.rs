//! The paper's running-example schema: a university database.
//!
//! `Courses(course-no, title)` and `Transcript(student-id, course-no,
//! grade)` "with the obvious key attributes". A configurable fraction of
//! course titles contain the string `"database"`, so the paper's second
//! example — students who have taken *all database courses* — can be
//! posed with a real selection on the title attribute.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use reldiv_rel::schema::{Field, Schema};
use reldiv_rel::{Relation, Tuple, Value};

/// Width of the fixed-width title column.
pub const TITLE_WIDTH: usize = 32;

/// `Courses(course-no, title)`.
pub fn courses_schema() -> Schema {
    Schema::new(vec![
        Field::int("course-no"),
        Field::str("title", TITLE_WIDTH),
    ])
}

/// `Transcript(student-id, course-no, grade)`.
pub fn transcript_schema() -> Schema {
    Schema::new(vec![
        Field::int("student-id"),
        Field::int("course-no"),
        Field::int("grade"),
    ])
}

/// A generated university.
#[derive(Debug, Clone)]
pub struct University {
    /// The `Courses` relation.
    pub courses: Relation,
    /// The `Transcript` relation.
    pub transcript: Relation,
    /// Course numbers whose title contains "database".
    pub database_courses: Vec<i64>,
    /// Students who took *every* course (example 1's quotient).
    pub students_with_all_courses: Vec<i64>,
    /// Students who took every database course (example 2's quotient).
    pub students_with_all_database_courses: Vec<i64>,
}

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct UniversitysSpec {
    /// Number of courses.
    pub courses: u64,
    /// Fraction of courses whose title contains "database".
    pub database_fraction: f64,
    /// Number of students.
    pub students: u64,
    /// Fraction of students enrolled in every course.
    pub complete_fraction: f64,
    /// For the remaining students, the fraction of courses they take
    /// (sampled per student around this mean).
    pub partial_fill: f64,
}

impl Default for UniversitysSpec {
    fn default() -> Self {
        UniversitysSpec {
            courses: 20,
            database_fraction: 0.25,
            students: 100,
            complete_fraction: 0.1,
            partial_fill: 0.5,
        }
    }
}

const TITLE_STEMS: [&str; 6] = [
    "Intro to",
    "Advanced",
    "Topics in",
    "Seminar:",
    "Applied",
    "Found. of",
];
const TITLE_SUBJECTS: [&str; 5] = ["Databases", "Optics", "Compilers", "Graphics", "Logic"];

/// Generates a university deterministically from `seed`.
pub fn generate(spec: &UniversitysSpec, seed: u64) -> University {
    let mut rng = StdRng::seed_from_u64(seed);

    // Courses with titles; every "Databases" subject title contains the
    // substring "database" case-insensitively.
    let mut course_rows = Vec::new();
    let mut database_courses = Vec::new();
    for c in 0..spec.courses as i64 {
        let is_db = (c as f64) < spec.courses as f64 * spec.database_fraction;
        let subject = if is_db {
            "Databases"
        } else {
            TITLE_SUBJECTS[1 + rng.gen_range(0..TITLE_SUBJECTS.len() - 1)]
        };
        let title = format!(
            "{} {subject} {c}",
            TITLE_STEMS[c as usize % TITLE_STEMS.len()]
        );
        debug_assert!(title.len() <= TITLE_WIDTH, "title fits the fixed width");
        if is_db {
            database_courses.push(c);
        }
        course_rows.push(Tuple::new(vec![Value::Int(c), Value::from(title)]));
    }
    let courses =
        Relation::from_tuples(courses_schema(), course_rows).expect("courses conform to schema");

    // Transcripts.
    let mut transcript_rows = Vec::new();
    let mut complete_students = Vec::new();
    let mut db_complete_students = Vec::new();
    for s in 0..spec.students as i64 {
        let is_complete = (s as f64) < spec.students as f64 * spec.complete_fraction;
        let taken: Vec<i64> = if is_complete {
            complete_students.push(s);
            (0..spec.courses as i64).collect()
        } else {
            let mut ids: Vec<i64> = (0..spec.courses as i64).collect();
            ids.shuffle(&mut rng);
            let k = ((spec.courses as f64 * spec.partial_fill) as usize)
                .clamp(1, spec.courses as usize);
            ids.truncate(rng.gen_range(1..=k));
            ids
        };
        if !database_courses.is_empty() && database_courses.iter().all(|c| taken.contains(c)) {
            db_complete_students.push(s);
        }
        for c in taken {
            let grade = rng.gen_range(1..=4);
            transcript_rows.push(Tuple::new(vec![
                Value::Int(s),
                Value::Int(c),
                Value::Int(grade),
            ]));
        }
    }
    let mut transcript = Relation::from_tuples(transcript_schema(), transcript_rows)
        .expect("transcript conforms to schema");
    // Arrival order is not sorted by student.
    let mut tuples = transcript.into_tuples();
    tuples.shuffle(&mut rng);
    transcript = Relation::from_tuples(transcript_schema(), tuples).expect("still conforms");

    University {
        courses,
        transcript,
        database_courses,
        students_with_all_courses: complete_students,
        students_with_all_database_courses: db_complete_students,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = UniversitysSpec::default();
        let a = generate(&spec, 5);
        let b = generate(&spec, 5);
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(a.courses, b.courses);
    }

    #[test]
    fn database_titles_contain_the_substring() {
        let u = generate(&UniversitysSpec::default(), 1);
        assert!(!u.database_courses.is_empty());
        for t in u.courses.tuples() {
            let no = t.value(0).as_int().unwrap();
            let title = t.value(1).as_str().unwrap().to_ascii_lowercase();
            assert_eq!(
                title.contains("database"),
                u.database_courses.contains(&no),
                "course {no}: {title}"
            );
        }
    }

    #[test]
    fn complete_students_take_every_course() {
        let u = generate(&UniversitysSpec::default(), 2);
        assert!(!u.students_with_all_courses.is_empty());
        for &s in &u.students_with_all_courses {
            let taken: std::collections::HashSet<i64> = u
                .transcript
                .tuples()
                .iter()
                .filter(|t| t.value(0).as_int().unwrap() == s)
                .map(|t| t.value(1).as_int().unwrap())
                .collect();
            assert_eq!(taken.len(), 20);
        }
    }

    #[test]
    fn db_complete_is_superset_of_complete() {
        let u = generate(&UniversitysSpec::default(), 3);
        for s in &u.students_with_all_courses {
            assert!(
                u.students_with_all_database_courses.contains(s),
                "all-course students also took all database courses"
            );
        }
        // With partial_fill 0.5 some partial student usually qualifies
        // for the database subset but not the full set.
        assert!(u.students_with_all_database_courses.len() >= u.students_with_all_courses.len());
    }

    #[test]
    fn ground_truth_matches_brute_force() {
        let u = generate(&UniversitysSpec::default(), 4);
        // Example 2 by brute force: dividend = transcript (sid, cno),
        // divisor = database courses.
        let dividend = u.transcript.project(&[0, 1]).unwrap();
        let divisor = Relation::from_tuples(
            reldiv_rel::Schema::new(vec![reldiv_rel::schema::Field::int("course-no")]),
            u.database_courses
                .iter()
                .map(|&c| reldiv_rel::tuple::ints(&[c]))
                .collect(),
        )
        .unwrap();
        let brute = crate::brute_force_divide(&dividend, &divisor, &[1], &[0]);
        let mut got: Vec<i64> = brute.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expected = u.students_with_all_database_courses.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn titles_fit_fixed_width() {
        let u = generate(&UniversitysSpecLong::default().0, 6);
        for t in u.courses.tuples() {
            assert!(t.value(1).as_str().unwrap().len() <= TITLE_WIDTH);
        }
    }

    /// Largest config exercised by examples.
    struct UniversitysSpecLong(UniversitysSpec);
    impl Default for UniversitysSpecLong {
        fn default() -> Self {
            UniversitysSpecLong(UniversitysSpec {
                courses: 500,
                students: 50,
                ..Default::default()
            })
        }
    }
}
