//! Criterion micro-benchmarks of the six Table 4 algorithm columns over
//! the full storage + execution stack.
//!
//! These complement the `table4` binary: Criterion gives statistically
//! robust per-algorithm timings at a fixed configuration, while the
//! binary reproduces the full grid with the paper's cost accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reldiv_core::api::DivisionConfig;
use reldiv_core::Algorithm;
use reldiv_workload::WorkloadSpec;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_columns");
    group.sample_size(10);
    for &(s, q) in &[(25u64, 100u64), (100, 100)] {
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..Default::default()
        }
        .generate(11);
        let config = DivisionConfig {
            assume_unique: true,
            ..Default::default()
        };
        for algorithm in Algorithm::table_columns() {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label().replace(' ', "_"), format!("S{s}_Q{q}")),
                &w,
                |b, w| {
                    b.iter(|| {
                        reldiv_bench::run_division_experiment(
                            &w.dividend,
                            &w.divisor,
                            algorithm,
                            &config,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_noise_sensitivity(c: &mut Criterion) {
    // Section 4.6's speculation in micro-benchmark form: hash-division's
    // early discard vs the semi-join plans as noise grows.
    let mut group = c.benchmark_group("noise_sensitivity");
    group.sample_size(10);
    for noise in [0u64, 50, 200] {
        let w = WorkloadSpec {
            divisor_size: 50,
            quotient_size: 100,
            noise_per_group: noise,
            ..Default::default()
        }
        .generate(5);
        let config = DivisionConfig {
            assume_unique: true,
            ..Default::default()
        };
        for algorithm in [
            Algorithm::HashAggregation { join: true },
            Algorithm::HashDivision {
                mode: reldiv_core::HashDivisionMode::Standard,
            },
        ] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label().replace(' ', "_"), format!("noise{noise}")),
                &w,
                |b, w| {
                    b.iter(|| {
                        reldiv_bench::run_division_experiment(
                            &w.dividend,
                            &w.divisor,
                            algorithm,
                            &config,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_noise_sensitivity);
criterion_main!(benches);
