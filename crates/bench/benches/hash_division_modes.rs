//! Ablations of hash-division itself:
//!
//! * the three variants (Figure 1 bit maps, early-output counters, and
//!   counter-only) — measuring what the bit maps cost,
//! * the generic in-memory API against the engine operator — measuring
//!   what the storage/operator machinery costs,
//! * overflow partitioning against in-memory execution when memory is
//!   ample — measuring the partitioning overhead itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reldiv_core::api::{divide, DivisionConfig, OverflowPolicy, Source};
use reldiv_core::mem::{hash_divide, hash_divide_counting};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::WorkloadSpec;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_division_modes");
    group.sample_size(20);
    let w = WorkloadSpec {
        divisor_size: 100,
        quotient_size: 200,
        ..Default::default()
    }
    .generate(3);
    let config = DivisionConfig {
        assume_unique: true,
        ..Default::default()
    };
    for mode in [
        HashDivisionMode::Standard,
        HashDivisionMode::EarlyOut,
        HashDivisionMode::CounterOnly,
    ] {
        group.bench_with_input(BenchmarkId::new("mode", format!("{mode:?}")), &w, |b, w| {
            b.iter(|| {
                reldiv_bench::run_division_experiment(
                    &w.dividend,
                    &w.divisor,
                    Algorithm::HashDivision { mode },
                    &config,
                )
            })
        });
    }
    group.finish();
}

fn bench_generic_vs_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_vs_engine");
    group.sample_size(20);
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 400,
        ..Default::default()
    }
    .generate(9);
    let pairs: Vec<(i64, i64)> = w
        .dividend
        .tuples()
        .iter()
        .map(|t| {
            (
                t.value(0).as_int().expect("int"),
                t.value(1).as_int().expect("int"),
            )
        })
        .collect();
    let divisor_vals: Vec<i64> = w
        .divisor
        .tuples()
        .iter()
        .map(|t| t.value(0).as_int().expect("int"))
        .collect();

    group.bench_function("mem_hash_divide", |b| {
        b.iter(|| hash_divide(pairs.iter().copied(), divisor_vals.iter().copied()))
    });
    group.bench_function("mem_hash_divide_counting", |b| {
        b.iter(|| hash_divide_counting(pairs.iter().copied(), divisor_vals.iter().copied()))
    });
    group.bench_function("engine_operator", |b| {
        let storage = StorageManager::shared(StorageConfig::large());
        let spec =
            DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema()).expect("spec");
        let d = Source::from_relation(&w.dividend);
        let s = Source::from_relation(&w.divisor);
        let config = DivisionConfig {
            assume_unique: true,
            ..Default::default()
        };
        b.iter(|| {
            divide(
                &storage,
                &d,
                &s,
                &spec,
                Algorithm::HashDivision {
                    mode: HashDivisionMode::Standard,
                },
                &config,
            )
            .expect("divide")
        })
    });
    group.finish();
}

fn bench_partitioning_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning_overhead");
    group.sample_size(10);
    let w = WorkloadSpec {
        divisor_size: 25,
        quotient_size: 2_000,
        ..Default::default()
    }
    .generate(31);
    let policies: Vec<(&str, OverflowPolicy)> = vec![
        ("in_memory", OverflowPolicy::Fail),
        (
            "quotient_k4",
            OverflowPolicy::QuotientPartition { partitions: 4 },
        ),
        (
            "divisor_k4",
            OverflowPolicy::DivisorPartition { partitions: 4 },
        ),
    ];
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let storage = StorageManager::shared(StorageConfig::large());
                let spec = DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema())
                    .expect("spec");
                divide(
                    &storage,
                    &Source::from_relation(&w.dividend),
                    &Source::from_relation(&w.divisor),
                    &spec,
                    Algorithm::HashDivision {
                        mode: HashDivisionMode::Standard,
                    },
                    &DivisionConfig {
                        assume_unique: true,
                        overflow: policy,
                        ..Default::default()
                    },
                )
                .expect("divide")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_modes,
    bench_generic_vs_engine,
    bench_partitioning_overhead
);
criterion_main!(benches);
