//! Micro-benchmarks of the storage and execution substrate: the
//! bucket-chained hash table, bit maps, B+-trees, and the external sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reldiv_core::bitmap::Bitmap;
use reldiv_exec::hash_table::ChainedTable;
use reldiv_exec::op::Operator;
use reldiv_exec::scan::MemScan;
use reldiv_exec::sort::{Sort, SortConfig, SortMode};
use reldiv_rel::tuple::ints;
use reldiv_rel::{Relation, Schema};
use reldiv_storage::btree::BTree;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{MemoryPool, StorageManager};

fn bench_chained_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("chained_table");
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let pool = MemoryPool::unbounded();
                let mut t = ChainedTable::new(&pool, 16).expect("table");
                for i in 0..n {
                    t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i)
                        .expect("insert");
                }
                t.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("probe", n), &n, |b, &n| {
            let pool = MemoryPool::unbounded();
            let mut t = ChainedTable::new(&pool, 16).expect("table");
            for i in 0..n {
                t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i)
                    .expect("insert");
            }
            b.iter(|| {
                let mut hits = 0;
                for i in 0..n {
                    if t.find(i.wrapping_mul(0x9E3779B97F4A7C15), |&v| v == i)
                        .is_some()
                    {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    for bits in [64usize, 400, 4096] {
        group.bench_with_input(
            BenchmarkId::new("set_then_scan", bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    let mut m = Bitmap::new(bits);
                    for i in 0..bits {
                        m.set(i);
                    }
                    m.all_set()
                })
            },
        );
    }
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(10);
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut sm = StorageManager::new(StorageConfig::large());
            let mut t = BTree::create(&mut sm, StorageManager::DATA_DISK).expect("create");
            for i in 0..10_000u64 {
                let k = (i.wrapping_mul(2654435761) % 100_000).to_be_bytes();
                t.insert(
                    &mut sm,
                    &k,
                    reldiv_storage::Rid {
                        page: reldiv_storage::PageId::new(reldiv_storage::DiskId(0), i),
                        slot: 0,
                    },
                )
                .expect("insert");
            }
        })
    });
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    let schema = Schema::new(vec![
        reldiv_rel::schema::Field::int("a"),
        reldiv_rel::schema::Field::int("b"),
    ]);
    let rel = Relation::from_tuples(
        schema,
        (0..50_000i64)
            .map(|i| ints(&[(i * 7919) % 50_000, i]))
            .collect(),
    )
    .expect("relation");
    for (label, mem) in [("in_memory", 16 << 20), ("spilling", 64 * 1024)] {
        group.bench_with_input(BenchmarkId::new("sort_50k", label), &mem, |b, &mem| {
            b.iter(|| {
                let storage = StorageManager::shared(StorageConfig::large());
                let mut s = Sort::new(
                    storage,
                    Box::new(MemScan::new(rel.clone())),
                    vec![0, 1],
                    SortMode::Plain,
                    SortConfig {
                        memory_bytes: mem,
                        fan_in: 64,
                    },
                )
                .expect("sort");
                s.open().expect("open");
                let mut n = 0u64;
                while s.next().expect("next").is_some() {
                    n += 1;
                }
                s.close().expect("close");
                n
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chained_table,
    bench_bitmap,
    bench_btree,
    bench_sort
);
criterion_main!(benches);
