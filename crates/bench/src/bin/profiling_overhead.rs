//! `profiling-overhead` — prices the `EXPLAIN ANALYZE` machinery (the
//! tentpole's acceptance gate: **< 5 % on the Table 4 workloads**).
//!
//! Two configurations of every Table 4 cell (nine `(|S|, |Q|)` sizes ×
//! six algorithm columns):
//!
//! * **baseline** — `profile: None`, the disabled path every ordinary
//!   query runs: `maybe_profile` is an identity, no wrapper operators,
//!   no dormant branches in per-tuple loops;
//! * **profiled** — a live [`ProfileSink`] installed, span trees built
//!   for every operator: the `--profile` path.
//!
//! The gate compares the two. Because the disabled path differs from a
//! plumbing-free build only by one `Option` check at plan time, the
//! *enabled* overhead is a strict upper bound on the disabled overhead —
//! holding the enabled path under 5 % proves the "zero-cost when
//! disabled" claim with margin.
//!
//! Each cell runs `--reps` times and keeps the *minimum* measured CPU
//! (noise only ever inflates a run), prices I/O with the paper's Table 3
//! parameters, and writes a JSON report to `--out`. Exits non-zero when
//! the aggregate overhead breaches the gate.
//!
//! ```text
//! profiling-overhead [--reps N] [--seed N] [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` runs only the smallest cell (`|S| = |Q| = 25`) — the CI
//! configuration.

use reldiv_bench::{paper_sizes, try_run_division_experiment_checked, Measurement};
use reldiv_core::api::DivisionConfig;
use reldiv_core::{Algorithm, ProfileSink};
use reldiv_rel::Relation;
use reldiv_workload::WorkloadSpec;

struct Cell {
    divisor_size: u64,
    quotient_size: u64,
    algorithm: Algorithm,
    baseline_ms: f64,
    profiled_ms: f64,
}

impl Cell {
    fn overhead_pct(&self) -> f64 {
        (self.profiled_ms - self.baseline_ms) / self.baseline_ms * 100.0
    }
}

/// Best (minimum-CPU) of `reps` runs; the config is rebuilt per run so a
/// profiled run never accumulates spans across repetitions.
fn best_of(
    reps: u32,
    dividend: &Relation,
    divisor: &Relation,
    algorithm: Algorithm,
    profiled: bool,
) -> Option<Measurement> {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let config = DivisionConfig {
            assume_unique: true,
            profile: profiled.then(ProfileSink::new),
            ..DivisionConfig::default()
        };
        let m = try_run_division_experiment_checked(dividend, divisor, algorithm, &config, false)
            .ok()?;
        match &best {
            Some(b) if b.cpu_ms_measured <= m.cpu_ms_measured => {}
            _ => best = Some(m),
        }
    }
    best
}

fn usage() -> ! {
    eprintln!("usage: profiling-overhead [--reps N] [--seed N] [--out PATH] [--smoke]");
    std::process::exit(2);
}

fn main() {
    let mut reps = 3u32;
    let mut seed = 42u64;
    let mut out = String::from("BENCH_profiling_overhead.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    let sizes = if smoke {
        vec![(25u64, 25u64)]
    } else {
        paper_sizes()
    };
    let mut cells: Vec<Cell> = Vec::new();
    for &(s, q) in &sizes {
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..Default::default()
        }
        .generate(seed ^ (s << 32) ^ q);
        for algorithm in Algorithm::table_columns() {
            let baseline = best_of(reps, &w.dividend, &w.divisor, algorithm, false);
            let profiled = best_of(reps, &w.dividend, &w.divisor, algorithm, true);
            let (Some(baseline), Some(profiled)) = (baseline, profiled) else {
                eprintln!("skip |S|={s} |Q|={q} {}", algorithm.label());
                continue;
            };
            let cell = Cell {
                divisor_size: s,
                quotient_size: q,
                algorithm,
                baseline_ms: baseline.cpu_ms_measured + baseline.io_ms,
                profiled_ms: profiled.cpu_ms_measured + profiled.io_ms,
            };
            println!(
                "|S|={s:>4} |Q|={q:>4} {:<22} baseline {:>9.3} ms  profiled {:>9.3} ms  overhead {:>+6.2} %",
                algorithm.label(),
                cell.baseline_ms,
                cell.profiled_ms,
                cell.overhead_pct()
            );
            cells.push(cell);
        }
    }
    if cells.is_empty() {
        eprintln!("no cells ran");
        std::process::exit(1);
    }

    let mean_overhead =
        cells.iter().map(Cell::overhead_pct).sum::<f64>() / cells.len().max(1) as f64;
    let baseline_total: f64 = cells.iter().map(|c| c.baseline_ms).sum();
    let profiled_total: f64 = cells.iter().map(|c| c.profiled_ms).sum();
    let aggregate_overhead = (profiled_total - baseline_total) / baseline_total * 100.0;
    println!(
        "\n{} cells: mean per-cell overhead {mean_overhead:+.2} %, aggregate {aggregate_overhead:+.2} % (gate: < 5 %)",
        cells.len()
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"reps\": {reps},\n  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"mean_overhead_pct\": {mean_overhead:.4},\n  \"aggregate_overhead_pct\": {aggregate_overhead:.4},\n"
    ));
    json.push_str("  \"gate_pct\": 5.0,\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"divisor_size\": {}, \"quotient_size\": {}, \"algorithm\": \"{}\", \
             \"baseline_ms\": {:.4}, \"profiled_ms\": {:.4}, \"overhead_pct\": {:.4}}}{}\n",
            c.divisor_size,
            c.quotient_size,
            c.algorithm.label(),
            c.baseline_ms,
            c.profiled_ms,
            c.overhead_pct(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if aggregate_overhead >= 5.0 {
        eprintln!("FAIL: aggregate profiling overhead {aggregate_overhead:.2} % >= 5 %");
        std::process::exit(1);
    }
}
