//! `model-check` — Section 5 of the paper: validate the Table 2 cost
//! formulas against measured executions, *per cost unit*.
//!
//! For every Table 4 cell (nine `(|S|, |Q|)` sizes × six algorithm
//! columns) the model's Section 4 formulas are decomposed into predicted
//! counts of the six Table 1 units (`RIO`, `SIO`, `Comp`, `Hash`, `Move`,
//! `Bit`) via [`UnitCounts::predict`], and the same division is executed
//! on the paper-configured storage stack while the abstract-operation
//! counters and simulated-disk statistics record the *measured* counts:
//!
//! * `comp`/`hash`/`move`/`bit` — the thread-local operation counters;
//! * `rio` — disk transfers that required a physical seek;
//! * `sio` — the remaining (sequential) transfers.
//!
//! Each pair is reported with its signed relative error, plus a
//! `total_ms` row pricing both vectors with the Table 1 units — the
//! paper's headline predicted-vs-measured comparison. Every quantity is
//! deterministic (counters and a simulated disk, no wall clocks), so the
//! JSON report is stable across machines and suitable for CI.
//!
//! By default the model is *calibrated*: its formulas are fed the
//! measured stack's geometry (real tuples-per-page densities and the
//! memory budget in 8 KB pages) so the comparison validates the formulas
//! rather than the paper's 1988 hardware constants. `--paper-geometry`
//! switches to Table 2's assumed densities instead.
//!
//! ```text
//! model-check [--seed N] [--out PATH] [--smoke] [--paper-geometry]
//! ```
//!
//! `--smoke` runs only the smallest cell (`|S| = |Q| = 25`) — the CI
//! configuration.

use reldiv_bench::{paper_sizes, try_run_division_experiment_checked, Measurement};
use reldiv_core::api::{divide_with_report, DivisionConfig, Source};
use reldiv_core::{Algorithm, DegradationReport, DivisionSpec, HashDivisionMode};
use reldiv_costmodel::{
    compare, CostModel, CostUnits, HybridSizes, PlannedAlgorithm, SizeConfig, UnitComparison,
    UnitCounts,
};
use reldiv_exec::scan::load_relation;
use reldiv_rel::schema::{Field, Schema};
use reldiv_rel::tuple::ints;
use reldiv_rel::{RecordCodec, Relation};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::WorkloadSpec;

/// The model column an executable algorithm validates against. The three
/// hash-division modes share Section 4.5's formula.
fn planned(algorithm: Algorithm) -> PlannedAlgorithm {
    match algorithm {
        Algorithm::Naive => PlannedAlgorithm::Naive,
        Algorithm::SortAggregation { join } => PlannedAlgorithm::SortAggregation { join },
        Algorithm::HashAggregation { join } => PlannedAlgorithm::HashAggregation { join },
        Algorithm::HashDivision { .. } => PlannedAlgorithm::HashDivision,
    }
}

/// A [`SizeConfig`] with the paper's cardinalities but the *measured*
/// stack's geometry: tuple densities read back from the pages the loaded
/// record files actually occupy, and the memory budget in real 8 KB data
/// pages. Table 2's assumed densities (5 dividend and 10 divisor tuples
/// per page) describe the paper's hardware; the formulas themselves are
/// geometry-generic, so validating against the simulated stack means
/// feeding them the simulated geometry.
fn calibrated_sizes(dividend: &Relation, divisor: &Relation, s: u64, q: u64) -> SizeConfig {
    let storage = StorageManager::shared(StorageConfig::paper());
    let d_file = load_relation(&storage, dividend).expect("load dividend");
    let s_file = load_relation(&storage, divisor).expect("load divisor");
    let sm = storage.borrow();
    let r_pages = sm.page_count(d_file).expect("dividend pages").max(1) as f64;
    let s_pages = sm.page_count(s_file).expect("divisor pages").max(1) as f64;
    let config = sm.config();
    SizeConfig {
        divisor: s,
        quotient: q,
        sq_per_page: divisor.cardinality() as f64 / s_pages,
        r_per_page: dividend.cardinality() as f64 / r_pages,
        memory_pages: config.work_memory_bytes as f64 / config.data_page_size as f64,
        hbs: 2.0,
        dividend_override: Some(dividend.cardinality() as u64),
    }
}

/// Measured unit counts from one execution's counters and disk stats.
fn measured_counts(m: &Measurement) -> UnitCounts {
    let seeks = m.io.seeks as f64;
    let transfers = m.io.transfers() as f64;
    UnitCounts {
        rio: seeks,
        sio: (transfers - seeks).max(0.0),
        comp: m.ops.comparisons as f64,
        hash: m.ops.hashes as f64,
        mv: m.ops.moves as f64,
        bit: m.ops.bitops as f64,
    }
}

/// Runs hash-division on `dividend ÷ divisor` with an optional per-query
/// budget, returning the pool's peak and the degradation report.
fn run_hybrid(
    dividend: &Relation,
    divisor: &Relation,
    budget: Option<usize>,
) -> (usize, DegradationReport, usize) {
    let storage = StorageManager::shared(StorageConfig::large());
    let pool = storage.borrow().memory();
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())
        .expect("workload schemas divide");
    let config = DivisionConfig {
        mem_budget: budget,
        ..DivisionConfig::default()
    };
    let (rel, report) = divide_with_report(
        &storage,
        &Source::from_relation(dividend),
        &Source::from_relation(divisor),
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &config,
    )
    .expect("budgeted hybrid division completes");
    (pool.peak(), report, rel.cardinality())
}

/// One predicted-vs-measured point of the hybrid budget sweep.
struct HybridCell {
    label: &'static str,
    budget: usize,
    predicted_degrades: bool,
    predicted_spill: f64,
    predicted_partitions: u32,
    measured: DegradationReport,
}

impl HybridCell {
    fn spill_error(&self) -> f64 {
        if self.predicted_spill > 0.0 {
            (self.measured.spill_bytes as f64 - self.predicted_spill) / self.predicted_spill
        } else if self.measured.spill_bytes == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

/// Validates the hybrid spill formula (`reldiv_costmodel::hybrid`)
/// against measured `DegradationReport`s across a budget sweep.
///
/// Calibration comes from two unbudgeted probe runs of the real stack: an
/// empty-dividend run isolates the divisor-table bytes `D`, and a full
/// run's pool peak gives `D + G·bytes-per-group`. The formula then
/// predicts the sweep; the measured runs must agree on the degradation
/// boundary at every budget, and — whenever the adaptive hybrid is the
/// rung that actually produced the answer — on spill volume within a
/// factor of 2. At starvation budgets the `Auto` ladder may abandon the
/// hybrid for a static rung, whose abandoned spools dominate the measured
/// bytes; only the boundary is checked there.
fn validate_hybrid(seed: u64, smoke: bool) -> Vec<HybridCell> {
    let (s, q) = if smoke {
        (25u64, 200u64)
    } else {
        (25u64, 400u64)
    };
    let w = WorkloadSpec {
        divisor_size: s,
        quotient_size: q,
        ..Default::default()
    }
    .generate(seed ^ 0x4879_6272);

    // Probe 1: divisor table alone (empty dividend).
    let empty = Relation::empty(w.dividend.schema().clone());
    let (divisor_table_bytes, _, _) = run_hybrid(&empty, &w.divisor, None);
    // Probe 2: everything resident.
    let (peak, clean, _) = run_hybrid(&w.dividend, &w.divisor, None);
    assert!(!clean.degraded, "unbudgeted probe must not spill");
    let need = peak.saturating_sub(divisor_table_bytes);
    let bytes_per_group = need as f64 / q as f64;

    // Spill-record widths, mirroring the hybrid's two layouts: state =
    // quotient + one Int per 64 divisor bits, delta = quotient + dno.
    let int_record = |cols: usize| {
        let fields = (0..cols).map(|i| Field::int(format!("c{i}"))).collect();
        RecordCodec::new(Schema::new(fields)).record_width() as u64
    };
    let words = (s as usize).div_ceil(64);
    let state_record_bytes = int_record(1 + words);
    let delta_record_bytes = int_record(2);

    let sizes = |budget: usize, matched: u64, hot: f64| HybridSizes {
        budget_bytes: budget as u64,
        divisor_table_bytes: divisor_table_bytes as u64,
        table_bytes_per_group: bytes_per_group,
        groups: q,
        tuples_per_group: s as f64,
        matched_tuples: matched,
        state_record_bytes,
        delta_record_bytes,
        fanout: 16,
        hot_fraction: hot,
    };

    let mut cells = Vec::new();
    for frac in [1.25, 0.75, 0.5, 0.25, 0.125] {
        let budget = divisor_table_bytes + (frac * need as f64) as usize;
        let p = sizes(budget, s * q, 0.0).predict();
        let (_, report, card) = run_hybrid(&w.dividend, &w.divisor, Some(budget));
        assert_eq!(card as u64, q, "budget={budget}: wrong quotient");
        cells.push(HybridCell {
            label: "uniform",
            budget,
            predicted_degrades: p.degrades,
            predicted_spill: p.spill_bytes,
            predicted_partitions: p.partitions_spilled,
            measured: report,
        });
    }

    // Skew point: group 0 duplicated to ~50% of the matched tuples. The
    // table (same groups) and the boundary stay put; the hot-group
    // accumulator must keep the measured deltas near the cold prediction.
    let mut rows: Vec<_> = w.dividend.tuples().to_vec();
    let base = rows.len() as u64;
    for i in 0..base.saturating_sub(s) {
        rows.push(ints(&[0, 1_000_000 + (i % s) as i64]));
    }
    let hot_dividend = Relation::from_tuples(w.dividend.schema().clone(), rows).unwrap();
    let matched = hot_dividend.cardinality() as u64;
    let budget = divisor_table_bytes + need / 2;
    let p = sizes(budget, matched, 0.5).predict();
    let (_, report, card) = run_hybrid(&hot_dividend, &w.divisor, Some(budget));
    assert_eq!(card as u64, q, "hot sweep: wrong quotient");
    cells.push(HybridCell {
        label: "hot-group",
        budget,
        predicted_degrades: p.degrades,
        predicted_spill: p.spill_bytes,
        predicted_partitions: p.partitions_spilled,
        measured: report,
    });
    cells
}

struct CellReport {
    divisor_size: u64,
    quotient_size: u64,
    algorithm: Algorithm,
    rows: Vec<UnitComparison>,
}

impl CellReport {
    /// The `total_ms` row's signed relative error.
    fn total_error(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.unit == "total_ms")
            .map(UnitComparison::relative_error)
            .unwrap_or(f64::INFINITY)
    }
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn usage() -> ! {
    eprintln!("usage: model-check [--seed N] [--out PATH] [--smoke] [--paper-geometry]");
    std::process::exit(2);
}

fn main() {
    let mut seed = 42u64;
    let mut out = String::from("BENCH_model_check.json");
    let mut smoke = false;
    let mut paper_geometry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--smoke" => smoke = true,
            // Predict with Table 2's assumed densities instead of the
            // measured stack's geometry — reproduces Table 2 verbatim but
            // makes the I/O comparison a statement about the paper's
            // hardware, not this stack.
            "--paper-geometry" => paper_geometry = true,
            _ => usage(),
        }
    }

    let sizes = if smoke {
        vec![(25u64, 25u64)]
    } else {
        paper_sizes()
    };
    let config = DivisionConfig {
        // The paper restricts "our analysis to duplicate free inputs".
        assume_unique: true,
        ..DivisionConfig::default()
    };

    let mut cells: Vec<CellReport> = Vec::new();
    for &(s, q) in &sizes {
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..Default::default()
        }
        .generate(seed ^ (s << 32) ^ q);
        let model = if paper_geometry {
            CostModel::paper(s, q)
        } else {
            CostModel {
                units: CostUnits::paper(),
                sizes: calibrated_sizes(&w.dividend, &w.divisor, s, q),
            }
        };
        for algorithm in Algorithm::table_columns() {
            let m = match try_run_division_experiment_checked(
                &w.dividend,
                &w.divisor,
                algorithm,
                &config,
                false,
            ) {
                Ok(m) => m,
                Err(e) => {
                    // Aggregation plans without overflow handling can
                    // exhaust the paper's 100 KB work memory; the model
                    // has no formula for the partitioned rerun either.
                    eprintln!("skip |S|={s} |Q|={q} {}: {e}", algorithm.label());
                    continue;
                }
            };
            assert_eq!(
                m.quotient_cardinality, q,
                "{algorithm:?} |S|={s} |Q|={q}: wrong quotient"
            );
            let predicted = UnitCounts::predict(&model, planned(algorithm));
            let rows = compare(&predicted, &measured_counts(&m), &model.units);
            let cell = CellReport {
                divisor_size: s,
                quotient_size: q,
                algorithm,
                rows,
            };
            println!(
                "|S|={s:>4} |Q|={q:>4} {:<22} total predicted/measured error {:>+7.1} %",
                algorithm.label(),
                cell.total_error() * 100.0
            );
            for row in &cell.rows {
                if row.predicted == 0.0 && row.measured == 0.0 {
                    continue;
                }
                println!(
                    "    {:<8} predicted {:>14.1}  measured {:>14.1}  error {:>+8.1} %",
                    row.unit,
                    row.predicted,
                    row.measured,
                    row.relative_error() * 100.0
                );
            }
            cells.push(cell);
        }
    }
    if cells.is_empty() {
        eprintln!("no cells ran");
        std::process::exit(1);
    }

    // Aggregate: mean |relative error| of the priced totals, the
    // paper-style summary of how well Table 2 tracks the measurements.
    let finite: Vec<f64> = cells
        .iter()
        .map(CellReport::total_error)
        .filter(|e| e.is_finite())
        .collect();
    let mean_abs_total = finite.iter().map(|e| e.abs()).sum::<f64>() / finite.len().max(1) as f64;
    println!(
        "\n{} cells: mean |total_ms relative error| {:.1} %",
        cells.len(),
        mean_abs_total * 100.0
    );

    // The hybrid budget sweep: the spill formula against measured
    // degradation reports. Boundary mismatches fail the check everywhere;
    // spill volumes off by more than 2x fail it on runs the adaptive
    // hybrid actually won (when a static ladder rung wins instead, its
    // abandoned spools dominate the bytes and only the boundary holds).
    println!("\nhybrid spill-formula validation:");
    let hybrid_cells = validate_hybrid(seed, smoke);
    let mut hybrid_ok = true;
    for c in &hybrid_cells {
        let adaptive_won = c
            .measured
            .phases
            .last()
            .is_some_and(|p| p.starts_with("adaptive-hybrid"));
        println!(
            "  {:<9} budget {:>8}  degrade predicted/measured {}/{}  spill predicted {:>9.0}  measured {:>9}  error {:>+7.1} %{}",
            c.label,
            c.budget,
            c.predicted_degrades,
            c.measured.degraded,
            c.predicted_spill,
            c.measured.spill_bytes,
            c.spill_error() * 100.0,
            if c.measured.degraded && !adaptive_won {
                "  (static rung won; volume not compared)"
            } else {
                ""
            }
        );
        if c.predicted_degrades != c.measured.degraded {
            eprintln!(
                "  FAIL: degradation boundary mismatch at budget {}",
                c.budget
            );
            hybrid_ok = false;
        }
        if c.predicted_degrades && c.measured.degraded && adaptive_won {
            let ratio = c.measured.spill_bytes as f64 / c.predicted_spill.max(1.0);
            if !(0.5..=2.0).contains(&ratio) {
                eprintln!(
                    "  FAIL: spill volume off by {ratio:.2}x at budget {}",
                    c.budget
                );
                hybrid_ok = false;
            }
        }
    }
    if !hybrid_ok {
        eprintln!("hybrid spill-formula validation failed");
        std::process::exit(1);
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"smoke\": {smoke},\n  \"paper_geometry\": {paper_geometry},\n"
    ));
    json.push_str(&format!(
        "  \"mean_abs_total_error\": {},\n  \"cells\": [\n",
        json_number(mean_abs_total)
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"divisor_size\": {}, \"quotient_size\": {}, \"algorithm\": \"{}\", \"units\": [\n",
            c.divisor_size,
            c.quotient_size,
            c.algorithm.label()
        ));
        for (j, row) in c.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"unit\": \"{}\", \"predicted\": {}, \"measured\": {}, \"relative_error\": {}}}{}\n",
                row.unit,
                json_number(row.predicted),
                json_number(row.measured),
                json_number(row.relative_error()),
                if j + 1 == c.rows.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"hybrid\": [\n");
    for (i, c) in hybrid_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"budget\": {}, \"predicted_degrades\": {}, \"measured_degraded\": {}, \"predicted_spill_bytes\": {}, \"measured_spill_bytes\": {}, \"predicted_partitions\": {}, \"measured_partitions\": {}, \"relative_error\": {}}}{}\n",
            c.label,
            c.budget,
            c.predicted_degrades,
            c.measured.degraded,
            json_number(c.predicted_spill),
            c.measured.spill_bytes,
            c.predicted_partitions,
            c.measured.partitions_spilled,
            json_number(c.spill_error()),
            if i + 1 == hybrid_cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
