//! The Section 4.6 speculation, measured: "If we drop the assumption that
//! `R = Q × S` ... we expect that hash-division always outperforms all
//! other algorithms because tuples that do not match with any divisor
//! tuple are eliminated early."
//!
//! Two sweeps over a fixed base workload (|S| = 100, 100 complete
//! groups):
//!
//! 1. **noise sweep** — extra non-matching tuples per group (the physics
//!    courses): hash-division discards them at the divisor-table probe;
//!    aggregation without a join silently *miscounts* them (and is
//!    therefore excluded), so the honest competitors all pay a join.
//! 2. **incomplete-groups sweep** — extra quotient candidates that do not
//!    participate: they inflate the quotient table but never qualify.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin selectivity_sweep
//! ```

use reldiv_bench::{run_division_experiment, Measurement};
use reldiv_core::api::DivisionConfig;
use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_workload::WorkloadSpec;

/// The competitors that remain *correct* on dividends containing
/// non-matching tuples: every aggregation plan needs its semi-join here.
fn competitors() -> Vec<Algorithm> {
    vec![
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ]
}

fn row(label: &str, w: &reldiv_workload::Workload) -> Vec<(Algorithm, Measurement)> {
    let config = DivisionConfig {
        assume_unique: true,
        ..Default::default()
    };
    let out: Vec<(Algorithm, Measurement)> = competitors()
        .into_iter()
        .map(|a| {
            (
                a,
                run_division_experiment(&w.dividend, &w.divisor, a, &config),
            )
        })
        .collect();
    print!("{label:>28} |R|={:>7}", w.dividend.cardinality());
    for (_, m) in &out {
        print!(" {:>10.0}", m.total_ms());
    }
    let hd = out.last().expect("hash-division last").1.total_ms();
    let best_other = out[..out.len() - 1]
        .iter()
        .map(|(_, m)| m.total_ms())
        .fold(f64::INFINITY, f64::min);
    println!("   hd/best-other = {:.2}", hd / best_other);
    out
}

fn main() {
    println!(
        "{:>28} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "workload", "", "Naive", "SortAgg+J", "HashAgg+J", "HashDiv"
    );
    println!("{}", "-".repeat(100));

    println!("-- noise sweep: non-matching tuples per complete group --");
    let mut wins = 0;
    let mut rows = 0;
    for noise in [0u64, 25, 50, 100, 200] {
        let spec = WorkloadSpec {
            divisor_size: 100,
            quotient_size: 100,
            noise_per_group: noise,
            ..Default::default()
        };
        let w = spec.generate(7 + noise);
        let out = row(&format!("noise/group = {noise}"), &w);
        let hd = out.last().expect("nonempty").1.total_ms();
        rows += 1;
        if out[..3].iter().all(|(_, m)| hd < m.total_ms()) {
            wins += 1;
        }
    }

    println!("-- incomplete-group sweep: candidates that do not participate --");
    for incomplete in [0u64, 100, 200, 400, 800] {
        let spec = WorkloadSpec {
            divisor_size: 100,
            quotient_size: 100,
            incomplete_groups: incomplete,
            incomplete_fill: 0.5,
            ..Default::default()
        };
        let w = spec.generate(1000 + incomplete);
        let out = row(&format!("incomplete groups = {incomplete}"), &w);
        let hd = out.last().expect("nonempty").1.total_ms();
        rows += 1;
        if out[..3].iter().all(|(_, m)| hd < m.total_ms()) {
            wins += 1;
        }
    }

    println!(
        "\nhash-division fastest in {wins}/{rows} rows \
         (paper's speculation: it should win whenever R is a strict superset of Q x S)"
    );
}
