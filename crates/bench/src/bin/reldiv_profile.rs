//! `reldiv-profile` — `EXPLAIN ANALYZE` from the command line.
//!
//! Generates a Table 4 style workload, runs one profiled division on the
//! paper-configured storage stack, and prints the span tree: per-operator
//! wall time, tuple flow, abstract-operation counts, page I/O, spill
//! bytes, and partitioning phases.
//!
//! ```text
//! reldiv-profile [--divisor-size N] [--quotient-size N] [--seed N]
//!                [--algorithm NAME] [--json]
//! ```
//!
//! Algorithm names: `naive`, `sort-agg`, `sort-agg-join`, `hash-agg`,
//! `hash-agg-join`, `hash-div` (default), `hash-div-early`,
//! `hash-div-counter`.

use reldiv_core::api::{divide_profiled, load_source, DivisionConfig};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::WorkloadSpec;

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Some(match name {
        "naive" => Algorithm::Naive,
        "sort-agg" => Algorithm::SortAggregation { join: false },
        "sort-agg-join" => Algorithm::SortAggregation { join: true },
        "hash-agg" => Algorithm::HashAggregation { join: false },
        "hash-agg-join" => Algorithm::HashAggregation { join: true },
        "hash-div" => Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        "hash-div-early" => Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        },
        "hash-div-counter" => Algorithm::HashDivision {
            mode: HashDivisionMode::CounterOnly,
        },
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: reldiv-profile [--divisor-size N] [--quotient-size N] [--seed N] \
         [--algorithm NAME] [--json]\n\
         algorithms: naive, sort-agg, sort-agg-join, hash-agg, hash-agg-join, \
         hash-div, hash-div-early, hash-div-counter"
    );
    std::process::exit(2);
}

fn main() {
    let mut divisor_size = 25u64;
    let mut quotient_size = 100u64;
    let mut seed = 42u64;
    let mut algorithm = Algorithm::HashDivision {
        mode: HashDivisionMode::Standard,
    };
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--divisor-size" => {
                divisor_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quotient-size" => {
                quotient_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--algorithm" => {
                algorithm = args
                    .next()
                    .and_then(|v| parse_algorithm(&v))
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            _ => usage(),
        }
    }

    let w = WorkloadSpec {
        divisor_size,
        quotient_size,
        ..Default::default()
    }
    .generate(seed);

    // The paper's storage configuration, cold-started so the profile
    // shows the real page I/O of reading the inputs.
    let storage = StorageManager::shared(StorageConfig::paper());
    let spec = DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema())
        .expect("workload schemas always divide");
    let d_src = load_source(&storage, &w.dividend).expect("load dividend");
    let s_src = load_source(&storage, &w.divisor).expect("load divisor");
    {
        let mut sm = storage.borrow_mut();
        sm.evict_all().expect("flush and evict loaded inputs");
        sm.reset_stats();
    }

    let config = DivisionConfig {
        assume_unique: true,
        ..DivisionConfig::default()
    };
    let (quotient, report, profile) =
        match divide_profiled(&storage, &d_src, &s_src, &spec, algorithm, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("division failed: {e}");
                std::process::exit(1);
            }
        };

    if json {
        println!("{}", profile.to_json());
        return;
    }
    println!(
        "{}  |S|={divisor_size} |Q|={quotient_size} |R|={}  quotient={}",
        algorithm.label(),
        w.dividend.cardinality(),
        quotient.cardinality()
    );
    if report.degraded {
        println!(
            "(degraded after {} retries: {})",
            report.retries,
            report.final_phase().unwrap_or("unknown phase")
        );
    }
    println!("{}", profile.render());
}
