//! `reldiv-profile` — `EXPLAIN ANALYZE` from the command line.
//!
//! Generates a Table 4 style workload, runs one profiled division on the
//! paper-configured storage stack, and prints the span tree: per-operator
//! wall time, tuple flow, abstract-operation counts, page I/O, spill
//! bytes, and partitioning phases.
//!
//! ```text
//! reldiv-profile [--divisor-size N] [--quotient-size N] [--seed N]
//!                [--algorithm NAME] [--json]
//! reldiv-profile --plan PLAN [--seed N] [--json]
//! ```
//!
//! Algorithm names: `naive`, `sort-agg`, `sort-agg-join`, `hash-agg`,
//! `hash-agg-join`, `hash-div` (default), `hash-div-early`,
//! `hash-div-counter`.
//!
//! `--plan` profiles a whole composed plan (the `reldiv-plan`
//! s-expression language, see `docs/PLANS.md`) over the paper's
//! university relations `transcript` and `courses` instead of a single
//! division; every plan operator — scans, filters, projections, joins,
//! aggregations, divisions — renders as a named span.

use reldiv_core::api::{divide_profiled, load_source, DivisionConfig};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_exec::profile::ProfileSink;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::university::{generate, UniversitysSpec};
use reldiv_workload::WorkloadSpec;

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Some(match name {
        "naive" => Algorithm::Naive,
        "sort-agg" => Algorithm::SortAggregation { join: false },
        "sort-agg-join" => Algorithm::SortAggregation { join: true },
        "hash-agg" => Algorithm::HashAggregation { join: false },
        "hash-agg-join" => Algorithm::HashAggregation { join: true },
        "hash-div" => Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        "hash-div-early" => Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        },
        "hash-div-counter" => Algorithm::HashDivision {
            mode: HashDivisionMode::CounterOnly,
        },
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: reldiv-profile [--divisor-size N] [--quotient-size N] [--seed N] \
         [--algorithm NAME] [--json]\n\
         \x20      reldiv-profile --plan PLAN [--seed N] [--json]\n\
         algorithms: naive, sort-agg, sort-agg-join, hash-agg, hash-agg-join, \
         hash-div, hash-div-early, hash-div-counter\n\
         --plan profiles a composed reldiv-plan query over the university\n\
         relations `transcript` and `courses` (see docs/PLANS.md)"
    );
    std::process::exit(2);
}

/// Profiles a composed plan over the generated university catalog and
/// prints the whole-plan span tree.
fn profile_plan(text: &str, seed: u64, json: bool) -> ! {
    let university = generate(&UniversitysSpec::default(), seed);
    let mut catalog = reldiv_plan::MemCatalog::new();
    catalog.insert("transcript", university.transcript);
    catalog.insert("courses", university.courses);
    let bound = reldiv_plan::parse(text)
        .and_then(|plan| reldiv_plan::bind(&plan, &catalog))
        .unwrap_or_else(|e| {
            eprintln!("plan failed: {e}");
            std::process::exit(1);
        });
    let sink = ProfileSink::new();
    let mut opts = reldiv_plan::ExecOptions::new(StorageManager::shared(StorageConfig::paper()));
    opts.profile = Some(sink.clone());
    let mut provider = catalog.clone();
    let output = reldiv_plan::execute(&bound, &mut provider, &opts).unwrap_or_else(|e| {
        eprintln!("plan failed: {e}");
        std::process::exit(1);
    });
    let profile = sink.finish();
    if json {
        println!("{}", profile.to_json());
    } else {
        for (i, choice) in output.choices.iter().enumerate() {
            println!(
                "divide {}: {} ({})",
                i + 1,
                choice.algorithm.label(),
                if choice.pinned {
                    "pinned by hint"
                } else {
                    "cost model"
                }
            );
        }
        println!(
            "result: {} rows\n{}",
            output.relation.cardinality(),
            profile.render()
        );
    }
    std::process::exit(0);
}

fn main() {
    let mut divisor_size = 25u64;
    let mut quotient_size = 100u64;
    let mut seed = 42u64;
    let mut algorithm = Algorithm::HashDivision {
        mode: HashDivisionMode::Standard,
    };
    let mut json = false;
    let mut plan: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plan" => plan = Some(args.next().unwrap_or_else(|| usage())),
            "--divisor-size" => {
                divisor_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quotient-size" => {
                quotient_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--algorithm" => {
                algorithm = args
                    .next()
                    .and_then(|v| parse_algorithm(&v))
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            _ => usage(),
        }
    }
    if let Some(text) = plan {
        profile_plan(&text, seed, json);
    }

    let w = WorkloadSpec {
        divisor_size,
        quotient_size,
        ..Default::default()
    }
    .generate(seed);

    // The paper's storage configuration, cold-started so the profile
    // shows the real page I/O of reading the inputs.
    let storage = StorageManager::shared(StorageConfig::paper());
    let spec = DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema())
        .expect("workload schemas always divide");
    let d_src = load_source(&storage, &w.dividend).expect("load dividend");
    let s_src = load_source(&storage, &w.divisor).expect("load divisor");
    {
        let mut sm = storage.borrow_mut();
        sm.evict_all().expect("flush and evict loaded inputs");
        sm.reset_stats();
    }

    let config = DivisionConfig {
        assume_unique: true,
        ..DivisionConfig::default()
    };
    let (quotient, report, profile) =
        match divide_profiled(&storage, &d_src, &s_src, &spec, algorithm, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("division failed: {e}");
                std::process::exit(1);
            }
        };

    if json {
        println!("{}", profile.to_json());
        return;
    }
    println!(
        "{}  |S|={divisor_size} |Q|={quotient_size} |R|={}  quotient={}",
        algorithm.label(),
        w.dividend.cardinality(),
        quotient.cardinality()
    );
    if report.degraded {
        println!(
            "(degraded after {} retries: {})",
            report.retries,
            report.final_phase().unwrap_or("unknown phase")
        );
    }
    println!("{}", profile.render());
}
