//! Group-size skew ablation: hash-division vs its competitors when most
//! quotient candidates take only a Zipf-skewed fraction of the divisor.
//!
//! Real for-all workloads are skewed — a handful of "power" groups are
//! complete while a long tail of groups touches only a few divisor
//! values. The candidates still occupy the quotient table (hash-division)
//! or the aggregation table, but never qualify. This sweep varies the
//! skew exponent θ and the tail size.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin skew_sweep
//! ```

use reldiv_bench::try_run_division_experiment;
use reldiv_core::api::DivisionConfig;
use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_workload::zipf_workload;

fn main() {
    let algorithms = [
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ];
    println!(
        "{:>8} {:>12} {:>9} | {:>10} {:>10} {:>10}   (total ms, measured CPU + modeled I/O)",
        "theta", "tail groups", "|R|", "SortAgg+J", "HashAgg+J", "HashDiv"
    );
    println!("{}", "-".repeat(92));
    let config = DivisionConfig {
        assume_unique: true,
        ..Default::default()
    };
    for &theta in &[0.2f64, 0.8, 1.2] {
        for &tail in &[500u64, 2_000, 8_000] {
            let w = zipf_workload(64, 100, tail, theta, 77);
            print!("{theta:>8} {tail:>12} {:>9} |", w.dividend.cardinality());
            for algorithm in algorithms {
                match try_run_division_experiment(&w.dividend, &w.divisor, algorithm, &config) {
                    Ok(m) => {
                        assert_eq!(
                            m.quotient_cardinality as usize,
                            w.expected_quotient.len(),
                            "{algorithm:?} wrong quotient under skew"
                        );
                        print!(" {:>10.0}", m.total_ms());
                    }
                    Err(e) if e.is_memory_exhausted() => {
                        // Both hash-based plans have partitioned overflow
                        // handling now; only a defeated fallback lands here.
                        print!(" {:>10}", "overflow");
                    }
                    Err(e) => panic!("{algorithm:?}: {e}"),
                }
            }
            println!();
        }
    }
    println!(
        "\n100 complete groups of 64 divisor values; the tail's group sizes follow \
         Zipf(theta). Larger theta = smaller tail tuples but the same number of \
         quotient candidates, so hash-division's advantage is in skipping the \
         second dividend pass, not in table size. At 8000 tail groups both \
         hash-based plans outgrow the paper's 100 KB work memory and recover \
         via their partitioned overflow paths (quotient partitioning for \
         hash-division, group-hash spilling for the aggregation)."
    );
}
