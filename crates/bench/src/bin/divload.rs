//! `divload` — closed-loop load generator for the division query service.
//!
//! Drives an embedded [`reldiv_service::Service`] through the in-process
//! client with a mix of repeated and distinct division queries while an
//! updater thread re-registers relations underneath them, and verifies
//! **every** response against a brute-force division of the exact input
//! versions the service reports — a response computed from (or cached
//! for) anything but the pinned versions fails the run.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin divload -- \
//!     [--queries N] [--clients N] [--workers N] [--queue N] [--cache N] \
//!     [--update-every N] [--seed N]
//! ```
//!
//! Prints throughput, latency percentiles, cache hit rate, rejection
//! count, and the verification tally; exits non-zero on any incorrect
//! quotient.
//!
//! **Cluster mode** drives a shared-nothing deployment instead of the
//! embedded service: `--cluster N` spawns N in-process TCP nodes, or
//! `--node HOST:PORT` (repeatable) connects to already-running
//! `reldiv-serve` processes. Queries go through the distributed
//! coordinator with `--strategy quotient|divisor|both` and optional
//! `--filter-bits N` bit-vector filtering; every reply is verified
//! against a brute-force oracle and per-link wire traffic is reported.
//! `--shutdown-nodes` sends each external node a clean shutdown at the
//! end (the CI smoke job's teardown).
//!
//! **Plan mode** (`--plan`) drives `ExecPlan` instead of plain
//! divisions: a mix of composed plans — filters, joins, projections,
//! divisions, HAVING COUNT — over the paper's university relations,
//! with catalog churn underneath, every reply verified against the
//! `reldiv-plan` reference interpreter at the exact relation versions
//! the service reports it pinned. Runs against the embedded service, or
//! against one already-running `reldiv-serve` with `--node HOST:PORT`
//! (the CI plan-smoke job).

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_rel::{RecordCodec, Relation, Tuple};
use reldiv_service::{
    DivideRequest, DivisionClient, InProcClient, QueryProfile, Service, ServiceConfig, ServiceError,
};
use reldiv_storage::FaultPlan;
use reldiv_workload::{brute_force_divide, WorkloadSpec};

const DIVIDENDS: [&str; 4] = ["r0", "r1", "r2", "r3"];
const DIVISORS: [&str; 2] = ["s0", "s1"];

/// Algorithms that are exactly correct for *any* input pair, including
/// the restricted-divisor case this load mix produces (dividends and
/// divisors update independently). The no-join aggregation columns are
/// excluded by the same rule the paper's planner applies.
const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::SortAggregation { join: true },
    Algorithm::HashAggregation { join: true },
    Algorithm::HashDivision {
        mode: HashDivisionMode::Standard,
    },
    Algorithm::HashDivision {
        mode: HashDivisionMode::EarlyOut,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum StrategyChoice {
    Quotient,
    Divisor,
    Both,
}

struct Args {
    queries: u64,
    clients: usize,
    workers: usize,
    queue: usize,
    cache: usize,
    update_every: u64,
    seed: u64,
    fault_rate: f64,
    deadline_ms: Option<u64>,
    profile: bool,
    cluster: usize,
    nodes: Vec<String>,
    strategy: StrategyChoice,
    filter_bits: Option<usize>,
    shutdown_nodes: bool,
    plan_mode: bool,
    kill_after: Option<u64>,
    replication: Option<usize>,
    mem_budget: Option<u64>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            queries: 10_000,
            clients: 8,
            workers: 4,
            queue: 16,
            cache: 128,
            update_every: 250,
            seed: 1989,
            fault_rate: 0.0,
            deadline_ms: None,
            profile: false,
            cluster: 0,
            nodes: Vec::new(),
            strategy: StrategyChoice::Both,
            filter_bits: None,
            shutdown_nodes: false,
            plan_mode: false,
            kill_after: None,
            replication: None,
            mem_budget: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: divload [--queries N] [--clients N] [--workers N] [--queue N] \
         [--cache N] [--update-every N] [--seed N] [--fault-rate P] [--deadline-ms MS] \
         [--profile] [--mem-budget BYTES]\n\
         cluster mode: [--cluster N | --node HOST:PORT ...] [--strategy quotient|divisor|both] \
         [--filter-bits N] [--shutdown-nodes] [--replication K] [--kill-after N]\n\
         plan mode: --plan [--node HOST:PORT] [--queries N] ...\n\
         --fault-rate P injects transient disk faults with probability P per transfer\n\
         --deadline-ms MS applies a per-query deadline\n\
         --profile requests EXPLAIN ANALYZE span trees and prints one at the end\n\
         --mem-budget BYTES caps each division's working memory, forcing adaptive \
         degradation under contention (spill counters are printed at the end)\n\
         --plan drives ExecPlan with a composed-plan mix, oracle-verified per pinned version\n\
         --cluster N spawns N in-process TCP nodes and divides through the coordinator\n\
         --node HOST:PORT uses an already-running node server (repeat per node)\n\
         --filter-bits N applies bit-vector filtering before tuples are shipped\n\
         --shutdown-nodes sends every node a clean shutdown when the run ends\n\
         --replication K stores each fragment on K nodes (default 2 with --kill-after)\n\
         --kill-after N hard-kills a random node once N requests completed; every \
         in-flight and subsequent request must still verify (needs --cluster and K >= 2)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args::default();
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| -> u64 {
            let Some(value) = args.next() else { usage() };
            match value.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("bad value for {flag}: {value:?}");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--queries" => parsed.queries = next("--queries"),
            "--clients" => parsed.clients = next("--clients") as usize,
            "--workers" => parsed.workers = next("--workers") as usize,
            "--queue" => parsed.queue = next("--queue") as usize,
            "--cache" => parsed.cache = next("--cache") as usize,
            "--update-every" => parsed.update_every = next("--update-every"),
            "--seed" => parsed.seed = next("--seed"),
            "--fault-rate" => {
                let Some(value) = args.next() else { usage() };
                match value.parse() {
                    Ok(v) => parsed.fault_rate = v,
                    Err(_) => {
                        eprintln!("bad value for --fault-rate: {value:?}");
                        usage();
                    }
                }
            }
            "--deadline-ms" => parsed.deadline_ms = Some(next("--deadline-ms")),
            "--profile" => parsed.profile = true,
            "--cluster" => parsed.cluster = next("--cluster") as usize,
            "--node" => {
                let Some(addr) = args.next() else { usage() };
                parsed.nodes.push(addr);
            }
            "--strategy" => {
                let Some(value) = args.next() else { usage() };
                parsed.strategy = match value.as_str() {
                    "quotient" => StrategyChoice::Quotient,
                    "divisor" => StrategyChoice::Divisor,
                    "both" => StrategyChoice::Both,
                    other => {
                        eprintln!("bad value for --strategy: {other:?}");
                        usage();
                    }
                };
            }
            "--filter-bits" => parsed.filter_bits = Some(next("--filter-bits") as usize),
            "--shutdown-nodes" => parsed.shutdown_nodes = true,
            "--plan" => parsed.plan_mode = true,
            "--kill-after" => parsed.kill_after = Some(next("--kill-after")),
            "--mem-budget" => parsed.mem_budget = Some(next("--mem-budget")),
            "--replication" => parsed.replication = Some(next("--replication") as usize),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    parsed
}

fn generate(name: &str, seed: u64) -> Relation {
    let dividend = name.starts_with('r');
    let w = WorkloadSpec {
        divisor_size: 4 + seed % 5,
        quotient_size: 20 + seed % 30,
        incomplete_groups: seed % 10,
        incomplete_fill: 0.5,
        noise_per_group: 0,
        ..WorkloadSpec::default()
    }
    .generate(seed);
    if dividend {
        w.dividend
    } else {
        w.divisor
    }
}

/// Sorted record-encoded quotient for one (dividend, divisor) version pair.
type CanonicalQuotient = Arc<Vec<Vec<u8>>>;

/// Ground truth shared by clients and the updater: every relation
/// version ever registered, plus memoized expected quotients per
/// (dividend version, divisor version) pair.
#[derive(Default)]
struct Oracle {
    versions: Mutex<HashMap<u64, Arc<Relation>>>,
    expected: Mutex<HashMap<(u64, u64), CanonicalQuotient>>,
}

impl Oracle {
    /// Registers `relation` under `name`, recording the version the
    /// catalog assigned.
    fn register(&self, client: &mut InProcClient, name: &str, relation: Relation) {
        let relation = Arc::new(relation);
        let version = client
            .register(name, &relation)
            .expect("registration only fails during shutdown");
        self.versions.lock().unwrap().insert(version, relation);
    }

    /// The relation a version number refers to. A client can observe a
    /// version a beat before the updater records it; spin briefly.
    fn relation(&self, version: u64) -> Arc<Relation> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(r) = self.versions.lock().unwrap().get(&version) {
                return r.clone();
            }
            assert!(
                Instant::now() < deadline,
                "version {version} never appeared in the oracle"
            );
            std::thread::yield_now();
        }
    }

    /// Canonical byte image of the true quotient for a version pair.
    fn expected(&self, dividend_v: u64, divisor_v: u64) -> CanonicalQuotient {
        if let Some(hit) = self.expected.lock().unwrap().get(&(dividend_v, divisor_v)) {
            return hit.clone();
        }
        let dividend = self.relation(dividend_v);
        let divisor = self.relation(divisor_v);
        let quotient = brute_force_divide(&dividend, &divisor, &[1], &[0]);
        let schema = dividend
            .schema()
            .project(&[0])
            .expect("dividend has a quotient column");
        let bytes = Arc::new(canonical_bytes(&RecordCodec::new(schema), &quotient));
        self.expected
            .lock()
            .unwrap()
            .insert((dividend_v, divisor_v), bytes.clone());
        bytes
    }
}

fn canonical_bytes(codec: &RecordCodec, tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let mut records: Vec<Vec<u8>> = tuples
        .iter()
        .map(|t| codec.encode(t).expect("tuples fit their schema"))
        .collect();
    records.sort();
    records
}

/// Drives an N-node cluster through the distributed coordinator: the
/// same closed-loop verify-everything discipline as the in-process run,
/// but with relations sharded across TCP nodes, catalog updates going
/// through `register`, and wire traffic accounted per link.
fn run_cluster(args: &Args) -> ExitCode {
    use reldiv_cluster::{ClusterQueryOptions, Coordinator, LocalCluster, Strategy};

    if args.kill_after.is_some() && args.cluster == 0 {
        eprintln!("divload: --kill-after needs --cluster (it cannot kill external nodes)");
        return ExitCode::FAILURE;
    }
    // A fragment must survive its primary dying: killing needs replicas.
    let replication = args
        .replication
        .unwrap_or(if args.kill_after.is_some() { 2 } else { 1 });
    if args.kill_after.is_some() && replication < 2 {
        eprintln!("divload: --kill-after needs --replication >= 2 to keep every fragment alive");
        return ExitCode::FAILURE;
    }

    // Spawn local nodes or resolve external ones; either way the
    // coordinator only ever speaks TCP frames to them.
    let local: Option<Arc<Mutex<LocalCluster>>>;
    let mut coordinator = if args.nodes.is_empty() {
        let cluster = match LocalCluster::start_with(args.cluster, |_| ServiceConfig {
            workers: args.workers,
            queue_depth: args.queue,
            cache_capacity: args.cache,
            ..ServiceConfig::default()
        }) {
            Ok(cluster) => cluster,
            Err(e) => {
                eprintln!("divload: cannot start the cluster: {e}");
                return ExitCode::FAILURE;
            }
        };
        let coordinator = match cluster.coordinator(Some(Duration::from_secs(60))) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("divload: cannot connect the coordinator: {e}");
                return ExitCode::FAILURE;
            }
        };
        local = Some(Arc::new(Mutex::new(cluster)));
        coordinator
    } else {
        local = None;
        use std::net::ToSocketAddrs;
        let mut addrs = Vec::new();
        for node in &args.nodes {
            match node.to_socket_addrs().ok().and_then(|mut it| it.next()) {
                Some(addr) => addrs.push(addr),
                None => {
                    eprintln!("divload: cannot resolve node address {node:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match Coordinator::connect(&addrs, Some(Duration::from_secs(60))) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("divload: cannot connect to the nodes: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = coordinator.set_replication(replication) {
        eprintln!("divload: --replication {replication}: {e}");
        return ExitCode::FAILURE;
    }

    // The chaos killer: once `--kill-after` queries have completed, a
    // random node is hard-killed from another thread — possibly while a
    // query is mid-flight. Failover must keep every reply exact.
    let completed_queries = Arc::new(AtomicU64::new(0));
    let killed_node = Arc::new(AtomicU64::new(u64::MAX));
    let kill_done = Arc::new(AtomicBool::new(false));
    let killer = args.kill_after.and_then(|after| {
        let cluster = local.clone()?;
        let completed = completed_queries.clone();
        let killed = killed_node.clone();
        let done = kill_done.clone();
        let victim = StdRng::seed_from_u64(args.seed ^ 0x6B11).gen_range(0..args.cluster) as u64;
        Some(std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                if completed.load(Ordering::Acquire) >= after {
                    cluster.lock().unwrap().kill(victim as usize);
                    killed.store(victim, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }))
    });

    // Current contents of every named relation, for oracle checks; the
    // expected-quotient memo is invalidated whenever a name updates.
    let mut current: HashMap<&'static str, Relation> = HashMap::new();
    let mut expected: HashMap<(String, String), Arc<Vec<String>>> = HashMap::new();
    for (i, name) in DIVIDENDS.iter().chain(DIVISORS.iter()).enumerate() {
        let relation = generate(name, args.seed + i as u64);
        if let Err(e) = coordinator.register(name, &relation, &[0]) {
            eprintln!("divload: register {name}: {e}");
            return ExitCode::FAILURE;
        }
        current.insert(name, relation);
    }
    let canon = |tuples: &[Tuple]| -> Vec<String> {
        let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
        out.sort();
        out
    };

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x0C10_57E2);
    let mut incorrect = 0u64;
    let mut latencies_us: Vec<u64> = Vec::with_capacity(args.queries as usize);
    let mut bytes = 0u64;
    let mut messages = 0u64;
    let mut filtered = 0u64;
    let every = args.update_every.max(1);
    let start = Instant::now();
    for q in 0..args.queries {
        if q > 0 && q % every == 0 {
            // Catalog churn: replace one relation under the running load.
            let names: [&'static str; 6] = ["r0", "r1", "r2", "r3", "s0", "s1"];
            let name = names[rng.gen_range(0..names.len())];
            let relation = generate(name, rng.gen_range(0..1u64 << 40));
            if let Err(e) = coordinator.register(name, &relation, &[0]) {
                eprintln!("divload: re-register {name}: {e}");
                return ExitCode::FAILURE;
            }
            current.insert(name, relation);
            expected.retain(|(d, s), _| d != name && s != name);
        }
        let dividend = DIVIDENDS[rng.gen_range(0..DIVIDENDS.len())];
        let divisor = DIVISORS[rng.gen_range(0..DIVISORS.len())];
        let strategy = match args.strategy {
            StrategyChoice::Quotient => Strategy::QuotientPartitioning,
            StrategyChoice::Divisor => Strategy::DivisorPartitioning,
            StrategyChoice::Both if q % 2 == 0 => Strategy::QuotientPartitioning,
            StrategyChoice::Both => Strategy::DivisorPartitioning,
        };
        let options = ClusterQueryOptions {
            strategy,
            // Filtering is a divisor-partitioning mechanism.
            bit_vector_bits: (strategy == Strategy::DivisorPartitioning)
                .then_some(args.filter_bits)
                .flatten(),
            spec: None,
            profile: false,
        };
        let response = match coordinator.divide(dividend, divisor, &options) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("divload: {dividend} ÷ {divisor} ({strategy:?}): {e}");
                return ExitCode::FAILURE;
            }
        };
        let key = (dividend.to_string(), divisor.to_string());
        let want = expected
            .entry(key)
            .or_insert_with(|| {
                Arc::new(canon(&brute_force_divide(
                    &current[dividend],
                    &current[divisor],
                    &[1],
                    &[0],
                )))
            })
            .clone();
        if canon(&response.tuples) != *want {
            incorrect += 1;
            eprintln!(
                "INCORRECT quotient: {dividend} ÷ {divisor} ({strategy:?}): got {} tuples, want {}",
                response.tuples.len(),
                want.len()
            );
        }
        latencies_us.push(response.report.elapsed.as_micros() as u64);
        bytes += response.report.bytes;
        messages += response.report.messages;
        filtered += response.report.filtered_tuples;
        completed_queries.store(q + 1, Ordering::Release);
    }
    let elapsed = start.elapsed();
    kill_done.store(true, Ordering::Release);
    if let Some(handle) = killer {
        let _ = handle.join();
    }
    let killed = match killed_node.load(Ordering::Acquire) {
        u64::MAX => None,
        node => Some(node as usize),
    };

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * p) as usize]
        }
    };
    let completed = args.queries;
    println!(
        "divload: {completed} cluster queries across {} nodes in {:.2} s ({:.0} q/s)",
        coordinator.nodes(),
        elapsed.as_secs_f64(),
        completed as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "latency: p50 {} us, p95 {} us, p99 {} us",
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
    println!(
        "wire:    {} bytes in {} messages ({} tuples filtered before shipping)",
        format_count(bytes),
        format_count(messages),
        format_count(filtered)
    );
    for (node, link) in coordinator.link_stats().iter().enumerate() {
        println!(
            "  node {node}: sent {} msgs / {} B, received {} msgs / {} B",
            link.messages_sent, link.bytes_sent, link.messages_received, link.bytes_received
        );
    }
    let robustness = coordinator.robustness_metrics();
    match killed {
        Some(node) => println!(
            "chaos:   node {node} killed after {} requests (replication {replication}); \
             {} failovers, {} replica retries",
            args.kill_after.unwrap_or(0),
            robustness.failovers,
            robustness.replica_retries
        ),
        None if replication > 1 => println!(
            "robust:  replication {replication}, {} failovers, {} replica retries",
            robustness.failovers, robustness.replica_retries
        ),
        None => {}
    }
    println!(
        "verify:  {}/{completed} completed replies correct",
        completed - incorrect
    );
    if args.shutdown_nodes {
        for (node, result) in coordinator.shutdown_nodes().into_iter().enumerate() {
            if let Err(e) = result {
                // The node the chaos killer took down cannot acknowledge.
                if killed == Some(node) {
                    continue;
                }
                eprintln!("divload: shutdown node {node}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("nodes:   all surviving nodes acknowledged shutdown");
    }
    if incorrect > 0 {
        eprintln!("divload: FAILED — {incorrect} incorrect quotients");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Composed plans over `transcript(student-id, course-no, grade)` and
/// `courses(course-no, title)` — every plan-node type appears in the
/// mix, and three of the five contain divisions the planner must choose
/// algorithms for.
const PLAN_MIX: [&str; 5] = [
    // The motivating query: students who took all database courses.
    "(divide (on course-no) \
       (project (student-id course-no) (scan transcript)) \
       (project (course-no) (filter (contains title \"database\") (scan courses))))",
    // Students who took every course.
    "(divide (on course-no) \
       (project (student-id course-no) (scan transcript)) \
       (project (course-no) (scan courses)))",
    // HAVING COUNT over a grouped aggregate.
    "(having-count >= 5 (group-count (student-id) (scan transcript)))",
    // Duplicate elimination over a projection.
    "(distinct (project (course-no) (scan transcript)))",
    // Filter + join + division + HAVING COUNT in one tree.
    "(having-count >= 2 \
       (group-count (student-id) \
         (join (on (student-id student-id)) \
           (divide (on course-no) \
             (project (student-id course-no) (scan transcript)) \
             (project (course-no) (filter (contains title \"database\") (scan courses)))) \
           (project (student-id) (scan transcript)))))",
];

/// Closed-loop `ExecPlan` driver: a plan mix over the university
/// relations with catalog churn, every reply verified against the
/// reference interpreter at the exact versions the service pinned.
fn run_plans(args: &Args) -> ExitCode {
    use reldiv_plan::{bind, canonical_bytes as plan_bytes, evaluate, parse, MemCatalog};
    use reldiv_service::{ExecPlanRequest, TcpClient};
    use reldiv_workload::university::{generate as university, UniversitysSpec};

    let relation_for = |name: &str, seed: u64| -> Relation {
        let u = university(&UniversitysSpec::default(), seed);
        if name == "transcript" {
            u.transcript
        } else {
            u.courses
        }
    };

    // Either one external `reldiv-serve` node or an embedded service.
    let embedded;
    let mut client: Box<dyn DivisionClient> = if let Some(node) = args.nodes.first() {
        match TcpClient::connect(node.as_str()) {
            Ok(c) => Box::new(c),
            Err(e) => {
                eprintln!("divload: cannot connect to {node}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let storage_faults = (args.fault_rate > 0.0).then(|| {
            FaultPlan::seeded(args.seed ^ 0xFA_017)
                .with_read_error_rate(args.fault_rate)
                .with_write_error_rate(args.fault_rate)
        });
        embedded = match Service::start(ServiceConfig {
            workers: args.workers,
            queue_depth: args.queue,
            cache_capacity: args.cache,
            storage_faults,
            default_deadline: args.deadline_ms.map(Duration::from_millis),
            ..ServiceConfig::default()
        }) {
            Ok(service) => service,
            Err(e) => {
                eprintln!("divload: cannot start the service: {e}");
                return ExitCode::FAILURE;
            }
        };
        Box::new(InProcClient::new(embedded.clone()))
    };

    // Version → relation contents (catalog versions are globally unique),
    // and memoized expected answers per (plan, exact version pins).
    type ExpectedKey = (usize, Vec<(String, u64)>);
    let mut versions: HashMap<u64, Relation> = HashMap::new();
    let mut expected: HashMap<ExpectedKey, Arc<Vec<Vec<u8>>>> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x9_1A7);
    for name in ["transcript", "courses"] {
        let relation = relation_for(name, args.seed);
        let version = match client.register(name, &relation) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("divload: register {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        versions.insert(version, relation);
    }

    let faulty = args.fault_rate > 0.0 || args.deadline_ms.is_some();
    let every = args.update_every.max(1);
    let mut incorrect = 0u64;
    let mut failed = 0u64;
    let mut cached = 0u64;
    let mut algorithms: HashMap<String, u64> = HashMap::new();
    let mut sample_profile: Option<QueryProfile> = None;
    let mut profiled = 0u64;
    let mut latencies_us: Vec<u64> = Vec::with_capacity(args.queries as usize);
    let start = Instant::now();
    let mut completed = 0u64;
    let mut next_churn = every;
    while completed < args.queries {
        if completed >= next_churn {
            next_churn += every;
            // Catalog churn: replace one relation under the plan load.
            let name = if rng.gen_bool(0.5) {
                "transcript"
            } else {
                "courses"
            };
            let relation = relation_for(name, rng.gen_range(0..1u64 << 40));
            match client.register(name, &relation) {
                Ok(version) => {
                    versions.insert(version, relation);
                }
                Err(e) => {
                    eprintln!("divload: re-register {name}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let plan_idx = rng.gen_range(0..PLAN_MIX.len());
        let request = ExecPlanRequest {
            plan: PLAN_MIX[plan_idx].to_owned(),
            deadline_ms: None,
            profile: args.profile,
        };
        let sent = Instant::now();
        let reply = match client.exec_plan(&request) {
            Ok(reply) => reply,
            Err(ServiceError::Overloaded) => {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            Err(_) if faulty => {
                failed += 1;
                completed += 1;
                latencies_us.push(sent.elapsed().as_micros() as u64);
                continue;
            }
            Err(e) => {
                eprintln!("divload: plan {plan_idx}: {e}");
                return ExitCode::FAILURE;
            }
        };
        latencies_us.push(sent.elapsed().as_micros() as u64);
        completed += 1;
        if reply.cached {
            cached += 1;
        }
        for algorithm in &reply.algorithms {
            *algorithms.entry(algorithm.label().to_owned()).or_default() += 1;
        }
        if let Some(profile) = &reply.profile {
            profiled += 1;
            if sample_profile.is_none() {
                sample_profile = Some(profile.clone());
            }
        }

        // Oracle check at the exact versions the service says it pinned.
        let want = match expected.entry((plan_idx, reply.relations.clone())) {
            std::collections::hash_map::Entry::Occupied(hit) => hit.get().clone(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let mut catalog = MemCatalog::new();
                for (name, version) in &reply.relations {
                    let Some(relation) = versions.get(version) else {
                        eprintln!("divload: reply pinned unknown version {name}@{version}");
                        return ExitCode::FAILURE;
                    };
                    catalog.insert(name.clone(), relation.clone());
                }
                let answer = parse(PLAN_MIX[plan_idx])
                    .and_then(|plan| bind(&plan, &catalog))
                    .and_then(|bound| evaluate(&bound, &catalog));
                match answer {
                    Ok(relation) => slot.insert(Arc::new(plan_bytes(&relation))).clone(),
                    Err(e) => {
                        eprintln!("divload: reference evaluation of plan {plan_idx}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
        let got = match Relation::from_tuples(reply.schema.clone(), reply.tuples.to_vec()) {
            Ok(relation) => plan_bytes(&relation),
            Err(e) => {
                eprintln!("divload: reply tuples do not fit their schema: {e}");
                return ExitCode::FAILURE;
            }
        };
        if got != *want {
            incorrect += 1;
            eprintln!(
                "INCORRECT plan result: plan {plan_idx} at {:?} (cached {}): got {} tuples, want {}",
                reply.relations,
                reply.cached,
                got.len(),
                want.len()
            );
        }
    }
    let elapsed = start.elapsed();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * p) as usize]
        }
    };
    println!(
        "divload: {completed} plan queries in {:.2} s ({:.0} q/s)",
        elapsed.as_secs_f64(),
        completed as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "latency: p50 {} us, p95 {} us, p99 {} us",
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
    println!(
        "cache:   {} plan-cache hits / {} queries ({:.1}%)",
        cached,
        completed,
        100.0 * cached as f64 / completed.max(1) as f64
    );
    let mut chosen: Vec<(String, u64)> = algorithms.into_iter().collect();
    chosen.sort();
    println!(
        "chosen:  {}",
        chosen
            .iter()
            .map(|(label, n)| format!("{label} ×{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if faulty {
        println!("faults:  {failed} plan queries failed under injection/deadlines");
    }
    println!(
        "verify:  {}/{} completed replies correct",
        completed - failed - incorrect,
        completed - failed,
    );
    if args.profile {
        println!("profile: {profiled} uncached plans returned span trees");
        if let Some(profile) = &sample_profile {
            println!("--- sample plan profile ---\n{}", profile.render());
        }
    }
    if incorrect > 0 {
        eprintln!("divload: FAILED — {incorrect} incorrect plan results");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn format_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.cluster > 0 && !args.nodes.is_empty() {
        eprintln!("divload: --cluster and --node are mutually exclusive");
        usage();
    }
    if args.plan_mode {
        if args.cluster > 0 || args.nodes.len() > 1 {
            eprintln!("divload: plan mode drives one service (embedded or a single --node)");
            usage();
        }
        return run_plans(&args);
    }
    if args.cluster > 0 || !args.nodes.is_empty() {
        return run_cluster(&args);
    }
    let storage_faults = (args.fault_rate > 0.0).then(|| {
        FaultPlan::seeded(args.seed ^ 0xFA_017)
            .with_read_error_rate(args.fault_rate)
            .with_write_error_rate(args.fault_rate)
    });
    let service = match Service::start(ServiceConfig {
        workers: args.workers,
        queue_depth: args.queue,
        cache_capacity: args.cache,
        storage_faults,
        default_deadline: args.deadline_ms.map(Duration::from_millis),
        ..ServiceConfig::default()
    }) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("divload: cannot start the service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let oracle = Arc::new(Oracle::default());

    let mut setup = InProcClient::new(service.clone());
    for (i, name) in DIVIDENDS.iter().chain(DIVISORS.iter()).enumerate() {
        oracle.register(&mut setup, name, generate(name, args.seed + i as u64));
    }

    let completed = Arc::new(AtomicU64::new(0));
    let incorrect = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let profiled = Arc::new(AtomicU64::new(0));
    let sample_profile: Arc<Mutex<Option<QueryProfile>>> = Arc::new(Mutex::new(None));
    let done = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    // Updater: re-register a random relation every `update_every`
    // completed queries, interleaving catalog updates (and the cache
    // invalidations they trigger) with the query load at a fixed rate
    // regardless of throughput.
    let updates = {
        let service = service.clone();
        let oracle = oracle.clone();
        let done = done.clone();
        let completed = completed.clone();
        let seed = args.seed;
        let every = args.update_every.max(1);
        std::thread::spawn(move || {
            let mut client = InProcClient::new(service);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD171_DE00);
            let mut updates = 0u64;
            let mut threshold = every;
            while !done.load(Ordering::Acquire) {
                if completed.load(Ordering::Relaxed) < threshold {
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                }
                threshold += every;
                let names: [&str; 6] = ["r0", "r1", "r2", "r3", "s0", "s1"];
                let name = names[rng.gen_range(0..names.len())];
                oracle.register(
                    &mut client,
                    name,
                    generate(name, rng.gen_range(0..1u64 << 40)),
                );
                updates += 1;
            }
            updates
        })
    };

    let clients: Vec<_> = (0..args.clients.max(1))
        .map(|client_id| {
            let service = service.clone();
            let oracle = oracle.clone();
            let completed = completed.clone();
            let incorrect = incorrect.clone();
            let failed = failed.clone();
            let profiled = profiled.clone();
            let sample_profile = sample_profile.clone();
            let faulty = args.fault_rate > 0.0 || args.deadline_ms.is_some();
            let target = args.queries;
            let seed = args.seed;
            let want_profile = args.profile;
            let mem_budget = args.mem_budget;
            std::thread::spawn(move || {
                let mut client = InProcClient::new(service);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client_id as u64 * 7919));
                while completed.load(Ordering::Relaxed) < target {
                    // Small key space → plenty of repeats (cache hits);
                    // updates keep injecting distinct versions.
                    let request = DivideRequest {
                        dividend: DIVIDENDS[rng.gen_range(0..DIVIDENDS.len())].into(),
                        divisor: DIVISORS[rng.gen_range(0..DIVISORS.len())].into(),
                        algorithm: Some(ALGORITHMS[rng.gen_range(0..ALGORITHMS.len())]),
                        assume_unique: false,
                        spec: None,
                        deadline_ms: None,
                        profile: want_profile,
                        distribute: None,
                        restricted: None,
                        mem_budget,
                    };
                    match client.divide(&request) {
                        Ok(reply) => {
                            if let Some(profile) = &reply.profile {
                                profiled.fetch_add(1, Ordering::Relaxed);
                                let mut sample = sample_profile.lock().unwrap();
                                if sample.is_none() {
                                    *sample = Some(profile.clone());
                                }
                            }
                            let got = canonical_bytes(
                                &RecordCodec::new(reply.schema.clone()),
                                &reply.tuples,
                            );
                            let want =
                                oracle.expected(reply.dividend_version, reply.divisor_version);
                            if got != *want {
                                incorrect.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "INCORRECT quotient: {} ÷ {} ({:?}, cached {}, versions {}/{}): \
                                     got {} tuples, want {}",
                                    request.dividend,
                                    request.divisor,
                                    reply.algorithm,
                                    reply.cached,
                                    reply.dividend_version,
                                    reply.divisor_version,
                                    got.len(),
                                    want.len()
                                );
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::Overloaded) => {
                            // Shed: back off briefly and retry (closed loop).
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServiceError::ShuttingDown) => break,
                        Err(_other) if faulty => {
                            // Under injected faults or deadlines some
                            // queries legitimately fail; correctness is
                            // judged only on completed replies.
                            failed.fetch_add(1, Ordering::Relaxed);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected service error: {other}"),
                    }
                }
            })
        })
        .collect();

    for handle in clients {
        handle.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    done.store(true, Ordering::Release);
    let update_count = updates.join().expect("updater thread");
    service.shutdown();

    let stats = service.stats();
    let completed = completed.load(Ordering::Relaxed);
    let incorrect = incorrect.load(Ordering::Relaxed);
    let answered = stats.cache_hits + stats.cache_misses;
    println!(
        "divload: {completed} queries in {:.2} s ({:.0} q/s), {update_count} relation updates",
        elapsed.as_secs_f64(),
        completed as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "latency: p50 {} us, p95 {} us, p99 {} us (mean {} us)",
        stats.latency_p50_us, stats.latency_p95_us, stats.latency_p99_us, stats.latency_mean_us
    );
    println!(
        "cache:   {} hits / {} lookups ({:.1}%), {} entries resident",
        stats.cache_hits,
        answered,
        100.0 * stats.hit_rate(),
        service.cache_len(),
    );
    println!(
        "load:    {} rejections (admission control), {} errors",
        stats.rejections, stats.errors
    );
    if args.fault_rate > 0.0 || args.deadline_ms.is_some() {
        println!(
            "faults:  {} queries failed under injection, {} timeouts, {} io retries absorbed, \
             {} worker panics survived",
            failed.load(Ordering::Relaxed),
            stats.timeouts,
            stats.io_retries,
            stats.worker_panics,
        );
    }
    if args.mem_budget.is_some() {
        println!(
            "memory:  {} divisions degraded under the budget, {} bytes spooled to spill files",
            stats.degraded_queries, stats.division_spill_bytes,
        );
    }
    println!(
        "ops:     {} comparisons, {} hashes, {} moves, {} bitops",
        format_count(stats.ops.comparisons),
        format_count(stats.ops.hashes),
        format_count(stats.ops.moves),
        format_count(stats.ops.bitops)
    );
    let failed = failed.load(Ordering::Relaxed);
    println!(
        "verify:  {}/{} completed replies correct",
        completed - failed - incorrect,
        completed - failed,
    );
    if args.profile {
        println!(
            "profile: {} uncached queries returned span trees",
            profiled.load(Ordering::Relaxed)
        );
        if let Some(profile) = sample_profile.lock().unwrap().as_ref() {
            println!("--- sample query profile ---\n{}", profile.render());
        }
    }
    if incorrect > 0 {
        eprintln!("divload: FAILED — {incorrect} incorrect quotients");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
