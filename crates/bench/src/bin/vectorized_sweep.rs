//! Vectorized (batch-at-a-time) vs. tuple-at-a-time hash-division over
//! the paper's Table 4 grid.
//!
//! For every `(|S|, |Q|)` combination of {25, 100, 400} the same
//! division runs twice through `divide_with_report`: once with
//! `ExecMode::Tuple` (the Volcano open/next/close path) and once with
//! `ExecMode::Batch` (1024-tuple batches through the packed-key hash
//! kernels). Both arms use `OverflowPolicy::Fail`, so both run the
//! in-memory operator — where the engine guarantees *byte-identical*
//! quotients, asserted per cell — and the measured ratio is pure
//! vectorization gain, not a policy difference.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin vectorized_sweep -- [--smoke] [--out BENCH_vectorized.json]
//! ```
//!
//! Exits non-zero if any cell's quotients differ between the paths, or
//! if the batch arm's throughput drops below the tuple arm's on the
//! largest grid configuration — the regression gate CI runs in smoke
//! mode.

use std::time::Instant;

use reldiv_core::api::{divide_with_report, DivisionConfig, OverflowPolicy, Source};
use reldiv_core::{Algorithm, DivisionSpec, ExecMode, HashDivisionMode};
use reldiv_costmodel::table2_configs;
use reldiv_rel::Relation;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::{Workload, WorkloadSpec};

/// One measured arm at one grid cell.
struct Arm {
    elapsed_ms: f64,
    quotient: Relation,
}

impl Arm {
    fn throughput(&self, tuples: usize) -> f64 {
        tuples as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

/// Runs one in-memory division on the given execution path. The storage
/// manager is shared across arms and reps: allocating a fresh buffer
/// pool per run would cold-start the caches inside every measurement,
/// adding the same constant to both arms and compressing the ratio.
fn run_arm(w: &Workload, storage: &reldiv_storage::StorageRef, exec: ExecMode) -> Arm {
    let spec = DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema())
        .expect("workload schemas divide");
    let config = DivisionConfig {
        overflow: OverflowPolicy::Fail,
        exec,
        ..DivisionConfig::default()
    };
    // Source materialization is harness setup both arms would pay
    // identically — keep it outside the timed region.
    let dividend = Source::from_relation(&w.dividend);
    let divisor = Source::from_relation(&w.divisor);
    let start = Instant::now();
    let (rel, report) = divide_with_report(
        storage,
        &dividend,
        &divisor,
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &config,
    )
    .expect("in-memory division fits StorageConfig::large");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    assert!(!report.degraded, "Fail policy never degrades");
    assert_eq!(
        rel.cardinality(),
        w.expected_quotient.len(),
        "{exec:?}: wrong quotient cardinality"
    );
    Arm {
        elapsed_ms,
        quotient: rel,
    }
}

struct Row {
    divisor_size: u64,
    quotient_size: u64,
    dividend_tuples: usize,
    tuple: Arm,
    batch: Arm,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tuple.elapsed_ms / self.batch.elapsed_ms.max(1e-9)
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_vectorized.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // The full sweep covers the paper's nine-cell grid; smoke keeps CI
    // fast with the diagonal (the largest cell — the gate — included).
    let configs: Vec<(u64, u64)> = if smoke {
        vec![(25, 25), (100, 100), (400, 400)]
    } else {
        table2_configs().to_vec()
    };
    let reps = if smoke { 2 } else { 3 };

    println!(
        "{:>5} {:>5} {:>8} | {:>13} {:>13} | {:>8} | {:>9}",
        "|S|", "|Q|", "|R|", "tuple tup/s", "batch tup/s", "speedup", "identical"
    );
    println!("{}", "-".repeat(78));

    let mut rows = Vec::new();
    for (i, (s, q)) in configs.iter().copied().enumerate() {
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..Default::default()
        }
        .generate(0xBA7C4 + i as u64);
        let tuples = w.dividend.cardinality();
        let storage = StorageManager::shared(StorageConfig::large());

        // One untimed warmup per arm, so the first rep is not charged
        // for faulting in the workload and the allocator's arenas.
        run_arm(&w, &storage, ExecMode::Tuple);
        run_arm(&w, &storage, ExecMode::Batch);

        let mut best_t: Option<Arm> = None;
        let mut best_b: Option<Arm> = None;
        for _ in 0..reps {
            let t = run_arm(&w, &storage, ExecMode::Tuple);
            let b = run_arm(&w, &storage, ExecMode::Batch);
            // Both arms run the in-memory operator, whose output order is
            // identical across paths: byte-identical, order included.
            assert_eq!(
                t.quotient, b.quotient,
                "quotients differ at |S|={s} |Q|={q}: the batch path must \
                 be byte-identical to the tuple path"
            );
            if best_t.as_ref().is_none_or(|x| t.elapsed_ms < x.elapsed_ms) {
                best_t = Some(t);
            }
            if best_b.as_ref().is_none_or(|x| b.elapsed_ms < x.elapsed_ms) {
                best_b = Some(b);
            }
        }
        let row = Row {
            divisor_size: s,
            quotient_size: q,
            dividend_tuples: tuples,
            tuple: best_t.expect("reps >= 1"),
            batch: best_b.expect("reps >= 1"),
        };
        println!(
            "{:>5} {:>5} {:>8} | {:>13.0} {:>13.0} | {:>7.2}x | {:>9}",
            s,
            q,
            tuples,
            row.tuple.throughput(tuples),
            row.batch.throughput(tuples),
            row.speedup(),
            "yes"
        );
        rows.push(row);
    }

    // JSON out (hand-rolled; the workspace carries no serde).
    let mut json = format!("{{\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"divisor_size\": {}, \"quotient_size\": {}, \"dividend_tuples\": {}, \
             \"tuple\": {{\"throughput_tuples_per_s\": {:.1}, \"elapsed_ms\": {:.3}}}, \
             \"batch\": {{\"throughput_tuples_per_s\": {:.1}, \"elapsed_ms\": {:.3}}}, \
             \"speedup\": {:.3}, \"quotients_identical\": true}}{}\n",
            r.divisor_size,
            r.quotient_size,
            r.dividend_tuples,
            r.tuple.throughput(r.dividend_tuples),
            r.tuple.elapsed_ms,
            r.batch.throughput(r.dividend_tuples),
            r.batch.elapsed_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    let max_speedup = rows.iter().map(Row::speedup).fold(0.0f64, f64::max);
    json.push_str(&format!("  ],\n  \"max_speedup\": {max_speedup:.3}\n}}\n"));
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out} (max speedup {max_speedup:.2}x)");

    // Regression gate: on the largest cell the vectorized path must be at
    // least as fast as the tuple path it replaced as the default.
    let gate = rows
        .iter()
        .max_by_key(|r| r.dividend_tuples)
        .expect("sweep is non-empty");
    let (tt, bt) = (
        gate.tuple.throughput(gate.dividend_tuples),
        gate.batch.throughput(gate.dividend_tuples),
    );
    if bt < tt {
        eprintln!(
            "GATE FAIL: batch {bt:.0} tup/s < tuple {tt:.0} tup/s at |S|={} |Q|={}",
            gate.divisor_size, gate.quotient_size
        );
        std::process::exit(1);
    }
    println!(
        "gate: batch {bt:.0} tup/s >= tuple {tt:.0} tup/s at |S|={} |Q|={}",
        gate.divisor_size, gate.quotient_size
    );
}
