//! Section 6: hash-division on the simulated shared-nothing machine.
//!
//! Three measurements:
//! 1. scale-out: wall-clock speedup of both partitioning strategies from
//!    1 to 8 nodes,
//! 2. network traffic per strategy (divisor replication vs partitioning),
//! 3. bit-vector filtering: shipped-tuple reduction on a noisy dividend.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin parallel_sweep
//! ```

use reldiv_core::DivisionSpec;
use reldiv_parallel::{parallel_divide, ClusterConfig, Strategy};
use reldiv_storage::manager::StorageConfig;
use reldiv_workload::WorkloadSpec;

fn main() {
    // A CPU-heavy workload so threading pays: 40,000 complete groups.
    let spec = WorkloadSpec {
        divisor_size: 25,
        quotient_size: 40_000,
        noise_per_group: 5,
        ..Default::default()
    };
    let w = spec.generate(21);
    let dspec =
        DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema()).expect("spec");
    println!(
        "workload: |S|=25, 40000 complete groups + 5 noise tuples each, |R|={}",
        w.dividend.cardinality()
    );

    println!("\n-- scale-out --");
    println!(
        "{:>22} {:>6} {:>12} {:>10} {:>14} {:>12}",
        "strategy", "nodes", "elapsed ms", "speedup", "net msgs", "net tuples"
    );
    for strategy in [
        Strategy::QuotientPartitioning,
        Strategy::DivisorPartitioning,
    ] {
        let mut base_ms = None;
        for nodes in [1usize, 2, 4, 8] {
            let config = ClusterConfig {
                nodes,
                strategy,
                node_storage: StorageConfig::large(),
                ..Default::default()
            };
            let (rel, report) =
                parallel_divide(&w.dividend, &w.divisor, &dspec, &config).expect("run");
            assert_eq!(rel.cardinality(), 40_000, "wrong quotient");
            let ms = report.elapsed.as_secs_f64() * 1000.0;
            let base = *base_ms.get_or_insert(ms);
            println!(
                "{:>22} {:>6} {:>12.1} {:>9.2}x {:>14} {:>12}",
                format!("{strategy:?}"),
                nodes,
                ms,
                base / ms,
                report.network.messages,
                report.network.tuples
            );
        }
    }

    println!("\n-- bit-vector filtering (divisor partitioning, 4 nodes) --");
    println!(
        "{:>14} {:>12} {:>14} {:>12} {:>10}",
        "filter bits", "net tuples", "net bytes", "filtered", "fill"
    );
    for bits in [None, Some(1 << 10), Some(1 << 14), Some(1 << 20)] {
        let config = ClusterConfig {
            nodes: 4,
            strategy: Strategy::DivisorPartitioning,
            bit_vector_bits: bits,
            node_storage: StorageConfig::large(),
            ..Default::default()
        };
        let (rel, report) = parallel_divide(&w.dividend, &w.divisor, &dspec, &config).expect("run");
        assert_eq!(
            rel.cardinality(),
            40_000,
            "filtering must not change the answer"
        );
        println!(
            "{:>14} {:>12} {:>14} {:>12} {:>10}",
            bits.map_or("none".to_string(), |b| b.to_string()),
            report.network.tuples,
            report.network.bytes,
            report.filtered_tuples,
            report
                .filter_fill_ratio
                .map_or("-".to_string(), |r| format!("{r:.4}")),
        );
    }
    println!(
        "\nnoise tuples are 5/30 of the dividend; a sparse filter drops nearly all \
         of them before they are shipped (the paper's Babb-style bit vector filter)."
    );
}
