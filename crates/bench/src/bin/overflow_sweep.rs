//! Hash-table overflow behaviour (Section 3.4): cost of hash-division as
//! the work-memory budget shrinks below the quotient-table size, for both
//! partitioning strategies and a range of cluster counts.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin overflow_sweep
//! ```

use std::time::Instant;

use reldiv_core::api::{divide, DivisionConfig, OverflowPolicy};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_rel::counters;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{IoCostParams, StorageManager};
use reldiv_workload::WorkloadSpec;

fn run(
    w: &reldiv_workload::Workload,
    work_memory: usize,
    policy: OverflowPolicy,
) -> Option<(f64, f64)> {
    let storage = StorageManager::shared(StorageConfig {
        work_memory_bytes: work_memory,
        ..StorageConfig::paper()
    });
    let spec =
        DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema()).expect("spec");
    let d = reldiv_core::api::load_source(&storage, &w.dividend).expect("load");
    let s = reldiv_core::api::load_source(&storage, &w.divisor).expect("load");
    storage.borrow_mut().evict_all().expect("cold start");
    storage.borrow_mut().reset_stats();
    counters::reset();
    let start = Instant::now();
    let result = divide(
        &storage,
        &d,
        &s,
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &DivisionConfig {
            assume_unique: true,
            overflow: policy,
            ..Default::default()
        },
    );
    let cpu_ms = start.elapsed().as_secs_f64() * 1000.0;
    match result {
        Ok(rel) => {
            assert_eq!(
                rel.cardinality(),
                w.expected_quotient.len(),
                "wrong quotient!"
            );
            let io_ms = storage.borrow().io_cost_ms(&IoCostParams::paper());
            Some((cpu_ms + io_ms, io_ms))
        }
        Err(e) if e.is_memory_exhausted() => None,
        Err(e) => panic!("unexpected error: {e}"),
    }
}

fn main() {
    // 20,000 quotient candidates x 25 divisor tuples: the quotient table
    // wants ~ 20k * (chain + tuple + 8B bitmap + bucket) ≈ 1.5 MB.
    let spec = WorkloadSpec {
        divisor_size: 25,
        quotient_size: 20_000,
        ..Default::default()
    };
    let w = spec.generate(123);
    println!(
        "workload: |S|=25, |Q|=20000, |R|={} (quotient table needs ~1.5 MB)",
        w.dividend.cardinality()
    );
    println!(
        "{:>10} | {:>12} {:>14} {:>14} {:>14} {:>14}",
        "memory KB", "in-memory", "quotient k=4", "quotient k=16", "divisor k=4", "divisor k=16"
    );
    println!("{}", "-".repeat(90));
    for kb in [4096usize, 1024, 512, 256, 128, 64] {
        let mem = kb * 1024;
        let cells: Vec<Option<(f64, f64)>> = vec![
            run(&w, mem, OverflowPolicy::Fail),
            run(&w, mem, OverflowPolicy::QuotientPartition { partitions: 4 }),
            run(
                &w,
                mem,
                OverflowPolicy::QuotientPartition { partitions: 16 },
            ),
            run(&w, mem, OverflowPolicy::DivisorPartition { partitions: 4 }),
            run(&w, mem, OverflowPolicy::DivisorPartition { partitions: 16 }),
        ];
        print!("{kb:>10} |");
        for c in cells {
            match c {
                Some((total, _)) => print!(" {total:>14.0}"),
                None => print!(" {:>14}", "overflow"),
            }
        }
        println!();
    }
    println!(
        "\n'overflow' = the strategy's resident tables do not fit the budget \
         (in-memory needs the full quotient table; quotient partitioning needs \
         the divisor table plus 1/k of the quotient table)."
    );
    println!(
        "Auto policy picks in-memory when it fits and doubles quotient clusters \
         otherwise; this sweep shows the costs it chooses between."
    );
}
