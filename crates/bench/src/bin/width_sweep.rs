//! Record-width ablation — the dimension the paper could not afford.
//!
//! Section 5.1: "Unfortunately, we could not use very much disk space, so
//! we had to restrict our record sizes to 8 bytes for the divisor and the
//! quotient, and to 16 bytes for the dividend." This sweep lifts that
//! restriction: the quotient key grows from 16 bytes to 1 KB while the
//! tuple counts stay fixed, so per-tuple CPU is constant and the I/O term
//! scales with the record width — separating the algorithms' CPU
//! behaviour from their I/O behaviour.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin width_sweep
//! ```

use reldiv_bench::try_run_division_experiment;
use reldiv_core::api::DivisionConfig;
use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_workload::wide_exact_product;

fn main() {
    let algorithms = [
        Algorithm::Naive,
        Algorithm::SortAggregation { join: true },
        Algorithm::HashAggregation { join: true },
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
    ];
    let (s, q) = (50u64, 200u64); // |R| = 10,000 tuples at every width
    println!(
        "(|S|={s}, |Q|={q}, |R|={}; total ms = measured CPU + modeled I/O)",
        s * q
    );
    println!(
        "{:>10} {:>12} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "width B", "dividend KB", "Naive", "SortAgg+J", "HashAgg+J", "HashDiv", "io(HashDiv)"
    );
    println!("{}", "-".repeat(92));
    let config = DivisionConfig {
        assume_unique: true,
        ..Default::default()
    };
    for width in [16usize, 64, 256, 1024] {
        let (dividend, divisor) = wide_exact_product(s, q, width, 5);
        let dividend_kb = dividend.cardinality() * dividend.schema().record_width() / 1024;
        print!("{width:>10} {dividend_kb:>12} |");
        let mut hd_io = 0.0;
        for algorithm in algorithms {
            match try_run_division_experiment(&dividend, &divisor, algorithm, &config) {
                Ok(m) => {
                    assert_eq!(
                        m.quotient_cardinality, q,
                        "{algorithm:?} wrong at width {width}"
                    );
                    if matches!(algorithm, Algorithm::HashDivision { .. }) {
                        hd_io = m.io_ms;
                    }
                    print!(" {:>10.0}", m.total_ms());
                }
                Err(e) if e.is_memory_exhausted() => print!(" {:>10}", "overflow"),
                Err(e) => panic!("{algorithm:?}: {e}"),
            }
        }
        println!(" {hd_io:>10.0}");
    }
    println!(
        "\nTuple counts are constant, so the hash algorithms' probe work is flat and \
         their totals grow with the I/O term. The sort-based plans re-write the \
         widened records in every run and merge pass, so they grow several times \
         faster. At width 1024 even 200 quotient keys outgrow the 100 KB pool: \
         hash-division's Auto policy switches to quotient partitioning (spool + \
         re-read, visible in its I/O column) — and still finishes first."
    );
}
