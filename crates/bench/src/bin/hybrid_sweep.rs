//! Adaptive hybrid vs. the static overflow ladder across memory budgets.
//!
//! For each per-query budget the sweep runs the same division twice: once
//! with `OverflowPolicy::Adaptive` (incremental largest-victim spilling)
//! and once emulating the pre-adaptive `Auto` ladder — divisor-partitioned
//! rungs doubling 2..=256, then combined rungs 4..=256 — accumulating the
//! elapsed time and spooled bytes of every abandoned rung, exactly as the
//! static policy paid for them. Both arms are verified against the
//! workload's brute-force quotient.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin hybrid_sweep -- [--smoke] [--out BENCH_hybrid.json]
//! ```
//!
//! Exits non-zero if the adaptive arm's throughput drops below the static
//! ladder's at the 256 KB budget — the regression gate for the adaptive
//! rung being a strict improvement where the ladder historically thrashed.

use std::time::Instant;

use reldiv_core::api::{divide_with_report, DivisionConfig, OverflowPolicy, Source};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::{Workload, WorkloadSpec};

/// One measured arm at one budget.
struct Arm {
    elapsed_ms: f64,
    spilled_bytes: u64,
    retries: u32,
    final_phase: String,
}

impl Arm {
    fn throughput(&self, tuples: usize) -> f64 {
        tuples as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

type AttemptResult = Result<(usize, reldiv_core::DegradationReport), reldiv_exec::ExecError>;

/// Runs one budgeted division. The second return is the bytes written to
/// storage during the attempt — the inputs are memory-resident sources,
/// so every write is spill traffic, which is how an *abandoned* rung's
/// spools (no report survives the error) are still charged to the ladder.
fn attempt(w: &Workload, budget: usize, policy: OverflowPolicy) -> (AttemptResult, u64) {
    let config = StorageConfig::large();
    let page = config.data_page_size as u64;
    let storage = StorageManager::shared(config);
    let spec = DivisionSpec::trailing_divisor(w.dividend.schema(), w.divisor.schema())
        .expect("workload schemas divide");
    let config = DivisionConfig {
        overflow: policy,
        mem_budget: Some(budget),
        ..DivisionConfig::default()
    };
    let result = divide_with_report(
        &storage,
        &Source::from_relation(&w.dividend),
        &Source::from_relation(&w.divisor),
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &config,
    )
    .map(|(rel, report)| (rel.cardinality(), report));
    let written = storage.borrow().io_stats().writes * page;
    (result, written)
}

/// The adaptive arm: one run, one policy.
fn run_adaptive(w: &Workload, budget: usize) -> Option<Arm> {
    let start = Instant::now();
    match attempt(w, budget, OverflowPolicy::Adaptive { fanout: 16 }).0 {
        Ok((card, report)) => {
            assert_eq!(card, w.expected_quotient.len(), "adaptive: wrong quotient");
            Some(Arm {
                elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
                spilled_bytes: report.spill_bytes + report.respool_bytes,
                retries: report.retries,
                final_phase: report.phases.last().cloned().unwrap_or_default(),
            })
        }
        Err(e) if e.is_memory_exhausted() || e.is_recursion_limit() => None,
        Err(e) => panic!("adaptive: unexpected error: {e}"),
    }
}

/// The static arm: the pre-adaptive `Auto` ladder, paying for every
/// abandoned rung (its spooled clusters included) before the one that
/// fits.
fn run_static(w: &Workload, budget: usize) -> Option<Arm> {
    let mut ladder: Vec<OverflowPolicy> = Vec::new();
    let mut k = 2usize;
    while k <= 256 {
        ladder.push(OverflowPolicy::DivisorPartition { partitions: k });
        k *= 2;
    }
    let mut k = 4usize;
    while k <= 256 {
        ladder.push(OverflowPolicy::CombinedPartition {
            divisor_partitions: k,
            quotient_partitions: k,
        });
        k *= 2;
    }

    let start = Instant::now();
    let mut spilled = 0u64;
    let mut retries = 0u32;
    for policy in ladder {
        let (result, written) = attempt(w, budget, policy);
        match result {
            Ok((card, report)) => {
                assert_eq!(card, w.expected_quotient.len(), "static: wrong quotient");
                return Some(Arm {
                    elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
                    spilled_bytes: spilled + report.spill_bytes + report.respool_bytes,
                    retries,
                    final_phase: report.phases.last().cloned().unwrap_or_default(),
                });
            }
            Err(e) if e.is_memory_exhausted() => {
                // An abandoned rung still wrote its clusters before the
                // table overflowed; the ladder pays for them again on the
                // next rung.
                retries += 1;
                spilled += written;
            }
            Err(e) => panic!("static: unexpected error: {e}"),
        }
    }
    None
}

struct Row {
    budget: usize,
    adaptive: Option<Arm>,
    static_ladder: Option<Arm>,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_hybrid.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // A quotient table several times the mid-sweep budgets, so the static
    // ladder has to climb while the adaptive rung spills incrementally.
    let (q, reps) = if smoke { (4_000, 2) } else { (20_000, 3) };
    let spec = WorkloadSpec {
        divisor_size: 25,
        quotient_size: q,
        ..Default::default()
    };
    let w = spec.generate(0x5EED_4D1F);
    let tuples = w.dividend.cardinality();
    println!("workload: |S|=25, |Q|={q}, |R|={tuples}; best of {reps} reps per cell");

    let budgets: &[usize] = if smoke {
        &[64 << 10, 256 << 10, 1 << 20]
    } else {
        &[16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20]
    };

    println!(
        "{:>10} | {:>12} {:>12} {:>10} | {:>12} {:>12} {:>8} | {:>8}",
        "budget KB",
        "adapt tup/s",
        "spill B",
        "phase",
        "static tup/s",
        "spill B",
        "rungs",
        "speedup"
    );
    println!("{}", "-".repeat(108));

    let mut rows = Vec::new();
    for &budget in budgets {
        let mut best_a: Option<Arm> = None;
        let mut best_s: Option<Arm> = None;
        for _ in 0..reps {
            if let Some(a) = run_adaptive(&w, budget) {
                if best_a.as_ref().is_none_or(|b| a.elapsed_ms < b.elapsed_ms) {
                    best_a = Some(a);
                }
            }
            if let Some(s) = run_static(&w, budget) {
                if best_s.as_ref().is_none_or(|b| s.elapsed_ms < b.elapsed_ms) {
                    best_s = Some(s);
                }
            }
        }
        let fmt = |arm: &Option<Arm>| match arm {
            Some(a) => format!(
                "{:>12.0} {:>12} {:>10}",
                a.throughput(tuples),
                a.spilled_bytes,
                a.final_phase
                    .split_whitespace()
                    .next()
                    .unwrap_or("?")
                    .chars()
                    .take(10)
                    .collect::<String>()
            ),
            None => format!("{:>12} {:>12} {:>10}", "overflow", "-", "-"),
        };
        let speedup = match (&best_a, &best_s) {
            (Some(a), Some(s)) => format!("{:>7.2}x", s.elapsed_ms / a.elapsed_ms),
            _ => format!("{:>8}", "-"),
        };
        println!(
            "{:>10} | {} | {:>12} {:>12} {:>8} | {}",
            budget >> 10,
            fmt(&best_a),
            best_s.as_ref().map_or_else(
                || "overflow".into(),
                |s| format!("{:.0}", s.throughput(tuples))
            ),
            best_s
                .as_ref()
                .map_or_else(|| "-".into(), |s| s.spilled_bytes.to_string()),
            best_s
                .as_ref()
                .map_or_else(|| "-".into(), |s| (s.retries + 1).to_string()),
            speedup
        );
        rows.push(Row {
            budget,
            adaptive: best_a,
            static_ladder: best_s,
        });
    }

    // JSON out.
    let arm_json = |arm: &Option<Arm>| {
        match arm {
        Some(a) => format!(
            "{{\"throughput_tuples_per_s\": {:.1}, \"elapsed_ms\": {:.3}, \"spilled_bytes\": {}, \"retries\": {}, \"final_phase\": \"{}\"}}",
            a.throughput(tuples),
            a.elapsed_ms,
            a.spilled_bytes,
            a.retries,
            a.final_phase
        ),
        None => "null".into(),
    }
    };
    let mut json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"divisor_size\": 25,\n  \"quotient_size\": {q},\n  \"dividend_tuples\": {tuples},\n  \"reps\": {reps},\n  \"budgets\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget_bytes\": {}, \"adaptive\": {}, \"static_ladder\": {}}}{}\n",
            r.budget,
            arm_json(&r.adaptive),
            arm_json(&r.static_ladder),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out}");

    // Regression gate: at the 256 KB budget the adaptive rung must be at
    // least as fast as the ladder it replaced at the top of `Auto`.
    let gate = rows
        .iter()
        .find(|r| r.budget == 256 << 10)
        .expect("sweep includes the 256 KB gate budget");
    match (&gate.adaptive, &gate.static_ladder) {
        (Some(a), Some(s)) => {
            let (at, st) = (a.throughput(tuples), s.throughput(tuples));
            if at < st {
                eprintln!(
                    "GATE FAIL: adaptive {at:.0} tup/s < static ladder {st:.0} tup/s at 256 KB"
                );
                std::process::exit(1);
            }
            println!("gate: adaptive {at:.0} tup/s >= static ladder {st:.0} tup/s at 256 KB");
        }
        (None, _) => {
            eprintln!("GATE FAIL: adaptive arm overflowed at 256 KB");
            std::process::exit(1);
        }
        (Some(_), None) => {
            println!("gate: static ladder overflowed at 256 KB; adaptive succeeded");
        }
    }
}
