//! Regenerates the paper's Table 3 (experimental I/O cost parameters) and
//! Table 4 (experimental cost of division).
//!
//! The full stack runs here: `R = Q × S` workloads are loaded into record
//! files on the simulated disk, the buffer pool is cold-started, and each
//! of the six algorithm columns executes over the paper's configuration
//! (8 KB transfers, 1 KB sort runs, 256 KB buffer, 100 KB work memory).
//! Following the paper's methodology, the reported run-time is measured
//! CPU time plus I/O cost computed from the collected disk statistics
//! priced with Table 3. A second, fully deterministic grid prices the
//! abstract-operation counters with Table 1 units instead of measuring
//! CPU.
//!
//! ```text
//! cargo run --release -p reldiv-bench --bin table4
//! ```

use reldiv_bench::{check_table4_shape, paper_sizes, render_grid, run_table4, Measurement};
use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_storage::IoCostParams;

fn main() {
    let p = IoCostParams::paper();
    println!("Table 3. Experimental I/O cost parameters.");
    let rows = [
        (p.seek_ms, "Physical seek on device"),
        (p.latency_ms, "Rotational latency per transfer"),
        (p.per_kb_ms, "Transfer time per KByte"),
        (p.cpu_per_transfer_ms, "CPU cost per transfer"),
    ];
    println!("{:>6}  Cost", "ms");
    for (ms, description) in rows {
        println!("{ms:>6}  {description}");
    }
    println!();

    eprintln!("running 9 configurations x 6 algorithms ...");
    let measurements = run_table4(&paper_sizes(), 0xD117DE);

    println!(
        "{}",
        render_grid(
            "Table 4a. Experimental cost of division (measured CPU + modeled I/O, ms).",
            &measurements,
            Measurement::total_ms,
        )
    );
    println!(
        "{}",
        render_grid(
            "Table 4b. Deterministic variant (Table-1-priced CPU + modeled I/O, ms).",
            &measurements,
            Measurement::total_modeled_ms,
        )
    );
    println!(
        "{}",
        render_grid("I/O cost alone (ms).", &measurements, |m| m.io_ms)
    );

    // Section 5.2's headline observations, derived from this run.
    let get = |s: u64, q: u64, a: Algorithm| {
        measurements
            .iter()
            .find(|m| m.divisor_size == s && m.quotient_size == q && m.algorithm == a)
            .expect("grid is complete")
    };
    let hd = Algorithm::HashDivision {
        mode: HashDivisionMode::Standard,
    };
    println!("Section 5.2 observations on this run:");
    {
        let fastest = Algorithm::table_columns()
            .iter()
            .map(|&a| get(25, 25, a).total_ms())
            .fold(f64::INFINITY, f64::min);
        let slowest = Algorithm::table_columns()
            .iter()
            .map(|&a| get(25, 25, a).total_ms())
            .fold(0.0, f64::max);
        println!(
            "  smallest config (|R|=625): slowest/fastest = {:.1}x (paper: ~3x, 1288 vs 428 ms)",
            slowest / fastest
        );
        // On modern hardware the measured CPU of 625 tuples is ~0 and the
        // 4a spread collapses; the deterministic 4b variant (Table-1 CPU
        // prices, calibrated to 1988 hardware) recovers the paper's gap.
        let fastest_b = Algorithm::table_columns()
            .iter()
            .map(|&a| get(25, 25, a).total_modeled_ms())
            .fold(f64::INFINITY, f64::min);
        let slowest_b = Algorithm::table_columns()
            .iter()
            .map(|&a| get(25, 25, a).total_modeled_ms())
            .fold(0.0, f64::max);
        println!(
            "  smallest config, deterministic variant: slowest/fastest = {:.1}x",
            slowest_b / fastest_b
        );
    }
    {
        let hd_t = get(400, 400, hd).total_ms();
        let ha = get(400, 400, Algorithm::HashAggregation { join: false }).total_ms();
        let haj = get(400, 400, Algorithm::HashAggregation { join: true }).total_ms();
        let saj = get(400, 400, Algorithm::SortAggregation { join: true }).total_ms();
        let sa = get(400, 400, Algorithm::SortAggregation { join: false }).total_ms();
        println!(
            "  largest config: hash-div / hash-agg = {:.2} (paper: ~1.1); \
             hash-div / hash-agg-with-join = {:.2} (<1)",
            hd_t / ha,
            hd_t / haj
        );
        println!(
            "  sort-agg with join / without = {:.2} (paper: 490765/190745 = 2.57)",
            saj / sa
        );
    }

    let violations = check_table4_shape(&measurements, Measurement::total_ms);
    if violations.is_empty() {
        println!("\nAll Section 5.2 shape claims hold for this run.");
    } else {
        println!("\nShape violations ({}):", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
