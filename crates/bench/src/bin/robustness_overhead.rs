//! `robustness-overhead` — prices the fault-free cost of the robustness
//! machinery (PR 2's acceptance gate: **< 5 % on the Table 4 workloads**).
//!
//! Two configurations of every Table 4 cell (nine `(|S|, |Q|)` sizes ×
//! six algorithm columns):
//!
//! * **baseline** — checksum verification off, no cancel token: the
//!   storage stack as the seed benchmarked it;
//! * **robust** — per-page checksum verification on every read plus a
//!   live (far-future) deadline token checked on the cooperative
//!   cancellation stride: the stack as the hardened service runs it.
//!
//! Each cell runs `--reps` times and keeps the *minimum* measured CPU
//! (noise only ever inflates a run), prices I/O with the paper's Table 3
//! parameters, and writes a JSON report to `--out`.
//!
//! ```text
//! robustness-overhead [--reps N] [--seed N] [--out PATH]
//! ```

use std::time::Duration;

use reldiv_bench::{paper_sizes, try_run_division_experiment_checked, Measurement};
use reldiv_core::api::DivisionConfig;
use reldiv_core::Algorithm;
use reldiv_exec::CancelToken;
use reldiv_workload::WorkloadSpec;

struct Cell {
    divisor_size: u64,
    quotient_size: u64,
    algorithm: Algorithm,
    baseline_ms: f64,
    robust_ms: f64,
}

impl Cell {
    fn overhead_pct(&self) -> f64 {
        if self.baseline_ms <= 0.0 {
            0.0
        } else {
            (self.robust_ms - self.baseline_ms) / self.baseline_ms * 100.0
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: robustness-overhead [--reps N] [--seed N] [--out PATH]\n\
         defaults: --reps 3 --seed 42 --out BENCH_robustness.json"
    );
    std::process::exit(2);
}

fn best_of(
    reps: u32,
    dividend: &reldiv_rel::Relation,
    divisor: &reldiv_rel::Relation,
    algorithm: Algorithm,
    config: &DivisionConfig,
    verify_checksums: bool,
) -> Option<Measurement> {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = try_run_division_experiment_checked(
            dividend,
            divisor,
            algorithm,
            config,
            verify_checksums,
        )
        .ok()?;
        match &best {
            Some(b) if b.cpu_ms_measured <= m.cpu_ms_measured => {}
            _ => best = Some(m),
        }
    }
    best
}

fn main() {
    let mut reps: u32 = 3;
    let mut seed: u64 = 42;
    let mut out = "BENCH_robustness.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match arg.as_str() {
            "--reps" => reps = value("--reps").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => out = value("--out"),
            _ => usage(),
        }
    }
    fn usage_for(flag: &str) -> String {
        eprintln!("missing value for {flag}");
        usage()
    }

    let baseline_config = DivisionConfig {
        assume_unique: true,
        ..DivisionConfig::default()
    };
    let robust_config = DivisionConfig {
        assume_unique: true,
        // A live deadline: every cancellation checkpoint does the real
        // clock comparison, none ever fires.
        cancel: CancelToken::after(Duration::from_secs(3600)),
        ..DivisionConfig::default()
    };

    let mut cells: Vec<Cell> = Vec::new();
    for (s, q) in paper_sizes() {
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..WorkloadSpec::default()
        }
        .generate(seed ^ (s << 32) ^ q);
        for algorithm in Algorithm::table_columns() {
            let baseline = best_of(
                reps,
                &w.dividend,
                &w.divisor,
                algorithm,
                &baseline_config,
                false,
            );
            let robust = best_of(
                reps,
                &w.dividend,
                &w.divisor,
                algorithm,
                &robust_config,
                true,
            );
            let (Some(baseline), Some(robust)) = (baseline, robust) else {
                // Aggregation plans without overflow handling can exhaust
                // the paper's work memory on the big cells; skip the cell
                // in both configurations or neither.
                eprintln!("skip |S|={s} |Q|={q} {}", algorithm.label());
                continue;
            };
            let cell = Cell {
                divisor_size: s,
                quotient_size: q,
                algorithm,
                baseline_ms: baseline.cpu_ms_measured + baseline.io_ms,
                robust_ms: robust.cpu_ms_measured + robust.io_ms,
            };
            println!(
                "|S|={s:>4} |Q|={q:>4} {:<22} baseline {:>9.3} ms  robust {:>9.3} ms  overhead {:>+6.2} %",
                algorithm.label(),
                cell.baseline_ms,
                cell.robust_ms,
                cell.overhead_pct()
            );
            cells.push(cell);
        }
    }

    let mean_overhead =
        cells.iter().map(Cell::overhead_pct).sum::<f64>() / cells.len().max(1) as f64;
    let baseline_total: f64 = cells.iter().map(|c| c.baseline_ms).sum();
    let robust_total: f64 = cells.iter().map(|c| c.robust_ms).sum();
    let aggregate_overhead = (robust_total - baseline_total) / baseline_total * 100.0;
    println!(
        "\n{} cells: mean per-cell overhead {mean_overhead:+.2} %, aggregate {aggregate_overhead:+.2} % (gate: < 5 %)",
        cells.len()
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"reps\": {reps},\n  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"mean_overhead_pct\": {mean_overhead:.4},\n  \"aggregate_overhead_pct\": {aggregate_overhead:.4},\n"
    ));
    json.push_str("  \"gate_pct\": 5.0,\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"divisor_size\": {}, \"quotient_size\": {}, \"algorithm\": \"{}\", \
             \"baseline_ms\": {:.4}, \"robust_ms\": {:.4}, \"overhead_pct\": {:.4}}}{}\n",
            c.divisor_size,
            c.quotient_size,
            c.algorithm.label(),
            c.baseline_ms,
            c.robust_ms,
            c.overhead_pct(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if aggregate_overhead >= 5.0 {
        eprintln!("FAIL: aggregate fault-free overhead {aggregate_overhead:.2} % >= 5 %");
        std::process::exit(1);
    }
}
