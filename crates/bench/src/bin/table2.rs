//! Regenerates the paper's Table 1 (cost units) and Table 2 (analytical
//! cost of division), cross-checking every cell against the printed paper
//! values.
//!
//! ```text
//! cargo run -p reldiv-bench --bin table2
//! ```

use reldiv_costmodel::table2::{paper_table2, table2_row};
use reldiv_costmodel::CostUnits;

fn main() {
    let u = CostUnits::paper();
    println!("Table 1. Cost Units.");
    let rows = [
        ("RIO", u.rio, "random I/O, one page from or to disk"),
        ("SIO", u.sio, "sequential I/O, one page from or to disk"),
        ("Comp", u.comp, "comparison of two tuples"),
        ("Hash", u.hash, "calculation of a hash value from a tuple"),
        ("Move", u.mv, "memory to memory copy of one page"),
        ("Bit", u.bit, "setting/clearing/scanning a bit in a bit map"),
    ];
    println!("{:<6} {:>8}  Description", "Unit", "ms");
    for (unit, ms, description) in rows {
        println!("{unit:<6} {ms:>8}  {description}");
    }
    println!();

    println!("Table 2. Analytical Cost of Division (milliseconds).");
    println!(
        "{:>5} {:>5} | {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "|S|", "|Q|", "Naive", "SortAgg", "SortAgg+J", "HashAgg", "HashAgg+J", "HashDiv"
    );
    println!("{}", "-".repeat(92));
    let mut mismatches = 0;
    for expected in paper_table2() {
        let got = table2_row(expected.divisor, expected.quotient);
        println!(
            "{:>5} {:>5} | {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
            got.divisor,
            got.quotient,
            got.naive,
            got.sort_agg,
            got.sort_agg_join,
            got.hash_agg,
            got.hash_agg_join,
            got.hash_div
        );
        if got != expected {
            mismatches += 1;
            println!("  !! differs from the paper: expected {expected:?}");
        }
    }
    println!();
    if mismatches == 0 {
        println!("All 54 cells match the paper's printed Table 2 exactly.");
    } else {
        println!("{mismatches} row(s) differ from the paper — see above.");
        std::process::exit(1);
    }
}
