//! `reldiv_plan` — run composed query plans from the command line.
//!
//! Generates the paper's university database (`Transcript(student-id,
//! course-no, grade)`, `Courses(course-no, title)`), then parses,
//! validates, and executes a plan in the `reldiv-plan` s-expression
//! language, printing the canonical plan text, every division's
//! cost-model decision, and the result. Without a plan argument it runs
//! the paper's motivating query — students who have taken all courses
//! whose title contains "database".
//!
//! ```text
//! reldiv_plan [--courses N] [--students N] [--seed N] [--limit N]
//!             [--explain] [--json] [--verify] [--print] [PLAN]
//! ```
//!
//! * `--explain` — attach a profiling sink and print the whole-plan
//!   `EXPLAIN ANALYZE` span tree.
//! * `--json` — with `--explain`, print the span tree as JSON instead.
//! * `--verify` — also evaluate the plan with the brute-force reference
//!   interpreter and fail unless the engine's answer is byte-identical.
//! * `--print` — print the canonical plan text and exit without running.

use std::process::ExitCode;

use reldiv_exec::profile::ProfileSink;
use reldiv_plan::{bind, canonical_bytes, evaluate, execute, parse, ExecOptions, MemCatalog};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;
use reldiv_workload::university::{generate, UniversitysSpec};

const MOTIVATING: &str = "(divide (on course-no) \
     (project (student-id course-no) (scan transcript)) \
     (project (course-no) \
       (filter (contains title \"database\") (scan courses))))";

fn usage() -> ! {
    eprintln!(
        "usage: reldiv_plan [--courses N] [--students N] [--seed N] [--limit N] \
         [--explain] [--json] [--verify] [--print] [PLAN]\n\
         PLAN is a reldiv-plan s-expression over the generated relations\n\
         `transcript` (student-id, course-no, grade) and `courses` (course-no, title);\n\
         it defaults to the paper's motivating query. See docs/PLANS.md."
    );
    std::process::exit(2);
}

struct Args {
    courses: u64,
    students: u64,
    seed: u64,
    limit: usize,
    explain: bool,
    json: bool,
    verify: bool,
    print: bool,
    plan: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        courses: 20,
        students: 100,
        seed: 1989,
        limit: 20,
        explain: false,
        json: false,
        verify: false,
        print: false,
        plan: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| -> u64 {
            let Some(value) = args.next() else { usage() };
            match value.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("bad value for {flag}: {value:?}");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--courses" => parsed.courses = next("--courses"),
            "--students" => parsed.students = next("--students"),
            "--seed" => parsed.seed = next("--seed"),
            "--limit" => parsed.limit = next("--limit") as usize,
            "--explain" => parsed.explain = true,
            "--json" => parsed.json = true,
            "--verify" => parsed.verify = true,
            "--print" => parsed.print = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
            text if parsed.plan.is_none() => parsed.plan = Some(text.to_owned()),
            _ => usage(),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = args.plan.as_deref().unwrap_or(MOTIVATING);

    let plan = match parse(text) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("reldiv_plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.print {
        println!("{}", plan.print());
        return ExitCode::SUCCESS;
    }

    let university = generate(
        &UniversitysSpec {
            courses: args.courses,
            students: args.students,
            ..UniversitysSpec::default()
        },
        args.seed,
    );
    let mut catalog = MemCatalog::new();
    catalog.insert("transcript", university.transcript);
    catalog.insert("courses", university.courses);

    let bound = match bind(&plan, &catalog) {
        Ok(bound) => bound,
        Err(e) => {
            eprintln!("reldiv_plan: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut opts = ExecOptions::new(StorageManager::shared(StorageConfig::paper()));
    let sink = args.explain.then(ProfileSink::new);
    opts.profile = sink.clone();
    let mut provider = catalog.clone();
    let output = match execute(&bound, &mut provider, &opts) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("reldiv_plan: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("plan:    {}", plan.print());
    println!(
        "result:  {} rows over ({})",
        output.relation.cardinality(),
        output
            .relation
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (i, choice) in output.choices.iter().enumerate() {
        println!(
            "divide {}: {} ({}) — |S|={} |Q|~{} |R|={} restricted={} unique={}",
            i + 1,
            choice.algorithm.label(),
            if choice.pinned {
                "pinned by hint"
            } else {
                "cost model"
            },
            choice.divisor_rows,
            choice.quotient_rows,
            choice.dividend_rows,
            choice.restricted,
            choice.duplicate_free,
        );
    }
    let mut rows: Vec<String> = output
        .relation
        .tuples()
        .iter()
        .map(|t| {
            let values: Vec<String> = t
                .values()
                .iter()
                .map(|v| match v {
                    reldiv_rel::Value::Int(i) => i.to_string(),
                    reldiv_rel::Value::Str(s) => format!("{s:?}"),
                })
                .collect();
            format!("({})", values.join(", "))
        })
        .collect();
    rows.sort();
    for row in rows.iter().take(args.limit) {
        println!("  {row}");
    }
    if rows.len() > args.limit {
        println!(
            "  ... {} more rows (raise --limit)",
            rows.len() - args.limit
        );
    }

    if args.verify {
        let oracle = match evaluate(&bound, &catalog) {
            Ok(relation) => relation,
            Err(e) => {
                eprintln!("reldiv_plan: reference interpreter failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if canonical_bytes(&output.relation) == canonical_bytes(&oracle) {
            println!("verify:  OK — byte-identical to the brute-force reference");
        } else {
            eprintln!(
                "verify:  MISMATCH — engine returned {} rows, reference {}",
                output.relation.cardinality(),
                oracle.cardinality()
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(sink) = sink {
        let profile = sink.finish();
        if args.json {
            println!("{}", profile.to_json());
        } else {
            println!("--- EXPLAIN ANALYZE ---\n{}", profile.render());
        }
    }
    ExitCode::SUCCESS
}
