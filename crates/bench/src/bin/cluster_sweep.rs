//! `cluster-sweep` — the distributed-division scaling curve
//! (`BENCH_cluster.json`).
//!
//! For each workload cell and node count it runs both Section 6
//! strategies through a real TCP cluster ([`LocalCluster`]: every node a
//! full storage+exec+service stack on loopback), with and without
//! bit-vector filtering, and records:
//!
//! * **cold** and **warm** query latency (the first query ships the
//!   divisor replica / repartition temps; repeats hit the coordinator's
//!   placement caches),
//! * **bytes and messages on the wire**, per variant, so the report can
//!   price the traffic the paper's Section 6 reasons about,
//! * the **bytes-shipped reduction** bit-vector filtering buys on the
//!   divisor-partitioning path, and
//! * **speedup vs node count**, normalized to the 1-node cluster (same
//!   wire stack, no parallelism) and anchored against the in-process
//!   single-node divide.
//!
//! Two robustness sections ride along:
//!
//! * **`replication_overhead`** — the fault-free price of `k = 2`
//!   replicated writes vs the `k = 1` baseline (registration latency and
//!   bytes, and the per-query cost of replicating repartition temps),
//! * **`failover`** — with `k = 2`, one node is killed and the section
//!   records the first post-kill query latency (the failover itself:
//!   reconnects, backoff, replica reads), the steady-state latency after
//!   it, and the retry counters — every reply still oracle-exact.
//!
//! Every cluster reply is verified against a brute-force oracle; any
//! mismatch fails the run.
//!
//! ```text
//! cluster-sweep [--reps N] [--seed N] [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks the grid to seconds for CI.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use reldiv_cluster::{ClusterQueryOptions, LocalCluster, RetryPolicy, Strategy};
use reldiv_rel::Tuple;
use reldiv_workload::{brute_force_divide, WorkloadSpec};

struct Args {
    reps: u32,
    seed: u64,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster-sweep [--reps N] [--seed N] [--out PATH] [--smoke]\n\
         defaults: --reps 3 --seed 1989 --out BENCH_cluster.json"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        reps: 3,
        seed: 1989,
        out: "BENCH_cluster.json".into(),
        smoke: false,
    };
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        let mut next = || -> String {
            match args.next() {
                Some(v) => v,
                None => usage(),
            }
        };
        match arg.as_str() {
            "--reps" => parsed.reps = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => parsed.seed = next().parse().unwrap_or_else(|_| usage()),
            "--out" => parsed.out = next(),
            "--smoke" => parsed.smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if parsed.reps == 0 {
        parsed.reps = 1;
    }
    parsed
}

fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

struct Variant {
    label: &'static str,
    strategy: Strategy,
    filter_bits: Option<usize>,
}

struct Row {
    nodes: usize,
    variant: &'static str,
    cold_ms: f64,
    warm_ms: f64,
    cold_bytes: u64,
    warm_bytes: u64,
    messages: u64,
    filtered_tuples: u64,
    filter_fill: Option<f64>,
}

struct CellReport {
    divisor_size: u64,
    quotient_size: u64,
    dividend_tuples: usize,
    filter_bits: usize,
    single_node_ms: f64,
    rows: Vec<Row>,
}

struct OverheadReport {
    nodes: usize,
    register_ms: [f64; 2],
    register_bytes: [u64; 2],
    query_cold_ms: [f64; 2],
    query_cold_bytes: [u64; 2],
    query_warm_ms: [f64; 2],
}

struct FailoverRow {
    variant: &'static str,
    healthy_warm_ms: f64,
    first_failover_ms: f64,
    steady_failover_ms: f64,
    failovers: u64,
    replica_retries: u64,
}

struct FailoverReport {
    nodes: usize,
    killed: usize,
    rows: Vec<FailoverRow>,
}

/// Fault-free cost of replicated writes: the same registrations and
/// divisor-partitioned queries at `k = 1` (the PR 4 baseline behavior)
/// and `k = 2`. Index 0 of each pair is `k = 1`, index 1 is `k = 2`.
fn measure_replication_overhead(nodes: usize, reps: u32, seed: u64) -> OverheadReport {
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 200,
        incomplete_groups: 50,
        incomplete_fill: 0.5,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(seed ^ 0x0E44);
    let expected = canon(&brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));
    let mut report = OverheadReport {
        nodes,
        register_ms: [0.0; 2],
        register_bytes: [0; 2],
        query_cold_ms: [0.0; 2],
        query_cold_bytes: [0; 2],
        query_warm_ms: [f64::MAX; 2],
    };
    for (slot, k) in [1usize, 2].into_iter().enumerate() {
        let cluster = LocalCluster::start(nodes).expect("start nodes");
        let mut coord = cluster.coordinator(None).expect("connect");
        coord.set_replication(k).expect("replication factor");
        let t = Instant::now();
        coord.register("r", &w.dividend, &[0]).expect("register r");
        coord.register("s", &w.divisor, &[0]).expect("register s");
        report.register_ms[slot] = t.elapsed().as_secs_f64() * 1e3;
        report.register_bytes[slot] = coord
            .link_stats()
            .iter()
            .map(|l| l.bytes_sent + l.bytes_received)
            .sum();
        let options = ClusterQueryOptions {
            strategy: Strategy::DivisorPartitioning,
            bit_vector_bits: None,
            spec: None,
            profile: false,
        };
        for rep in 0..reps.max(2) {
            let response = coord.divide("r", "s", &options).expect("divide");
            assert_eq!(
                canon(&response.tuples),
                expected,
                "replication overhead run diverged from the oracle (k={k})"
            );
            let ms = response.report.elapsed.as_secs_f64() * 1e3;
            if rep == 0 {
                report.query_cold_ms[slot] = ms;
                report.query_cold_bytes[slot] = response.report.bytes;
            } else {
                report.query_warm_ms[slot] = report.query_warm_ms[slot].min(ms);
            }
        }
    }
    report
}

/// Failover latency: with `k = 2`, kill one node and price the first
/// query that must route around it, the steady state after, and the
/// retry counters — every reply still oracle-exact.
fn measure_failover(nodes: usize, seed: u64) -> FailoverReport {
    let w = WorkloadSpec {
        divisor_size: 50,
        quotient_size: 200,
        incomplete_groups: 50,
        incomplete_fill: 0.5,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(seed ^ 0xFA11);
    let expected = canon(&brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));
    let killed = 1 % nodes;
    let mut rows = Vec::new();
    for (variant, strategy) in [
        ("quotient", Strategy::QuotientPartitioning),
        ("divisor", Strategy::DivisorPartitioning),
    ] {
        let mut cluster = LocalCluster::start(nodes).expect("start nodes");
        let mut coord = cluster
            .coordinator(Some(Duration::from_secs(30)))
            .expect("connect");
        coord.set_retry_policy(RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            ..RetryPolicy::default()
        });
        coord.set_replication(2).expect("k=2");
        coord.register("r", &w.dividend, &[0]).expect("register r");
        coord.register("s", &w.divisor, &[0]).expect("register s");
        let options = ClusterQueryOptions {
            strategy,
            bit_vector_bits: None,
            spec: None,
            profile: false,
        };
        let mut healthy_warm_ms = f64::MAX;
        for _ in 0..3 {
            let response = coord.divide("r", "s", &options).expect("healthy divide");
            assert_eq!(canon(&response.tuples), expected, "healthy {variant}");
            healthy_warm_ms = healthy_warm_ms.min(response.report.elapsed.as_secs_f64() * 1e3);
        }

        cluster.kill(killed);
        let response = coord.divide("r", "s", &options).expect("failover divide");
        assert_eq!(
            canon(&response.tuples),
            expected,
            "first failover {variant}"
        );
        let first_failover_ms = response.report.elapsed.as_secs_f64() * 1e3;
        let mut failovers = response.report.failovers;
        let mut replica_retries = response.report.replica_retries;

        let mut steady_failover_ms = f64::MAX;
        for _ in 0..3 {
            let response = coord.divide("r", "s", &options).expect("steady divide");
            assert_eq!(
                canon(&response.tuples),
                expected,
                "steady failover {variant}"
            );
            steady_failover_ms =
                steady_failover_ms.min(response.report.elapsed.as_secs_f64() * 1e3);
            failovers += response.report.failovers;
            replica_retries += response.report.replica_retries;
        }
        rows.push(FailoverRow {
            variant,
            healthy_warm_ms,
            first_failover_ms,
            steady_failover_ms,
            failovers,
            replica_retries,
        });
        eprintln!(
            "failover {variant:<9} nodes={nodes} healthy {healthy_warm_ms:8.2} ms  \
             first-after-kill {first_failover_ms:8.2} ms  steady {steady_failover_ms:8.2} ms  \
             ({failovers} failovers, {replica_retries} retries)"
        );
    }
    FailoverReport {
        nodes,
        killed,
        rows,
    }
}

fn main() {
    let args = parse_args();
    let node_counts: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let cells: &[(u64, u64)] = if args.smoke {
        &[(4, 10)]
    } else {
        // Three Table 4 cells plus one large enough that per-node
        // division work dominates the constant wire overhead — the cell
        // where the GAMMA speedup story is visible.
        &[(25, 100), (100, 100), (100, 400), (100, 1600)]
    };
    // Size the filter to the divisor: ~2-3% fill keeps false positives
    // negligible while the filter itself stays small enough to ship to
    // every node without eating its own savings.
    let bits_for = |s: u64| ((s as usize) * 40).next_power_of_two().max(1024);
    let mut reports = Vec::new();
    for &(s, q) in cells {
        let bits = bits_for(s);
        let variants = [
            Variant {
                label: "quotient",
                strategy: Strategy::QuotientPartitioning,
                filter_bits: None,
            },
            Variant {
                label: "divisor",
                strategy: Strategy::DivisorPartitioning,
                filter_bits: None,
            },
            Variant {
                label: "divisor_filtered",
                strategy: Strategy::DivisorPartitioning,
                filter_bits: Some(bits),
            },
        ];
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            incomplete_groups: q / 4,
            incomplete_fill: 0.5,
            // Noise tuples reference divisor values outside the divisor —
            // exactly what the bit-vector filter exists to keep off the
            // wire.
            noise_per_group: 20,
            ..WorkloadSpec::default()
        }
        .generate(args.seed ^ (s * 1000 + q));
        let expected = canon(&brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));

        // In-process single-node anchor: the same division with no wire.
        let mut single_node_ms = f64::MAX;
        for _ in 0..args.reps {
            let t = Instant::now();
            std::hint::black_box(brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));
            single_node_ms = single_node_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }

        let mut rows = Vec::new();
        for &nodes in node_counts {
            for variant in &variants {
                // A fresh cluster per variant: placement caches must not
                // leak between measurements.
                let cluster = LocalCluster::start(nodes).expect("start nodes");
                let mut coord = cluster.coordinator(None).expect("connect");
                coord.register("r", &w.dividend, &[0]).expect("register r");
                coord.register("s", &w.divisor, &[0]).expect("register s");
                let options = ClusterQueryOptions {
                    strategy: variant.strategy,
                    bit_vector_bits: variant.filter_bits,
                    spec: None,
                    profile: false,
                };
                let mut cold_ms = 0.0;
                let mut cold_bytes = 0;
                let mut messages = 0;
                let mut filtered_tuples = 0;
                let mut filter_fill = None;
                let mut warm_ms = f64::MAX;
                let mut warm_bytes = u64::MAX;
                for rep in 0..args.reps.max(2) {
                    let response = coord.divide("r", "s", &options).expect("divide");
                    assert_eq!(
                        canon(&response.tuples),
                        expected,
                        "cluster reply diverged from the oracle \
                         (|S|={s}, |Q|={q}, {} nodes, {})",
                        nodes,
                        variant.label
                    );
                    let ms = response.report.elapsed.as_secs_f64() * 1e3;
                    if rep == 0 {
                        cold_ms = ms;
                        cold_bytes = response.report.bytes;
                        messages = response.report.messages;
                        filtered_tuples = response.report.filtered_tuples;
                        filter_fill = response.report.filter_fill_ratio;
                    } else {
                        warm_ms = warm_ms.min(ms);
                        warm_bytes = warm_bytes.min(response.report.bytes);
                    }
                }
                rows.push(Row {
                    nodes,
                    variant: variant.label,
                    cold_ms,
                    warm_ms,
                    cold_bytes,
                    warm_bytes,
                    messages,
                    filtered_tuples,
                    filter_fill,
                });
                eprintln!(
                    "|S|={s} |Q|={q} nodes={nodes} {:<16} cold {:8.2} ms  warm {:8.2} ms  \
                     {:>9} B shipped cold ({} tuples filtered)",
                    variant.label, cold_ms, warm_ms, cold_bytes, filtered_tuples
                );
            }
        }
        reports.push(CellReport {
            divisor_size: s,
            quotient_size: q,
            dividend_tuples: w.dividend.tuples().len(),
            filter_bits: bits,
            single_node_ms,
            rows,
        });
    }

    // Robustness sections: the fault-free price of replication, and the
    // price of surviving a kill.
    let overhead_nodes = if args.smoke { 2 } else { 4 };
    let overhead = measure_replication_overhead(overhead_nodes, args.reps, args.seed);
    let failover = measure_failover(overhead_nodes, args.seed);

    // Headline numbers: filtering's bytes reduction (cold runs, every
    // node count) and the best *cold* speedup vs the 1-node cluster —
    // cold is where the parallel division work actually happens; warm
    // runs measure the placement caches, not the machine.
    let mut reductions = Vec::new();
    let mut best_speedup = (0.0f64, 0usize);
    for cell in &reports {
        for &n in node_counts {
            let plain = cell
                .rows
                .iter()
                .find(|r| r.nodes == n && r.variant == "divisor");
            let filtered = cell
                .rows
                .iter()
                .find(|r| r.nodes == n && r.variant == "divisor_filtered");
            if let (Some(p), Some(f)) = (plain, filtered) {
                if p.cold_bytes > 0 {
                    reductions.push(
                        (p.cold_bytes as f64 - f.cold_bytes as f64) / p.cold_bytes as f64 * 100.0,
                    );
                }
            }
        }
        for variant in ["quotient", "divisor"] {
            let one = cell
                .rows
                .iter()
                .find(|r| r.nodes == 1 && r.variant == variant);
            for row in cell.rows.iter().filter(|r| r.variant == variant) {
                if let Some(one) = one {
                    let speedup = one.cold_ms / row.cold_ms.max(1e-9);
                    if speedup > best_speedup.0 {
                        best_speedup = (speedup, row.nodes);
                    }
                }
            }
        }
    }
    let mean_reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    // The speedup curve is bounded by physical parallelism: N node
    // processes on fewer cores time-slice one machine, so readers need
    // the host's core count to interpret it.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_cpus\": {cpus},");
    let _ = writeln!(
        json,
        "  \"node_counts\": [{}],",
        node_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"mean_filter_bytes_reduction_pct\": {mean_reduction:.2},"
    );
    let _ = writeln!(
        json,
        "  \"best_cold_speedup\": {{\"speedup\": {:.3}, \"nodes\": {}}},",
        best_speedup.0, best_speedup.1
    );
    let write_overhead_pct = if overhead.register_bytes[0] > 0 {
        (overhead.register_bytes[1] as f64 - overhead.register_bytes[0] as f64)
            / overhead.register_bytes[0] as f64
            * 100.0
    } else {
        0.0
    };
    let _ = writeln!(json, "  \"replication_overhead\": {{");
    let _ = writeln!(json, "    \"nodes\": {},", overhead.nodes);
    let _ = writeln!(
        json,
        "    \"register_ms\": {{\"k1\": {:.4}, \"k2\": {:.4}}},",
        overhead.register_ms[0], overhead.register_ms[1]
    );
    let _ = writeln!(
        json,
        "    \"register_bytes\": {{\"k1\": {}, \"k2\": {}}},",
        overhead.register_bytes[0], overhead.register_bytes[1]
    );
    let _ = writeln!(
        json,
        "    \"write_bytes_overhead_pct\": {write_overhead_pct:.2},"
    );
    let _ = writeln!(
        json,
        "    \"divisor_query_cold_ms\": {{\"k1\": {:.4}, \"k2\": {:.4}}},",
        overhead.query_cold_ms[0], overhead.query_cold_ms[1]
    );
    let _ = writeln!(
        json,
        "    \"divisor_query_cold_bytes\": {{\"k1\": {}, \"k2\": {}}},",
        overhead.query_cold_bytes[0], overhead.query_cold_bytes[1]
    );
    let _ = writeln!(
        json,
        "    \"divisor_query_warm_ms\": {{\"k1\": {:.4}, \"k2\": {:.4}}}",
        overhead.query_warm_ms[0], overhead.query_warm_ms[1]
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"failover\": {{");
    let _ = writeln!(json, "    \"nodes\": {},", failover.nodes);
    let _ = writeln!(json, "    \"replication\": 2,");
    let _ = writeln!(json, "    \"killed_node\": {},", failover.killed);
    let _ = writeln!(json, "    \"rows\": [");
    for (i, row) in failover.rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"variant\": \"{}\", \"healthy_warm_ms\": {:.4}, \
             \"first_failover_ms\": {:.4}, \"steady_failover_ms\": {:.4}, \
             \"failovers\": {}, \"replica_retries\": {}}}",
            row.variant,
            row.healthy_warm_ms,
            row.first_failover_ms,
            row.steady_failover_ms,
            row.failovers,
            row.replica_retries
        );
        let _ = writeln!(
            json,
            "{}",
            if i + 1 < failover.rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, cell) in reports.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"divisor_size\": {},", cell.divisor_size);
        let _ = writeln!(json, "      \"quotient_size\": {},", cell.quotient_size);
        let _ = writeln!(json, "      \"dividend_tuples\": {},", cell.dividend_tuples);
        let _ = writeln!(json, "      \"filter_bits\": {},", cell.filter_bits);
        let _ = writeln!(
            json,
            "      \"single_node_ms\": {:.4},",
            cell.single_node_ms
        );
        let _ = writeln!(json, "      \"rows\": [");
        for (j, row) in cell.rows.iter().enumerate() {
            let one_node = cell
                .rows
                .iter()
                .find(|r| r.nodes == 1 && r.variant == row.variant);
            let _ = write!(
                json,
                "        {{\"nodes\": {}, \"variant\": \"{}\", \"cold_ms\": {:.4}, \
                 \"warm_ms\": {:.4}, \"cold_bytes\": {}, \"warm_bytes\": {}, \
                 \"messages\": {}, \"filtered_tuples\": {}, \"filter_fill\": {}, \
                 \"cold_speedup_vs_one_node\": {:.3}, \"warm_speedup_vs_one_node\": {:.3}}}",
                row.nodes,
                row.variant,
                row.cold_ms,
                row.warm_ms,
                row.cold_bytes,
                row.warm_bytes,
                row.messages,
                row.filtered_tuples,
                row.filter_fill
                    .map_or("null".to_string(), |f| format!("{f:.4}")),
                one_node.map_or(row.cold_ms, |r| r.cold_ms) / row.cold_ms.max(1e-9),
                one_node.map_or(row.warm_ms, |r| r.warm_ms) / row.warm_ms.max(1e-9),
            );
            let _ = writeln!(json, "{}", if j + 1 < cell.rows.len() { "," } else { "" });
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write report");
    println!(
        "cluster-sweep: wrote {} ({} cells × {} node counts × 3 variants); \
         mean filter reduction {mean_reduction:.1}% of bytes shipped, \
         best cold speedup {:.2}x at {} nodes",
        args.out,
        reports.len(),
        node_counts.len(),
        best_speedup.0,
        best_speedup.1
    );
    println!(
        "robustness: k=2 writes cost {write_overhead_pct:+.1}% bytes vs k=1; \
         first failover query {:.1} ms vs {:.1} ms healthy (divisor strategy)",
        failover.rows[1].first_failover_ms, failover.rows[1].healthy_warm_ms
    );
}
