//! `cluster-sweep` — the distributed-division scaling curve
//! (`BENCH_cluster.json`).
//!
//! For each workload cell and node count it runs both Section 6
//! strategies through a real TCP cluster ([`LocalCluster`]: every node a
//! full storage+exec+service stack on loopback), with and without
//! bit-vector filtering, and records:
//!
//! * **cold** and **warm** query latency (the first query ships the
//!   divisor replica / repartition temps; repeats hit the coordinator's
//!   placement caches),
//! * **bytes and messages on the wire**, per variant, so the report can
//!   price the traffic the paper's Section 6 reasons about,
//! * the **bytes-shipped reduction** bit-vector filtering buys on the
//!   divisor-partitioning path, and
//! * **speedup vs node count**, normalized to the 1-node cluster (same
//!   wire stack, no parallelism) and anchored against the in-process
//!   single-node divide.
//!
//! Every cluster reply is verified against a brute-force oracle; any
//! mismatch fails the run.
//!
//! ```text
//! cluster-sweep [--reps N] [--seed N] [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks the grid to seconds for CI.

use std::fmt::Write as _;
use std::time::Instant;

use reldiv_cluster::{ClusterQueryOptions, LocalCluster, Strategy};
use reldiv_rel::Tuple;
use reldiv_workload::{brute_force_divide, WorkloadSpec};

struct Args {
    reps: u32,
    seed: u64,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster-sweep [--reps N] [--seed N] [--out PATH] [--smoke]\n\
         defaults: --reps 3 --seed 1989 --out BENCH_cluster.json"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        reps: 3,
        seed: 1989,
        out: "BENCH_cluster.json".into(),
        smoke: false,
    };
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        let mut next = || -> String {
            match args.next() {
                Some(v) => v,
                None => usage(),
            }
        };
        match arg.as_str() {
            "--reps" => parsed.reps = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => parsed.seed = next().parse().unwrap_or_else(|_| usage()),
            "--out" => parsed.out = next(),
            "--smoke" => parsed.smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if parsed.reps == 0 {
        parsed.reps = 1;
    }
    parsed
}

fn canon(tuples: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

struct Variant {
    label: &'static str,
    strategy: Strategy,
    filter_bits: Option<usize>,
}

struct Row {
    nodes: usize,
    variant: &'static str,
    cold_ms: f64,
    warm_ms: f64,
    cold_bytes: u64,
    warm_bytes: u64,
    messages: u64,
    filtered_tuples: u64,
    filter_fill: Option<f64>,
}

struct CellReport {
    divisor_size: u64,
    quotient_size: u64,
    dividend_tuples: usize,
    filter_bits: usize,
    single_node_ms: f64,
    rows: Vec<Row>,
}

fn main() {
    let args = parse_args();
    let node_counts: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let cells: &[(u64, u64)] = if args.smoke {
        &[(4, 10)]
    } else {
        // Three Table 4 cells plus one large enough that per-node
        // division work dominates the constant wire overhead — the cell
        // where the GAMMA speedup story is visible.
        &[(25, 100), (100, 100), (100, 400), (100, 1600)]
    };
    // Size the filter to the divisor: ~2-3% fill keeps false positives
    // negligible while the filter itself stays small enough to ship to
    // every node without eating its own savings.
    let bits_for = |s: u64| ((s as usize) * 40).next_power_of_two().max(1024);
    let mut reports = Vec::new();
    for &(s, q) in cells {
        let bits = bits_for(s);
        let variants = [
            Variant {
                label: "quotient",
                strategy: Strategy::QuotientPartitioning,
                filter_bits: None,
            },
            Variant {
                label: "divisor",
                strategy: Strategy::DivisorPartitioning,
                filter_bits: None,
            },
            Variant {
                label: "divisor_filtered",
                strategy: Strategy::DivisorPartitioning,
                filter_bits: Some(bits),
            },
        ];
        let w = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            incomplete_groups: q / 4,
            incomplete_fill: 0.5,
            // Noise tuples reference divisor values outside the divisor —
            // exactly what the bit-vector filter exists to keep off the
            // wire.
            noise_per_group: 20,
            ..WorkloadSpec::default()
        }
        .generate(args.seed ^ (s * 1000 + q));
        let expected = canon(&brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));

        // In-process single-node anchor: the same division with no wire.
        let mut single_node_ms = f64::MAX;
        for _ in 0..args.reps {
            let t = Instant::now();
            std::hint::black_box(brute_force_divide(&w.dividend, &w.divisor, &[1], &[0]));
            single_node_ms = single_node_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }

        let mut rows = Vec::new();
        for &nodes in node_counts {
            for variant in &variants {
                // A fresh cluster per variant: placement caches must not
                // leak between measurements.
                let cluster = LocalCluster::start(nodes).expect("start nodes");
                let mut coord = cluster.coordinator(None).expect("connect");
                coord.register("r", &w.dividend, &[0]).expect("register r");
                coord.register("s", &w.divisor, &[0]).expect("register s");
                let options = ClusterQueryOptions {
                    strategy: variant.strategy,
                    bit_vector_bits: variant.filter_bits,
                    spec: None,
                    profile: false,
                };
                let mut cold_ms = 0.0;
                let mut cold_bytes = 0;
                let mut messages = 0;
                let mut filtered_tuples = 0;
                let mut filter_fill = None;
                let mut warm_ms = f64::MAX;
                let mut warm_bytes = u64::MAX;
                for rep in 0..args.reps.max(2) {
                    let response = coord.divide("r", "s", &options).expect("divide");
                    assert_eq!(
                        canon(&response.tuples),
                        expected,
                        "cluster reply diverged from the oracle \
                         (|S|={s}, |Q|={q}, {} nodes, {})",
                        nodes,
                        variant.label
                    );
                    let ms = response.report.elapsed.as_secs_f64() * 1e3;
                    if rep == 0 {
                        cold_ms = ms;
                        cold_bytes = response.report.bytes;
                        messages = response.report.messages;
                        filtered_tuples = response.report.filtered_tuples;
                        filter_fill = response.report.filter_fill_ratio;
                    } else {
                        warm_ms = warm_ms.min(ms);
                        warm_bytes = warm_bytes.min(response.report.bytes);
                    }
                }
                rows.push(Row {
                    nodes,
                    variant: variant.label,
                    cold_ms,
                    warm_ms,
                    cold_bytes,
                    warm_bytes,
                    messages,
                    filtered_tuples,
                    filter_fill,
                });
                eprintln!(
                    "|S|={s} |Q|={q} nodes={nodes} {:<16} cold {:8.2} ms  warm {:8.2} ms  \
                     {:>9} B shipped cold ({} tuples filtered)",
                    variant.label, cold_ms, warm_ms, cold_bytes, filtered_tuples
                );
            }
        }
        reports.push(CellReport {
            divisor_size: s,
            quotient_size: q,
            dividend_tuples: w.dividend.tuples().len(),
            filter_bits: bits,
            single_node_ms,
            rows,
        });
    }

    // Headline numbers: filtering's bytes reduction (cold runs, every
    // node count) and the best *cold* speedup vs the 1-node cluster —
    // cold is where the parallel division work actually happens; warm
    // runs measure the placement caches, not the machine.
    let mut reductions = Vec::new();
    let mut best_speedup = (0.0f64, 0usize);
    for cell in &reports {
        for &n in node_counts {
            let plain = cell
                .rows
                .iter()
                .find(|r| r.nodes == n && r.variant == "divisor");
            let filtered = cell
                .rows
                .iter()
                .find(|r| r.nodes == n && r.variant == "divisor_filtered");
            if let (Some(p), Some(f)) = (plain, filtered) {
                if p.cold_bytes > 0 {
                    reductions.push(
                        (p.cold_bytes as f64 - f.cold_bytes as f64) / p.cold_bytes as f64 * 100.0,
                    );
                }
            }
        }
        for variant in ["quotient", "divisor"] {
            let one = cell
                .rows
                .iter()
                .find(|r| r.nodes == 1 && r.variant == variant);
            for row in cell.rows.iter().filter(|r| r.variant == variant) {
                if let Some(one) = one {
                    let speedup = one.cold_ms / row.cold_ms.max(1e-9);
                    if speedup > best_speedup.0 {
                        best_speedup = (speedup, row.nodes);
                    }
                }
            }
        }
    }
    let mean_reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    // The speedup curve is bounded by physical parallelism: N node
    // processes on fewer cores time-slice one machine, so readers need
    // the host's core count to interpret it.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_cpus\": {cpus},");
    let _ = writeln!(
        json,
        "  \"node_counts\": [{}],",
        node_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"mean_filter_bytes_reduction_pct\": {mean_reduction:.2},"
    );
    let _ = writeln!(
        json,
        "  \"best_cold_speedup\": {{\"speedup\": {:.3}, \"nodes\": {}}},",
        best_speedup.0, best_speedup.1
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, cell) in reports.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"divisor_size\": {},", cell.divisor_size);
        let _ = writeln!(json, "      \"quotient_size\": {},", cell.quotient_size);
        let _ = writeln!(json, "      \"dividend_tuples\": {},", cell.dividend_tuples);
        let _ = writeln!(json, "      \"filter_bits\": {},", cell.filter_bits);
        let _ = writeln!(
            json,
            "      \"single_node_ms\": {:.4},",
            cell.single_node_ms
        );
        let _ = writeln!(json, "      \"rows\": [");
        for (j, row) in cell.rows.iter().enumerate() {
            let one_node = cell
                .rows
                .iter()
                .find(|r| r.nodes == 1 && r.variant == row.variant);
            let _ = write!(
                json,
                "        {{\"nodes\": {}, \"variant\": \"{}\", \"cold_ms\": {:.4}, \
                 \"warm_ms\": {:.4}, \"cold_bytes\": {}, \"warm_bytes\": {}, \
                 \"messages\": {}, \"filtered_tuples\": {}, \"filter_fill\": {}, \
                 \"cold_speedup_vs_one_node\": {:.3}, \"warm_speedup_vs_one_node\": {:.3}}}",
                row.nodes,
                row.variant,
                row.cold_ms,
                row.warm_ms,
                row.cold_bytes,
                row.warm_bytes,
                row.messages,
                row.filtered_tuples,
                row.filter_fill
                    .map_or("null".to_string(), |f| format!("{f:.4}")),
                one_node.map_or(row.cold_ms, |r| r.cold_ms) / row.cold_ms.max(1e-9),
                one_node.map_or(row.warm_ms, |r| r.warm_ms) / row.warm_ms.max(1e-9),
            );
            let _ = writeln!(json, "{}", if j + 1 < cell.rows.len() { "," } else { "" });
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write report");
    println!(
        "cluster-sweep: wrote {} ({} cells × {} node counts × 3 variants); \
         mean filter reduction {mean_reduction:.1}% of bytes shipped, \
         best cold speedup {:.2}x at {} nodes",
        args.out,
        reports.len(),
        node_counts.len(),
        best_speedup.0,
        best_speedup.1
    );
}
