//! # reldiv-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper:
//!
//! | artifact | binary | what it does |
//! |---|---|---|
//! | Table 1 & Table 2 | `table2` | prints the cost units and the analytical table, cross-checked against the paper's printed values |
//! | Table 3 & Table 4 | `table4` | runs all six algorithm columns over the nine size configurations on the simulated storage stack and prints measured-CPU + modeled-I/O and fully deterministic modeled-CPU variants |
//! | §4.6 speculation | `selectivity_sweep` | non-matching tuples and incomplete groups: where hash-division wins outright |
//! | §3.4 | `overflow_sweep` | memory-budget sweep across in-memory, quotient-partitioned, and divisor-partitioned hash-division |
//! | §6 | `parallel_sweep` | shared-nothing scale-out and bit-vector-filter traffic reduction |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! This library holds the shared experiment runner: workload loading,
//! statistics capture, and cost computation following the paper's
//! methodology (Section 5.1: CPU measured, I/O priced from file-system
//! statistics with Table 3's parameters).

use std::time::Instant;

use reldiv_core::api::{divide, DivisionConfig};
use reldiv_core::{Algorithm, DivisionSpec};
use reldiv_costmodel::units::{price_ops, CostUnits};
use reldiv_rel::counters::{self, OpSnapshot};
use reldiv_rel::Relation;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{IoCostParams, IoStats, StorageManager};
use reldiv_workload::WorkloadSpec;

/// One experimental measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// `|S|`.
    pub divisor_size: u64,
    /// `|Q|`.
    pub quotient_size: u64,
    /// `|R|` as generated.
    pub dividend_size: u64,
    /// Quotient cardinality produced.
    pub quotient_cardinality: u64,
    /// Wall-clock milliseconds of the division (the harness is
    /// single-threaded and never blocks, so this approximates the paper's
    /// getrusage CPU time).
    pub cpu_ms_measured: f64,
    /// Deterministic CPU milliseconds: the abstract-operation counters
    /// priced with Table 1 units.
    pub cpu_ms_modeled: f64,
    /// I/O milliseconds: simulated-disk statistics priced with Table 3
    /// parameters, exactly the paper's methodology.
    pub io_ms: f64,
    /// Raw I/O statistics.
    pub io: IoStats,
    /// Raw operation counters.
    pub ops: OpSnapshot,
}

impl Measurement {
    /// The paper's headline number: measured CPU plus modeled I/O.
    pub fn total_ms(&self) -> f64 {
        self.cpu_ms_measured + self.io_ms
    }

    /// Fully deterministic total: modeled CPU plus modeled I/O. Stable
    /// across machines and runs, suitable for CI comparisons.
    pub fn total_modeled_ms(&self) -> f64 {
        self.cpu_ms_modeled + self.io_ms
    }
}

/// Runs one algorithm over one workload on a fresh paper-configured
/// storage stack, capturing the paper's cost measures.
///
/// Loading the inputs into record files, flushing, and statistics resets
/// happen *before* timing starts, so the measurement covers exactly the
/// division (as the paper's did).
pub fn run_division_experiment(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: Algorithm,
    config: &DivisionConfig,
) -> Measurement {
    try_run_division_experiment(dividend, divisor, algorithm, config)
        .expect("division succeeds on this workload")
}

/// Fallible variant of [`run_division_experiment`]: algorithms without
/// overflow handling (the aggregation plans hold their tables without a
/// partitioning fallback) can legitimately exhaust the paper's 100 KB
/// work memory on large candidate populations.
pub fn try_run_division_experiment(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: Algorithm,
    config: &DivisionConfig,
) -> reldiv_core::Result<Measurement> {
    try_run_division_experiment_checked(dividend, divisor, algorithm, config, true)
}

/// [`try_run_division_experiment`] with the disks' checksum verification
/// toggled — the knob the robustness benchmark uses to price the
/// fault-free overhead of per-page checksums.
pub fn try_run_division_experiment_checked(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: Algorithm,
    config: &DivisionConfig,
    verify_checksums: bool,
) -> reldiv_core::Result<Measurement> {
    let storage = StorageManager::shared(StorageConfig::paper());
    storage.borrow_mut().set_checksums_enabled(verify_checksums);
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())
        .expect("workload schemas always divide");
    let d_src = reldiv_core::api::load_source(&storage, dividend).expect("load dividend");
    let s_src = reldiv_core::api::load_source(&storage, divisor).expect("load divisor");
    {
        // Cold start: the measured run must pay for reading its inputs
        // from disk, as the paper's runs did.
        let mut sm = storage.borrow_mut();
        sm.evict_all().expect("flush and evict loaded inputs");
        sm.reset_stats();
    }
    let scope = counters::OpScope::begin();
    let start = Instant::now();
    let quotient = divide(&storage, &d_src, &s_src, &spec, algorithm, config)?;
    let cpu_ms_measured = start.elapsed().as_secs_f64() * 1000.0;
    let ops = scope.finish();
    let io = storage.borrow().io_stats();
    let units = CostUnits::paper();
    Ok(Measurement {
        algorithm,
        divisor_size: divisor.cardinality() as u64,
        quotient_size: 0, // caller-facing field set by table drivers
        dividend_size: dividend.cardinality() as u64,
        quotient_cardinality: quotient.cardinality() as u64,
        cpu_ms_measured,
        cpu_ms_modeled: price_ops(&units, ops.comparisons, ops.hashes, ops.moves, ops.bitops),
        io_ms: IoCostParams::paper().cost_ms(&io),
        io,
        ops,
    })
}

/// Runs the full Table 4 grid: the nine `(|S|, |Q|)` configurations of
/// Section 4.6 across the six algorithm columns, on `R = Q × S`
/// workloads with `assume_unique` set (the paper restricts "our analysis
/// to duplicate free inputs").
pub fn run_table4(sizes: &[(u64, u64)], seed: u64) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &(s, q) in sizes {
        let spec = WorkloadSpec {
            divisor_size: s,
            quotient_size: q,
            ..Default::default()
        };
        let w = spec.generate(seed ^ (s << 32) ^ q);
        let config = DivisionConfig {
            assume_unique: true,
            ..Default::default()
        };
        for algorithm in Algorithm::table_columns() {
            let mut m = run_division_experiment(&w.dividend, &w.divisor, algorithm, &config);
            m.quotient_size = q;
            assert_eq!(
                m.quotient_cardinality, q,
                "{algorithm:?} |S|={s} |Q|={q}: wrong quotient"
            );
            out.push(m);
        }
    }
    out
}

/// The paper's nine size configurations.
pub fn paper_sizes() -> Vec<(u64, u64)> {
    reldiv_costmodel::table2_configs()
}

/// Renders a Table-2/Table-4 style grid: rows are `(|S|, |Q|)`, columns
/// the six algorithms, `cell` extracts the printed value.
pub fn render_grid(
    title: &str,
    measurements: &[Measurement],
    cell: impl Fn(&Measurement) -> f64,
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "{title}").unwrap();
    writeln!(
        s,
        "{:>5} {:>5} | {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "|S|", "|Q|", "Naive", "SortAgg", "SortAgg+J", "HashAgg", "HashAgg+J", "HashDiv"
    )
    .unwrap();
    writeln!(s, "{}", "-".repeat(96)).unwrap();
    let mut by_size: Vec<(u64, u64)> = measurements
        .iter()
        .map(|m| (m.divisor_size, m.quotient_size))
        .collect();
    by_size.dedup();
    for (sv, qv) in by_size {
        let row: Vec<f64> = Algorithm::table_columns()
            .iter()
            .map(|a| {
                measurements
                    .iter()
                    .find(|m| m.divisor_size == sv && m.quotient_size == qv && m.algorithm == *a)
                    .map(&cell)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        writeln!(
            s,
            "{:>5} {:>5} | {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            sv, qv, row[0], row[1], row[2], row[3], row[4], row[5]
        )
        .unwrap();
    }
    s
}

/// Checks the qualitative claims of Section 5.2 against a Table 4 run;
/// returns human-readable violations (empty = all claims hold).
pub fn check_table4_shape(
    measurements: &[Measurement],
    total: impl Fn(&Measurement) -> f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let get = |s: u64, q: u64, a: Algorithm| -> f64 {
        measurements
            .iter()
            .find(|m| m.divisor_size == s && m.quotient_size == q && m.algorithm == a)
            .map(&total)
            .expect("grid is complete")
    };
    let mut sizes: Vec<(u64, u64)> = measurements
        .iter()
        .map(|m| (m.divisor_size, m.quotient_size))
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    for (s, q) in sizes {
        let naive = get(s, q, Algorithm::Naive);
        let sort_agg = get(s, q, Algorithm::SortAggregation { join: false });
        let sort_agg_j = get(s, q, Algorithm::SortAggregation { join: true });
        let hash_agg = get(s, q, Algorithm::HashAggregation { join: false });
        let hash_agg_j = get(s, q, Algorithm::HashAggregation { join: true });
        let hash_div = get(
            s,
            q,
            Algorithm::HashDivision {
                mode: reldiv_core::HashDivisionMode::Standard,
            },
        );
        // Whether I/O dominates for this configuration: |R| of 16-byte
        // tuples against the 256 KB buffer pool. Below that, everything is
        // memory-resident and the CPU-only ratios of the analytical model
        // apply; above it, the I/O terms dominate as in Table 2.
        let io_bound = (s * q) * 16 > 256 * 1024;
        let mut claim = |ok: bool, msg: String| {
            if !ok {
                violations.push(format!("|S|={s} |Q|={q}: {msg}"));
            }
        };
        claim(
            hash_agg < sort_agg && hash_agg < naive,
            format!(
                "hash-based should beat sort-based ({hash_agg:.0} vs {sort_agg:.0}/{naive:.0})"
            ),
        );
        claim(
            hash_div < naive && hash_div < sort_agg && hash_div < sort_agg_j,
            "hash-division should beat every sort-based column".into(),
        );
        claim(
            sort_agg_j > sort_agg,
            format!("the preceding join must cost extra ({sort_agg_j:.0} vs {sort_agg:.0})"),
        );
        claim(
            hash_agg_j > hash_agg,
            format!("the preceding semi-join must cost extra ({hash_agg_j:.0} vs {hash_agg:.0})"),
        );
        // Direct division vs join+aggregation: hash-division never needs
        // the second dividend pass, so once I/O matters it wins outright;
        // in purely memory-resident configs the two do the same two
        // probes per tuple and may tie (within 20 %).
        if io_bound {
            claim(
                hash_div < hash_agg_j,
                format!(
                    "hash-division should beat hash-agg-with-join when I/O matters \
                     ({hash_div:.0} vs {hash_agg_j:.0})"
                ),
            );
            claim(
                hash_div / hash_agg < 1.35,
                format!(
                    "hash-division should be within tens of percent of plain hash \
                     aggregation (ratio {:.2})",
                    hash_div / hash_agg
                ),
            );
        } else {
            claim(
                hash_div <= hash_agg_j * 1.2,
                format!(
                    "hash-division should at worst tie hash-agg-with-join \
                     ({hash_div:.0} vs {hash_agg_j:.0})"
                ),
            );
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runner_measures_io_for_large_dividends() {
        let spec = WorkloadSpec {
            divisor_size: 100,
            quotient_size: 400,
            ..Default::default()
        };
        let w = spec.generate(1);
        let config = DivisionConfig {
            assume_unique: true,
            ..Default::default()
        };
        let m = run_division_experiment(&w.dividend, &w.divisor, Algorithm::Naive, &config);
        // 40,000 x 16 B = 640 KB dividend exceeds the 256 KB pool:
        // the sort must do real I/O.
        assert!(m.io.transfers() > 0, "{:?}", m.io);
        assert!(m.io_ms > 0.0);
        assert!(m.cpu_ms_modeled > 0.0);
        assert_eq!(m.quotient_cardinality, 400);
    }

    #[test]
    fn small_grid_preserves_the_papers_ranking() {
        // A reduced grid keeps the test quick while checking the shape
        // machinery end to end.
        let sizes = [(25, 25), (25, 100)];
        let ms = run_table4(&sizes, 99);
        assert_eq!(ms.len(), 12);
        let violations = check_table4_shape(&ms, Measurement::total_modeled_ms);
        // Only claims about configs present in the grid apply; filter.
        let relevant: Vec<&String> = violations
            .iter()
            .filter(|v| v.starts_with("|S|=25 |Q|=25") || v.starts_with("|S|=25 |Q|=100"))
            .collect();
        assert!(relevant.is_empty(), "{relevant:?}");
    }

    #[test]
    fn render_grid_mentions_all_columns() {
        let sizes = [(25, 25)];
        let ms = run_table4(&sizes, 5);
        let grid = render_grid("t", &ms, Measurement::total_modeled_ms);
        for header in ["Naive", "SortAgg+J", "HashDiv"] {
            assert!(grid.contains(header));
        }
    }
}
