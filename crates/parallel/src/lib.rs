//! # reldiv-parallel — hash-division on a shared-nothing machine
//!
//! Section 6 of the paper adapts hash-division to a GAMMA-style
//! shared-nothing multi-processor. This crate simulates that machine:
//! every node is a thread with its own storage manager and memory pool,
//! and the interconnection network is a set of accounted channels
//! ([`network`]), so the network traffic the paper reasons about is
//! measurable.
//!
//! Both partitioning strategies are implemented:
//!
//! * [`Strategy::QuotientPartitioning`] — "the divisor table must be
//!   replicated in the main memory of all participating processors. After
//!   replication, all local hash-division operators work completely
//!   independently of each other." The quotient is the concatenation of
//!   the node results.
//! * [`Strategy::DivisorPartitioning`] — both inputs are partitioned on
//!   the divisor attributes; each node's quotient cluster is tagged with
//!   its processor address and a **collection site** "divides the set of
//!   all incoming tuples over the set of processor network addresses".
//!
//! [`filter`] adds Section 6's **bit-vector filtering**: the scan site
//! drops dividend tuples that cannot match any divisor tuple before
//!   shipping them, trading a heuristic filter (false positives pass and
//! are caught later) for a large reduction in network traffic.

#![deny(missing_docs)]

pub mod filter;
pub mod network;
pub mod partition;
pub mod strategy;

use std::sync::Arc;
use std::time::{Duration, Instant};

use reldiv_core::api::{divide, DivisionConfig, Source};
use reldiv_core::hash_division::{HashDivisionMode, QuotientTable};
use reldiv_core::{Algorithm, DivisionSpec, ExecError, ProfileNode, QueryProfile, SpanKind};
use reldiv_rel::counters::{OpScope, OpSnapshot};
use reldiv_rel::{Relation, Tuple};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{MemoryPool, StorageManager};

use network::{build_links, build_result_link, Message, NetworkCounters, NetworkStats, Port};
use strategy::{distribute, CollectionSite, Transport};

pub use partition::route;
pub use strategy::{Distribution, Strategy};

/// Result alias shared with the core crate.
pub type Result<T> = reldiv_core::Result<T>;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (worker threads).
    pub nodes: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Per-node storage configuration (buffer pool, work memory). Each
    /// node runs a full local engine, including overflow handling.
    pub node_storage: StorageConfig,
    /// Dividend tuples per network message.
    pub batch_size: usize,
    /// Bits of bit-vector filter applied at the scan site before shipping
    /// dividend tuples (divisor partitioning only). `None` disables.
    pub bit_vector_bits: Option<usize>,
    /// Stream quotient tuples from the nodes as soon as their bit maps
    /// complete (Section 3.3's early-output modification; Section 6: "the
    /// collection phase can be overlapped with producing the clusters").
    /// Streaming nodes absorb dividend batches as they arrive instead of
    /// buffering their whole cluster, drawing table memory from the
    /// node's work-memory pool.
    pub streaming_nodes: bool,
    /// Number of collection sites for divisor partitioning (Section 6:
    /// "in the unlikely case that the central collection site becomes a
    /// bottleneck, it is possible to decentralize the collection step
    /// using quotient partitioning"). Each site runs the collection-phase
    /// division over a quotient-hash partition of the tagged tuples, in
    /// its own thread.
    pub collection_sites: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            strategy: Strategy::QuotientPartitioning,
            node_storage: StorageConfig::paper(),
            batch_size: 512,
            bit_vector_bits: None,
            streaming_nodes: false,
            collection_sites: 1,
        }
    }
}

/// Measurements from one parallel run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Network traffic (input distribution + result collection).
    pub network: NetworkStats,
    /// Nodes configured.
    pub nodes: usize,
    /// Nodes that received divisor tuples (divisor partitioning).
    pub participating_nodes: usize,
    /// Dividend tuples dropped at the scan site by the bit-vector filter.
    pub filtered_tuples: u64,
    /// Fill ratio of the bit-vector filter, if one was used.
    pub filter_fill_ratio: Option<f64>,
    /// Dividend tuples shipped to each node.
    pub per_node_dividend: Vec<u64>,
    /// Abstract operations performed by each node (scoped per node
    /// thread, so a node's count covers exactly its own division work).
    pub per_node_ops: Vec<OpSnapshot>,
    /// Sum of the per-node operation counts.
    pub total_ops: OpSnapshot,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl RunReport {
    /// Folds the run's measurements into an `EXPLAIN ANALYZE`-style span
    /// tree: a root span for the whole parallel division carrying the
    /// network totals and wall time, with one child per node carrying the
    /// dividend tuples shipped to it and the abstract operations it
    /// performed. Lets parallel runs share the renderer and JSON codec of
    /// single-site [`QueryProfile`]s.
    pub fn to_profile(&self) -> QueryProfile {
        let children = self
            .per_node_ops
            .iter()
            .enumerate()
            .map(|(i, &ops)| ProfileNode {
                label: format!("node {i}"),
                kind: SpanKind::Node,
                wall_micros: 0,
                tuples_in: self.per_node_dividend.get(i).copied().unwrap_or(0),
                tuples_out: 0,
                ops,
                pages_read: 0,
                pages_written: 0,
                spill_bytes: 0,
                network_bytes: 0,
                phases: Vec::new(),
                children: Vec::new(),
            })
            .collect();
        let mut phases = vec![format!(
            "{} of {} nodes participating",
            self.participating_nodes, self.nodes
        )];
        if let Some(fill) = self.filter_fill_ratio {
            phases.push(format!(
                "bit-vector filter dropped {} tuples (fill {:.2})",
                self.filtered_tuples, fill
            ));
        }
        QueryProfile {
            root: ProfileNode {
                label: format!("parallel division ({} nodes)", self.nodes),
                kind: SpanKind::Network,
                wall_micros: self.elapsed.as_micros() as u64,
                tuples_in: self.per_node_dividend.iter().sum(),
                tuples_out: 0,
                ops: self.total_ops,
                pages_read: 0,
                pages_written: 0,
                spill_bytes: 0,
                network_bytes: self.network.bytes,
                phases,
                children,
            },
        }
    }
}

/// A streaming node (Section 3.3 early output): builds the divisor table
/// from the first message, absorbs dividend batches as they arrive, and
/// ships completed quotient tuples immediately, overlapping downstream
/// collection with upstream production.
fn node_main_streaming(
    node_id: usize,
    rx: crossbeam::channel::Receiver<Message>,
    result: network::ResultPort,
    spec: DivisionSpec,
    dividend_schema: reldiv_rel::Schema,
    storage_config: StorageConfig,
) -> Result<OpSnapshot> {
    use reldiv_core::hash_division::DivisorTable;
    let scope = OpScope::begin();
    let pool = MemoryPool::new(storage_config.work_memory_bytes.max(1 << 20));
    let quotient_schema = spec.quotient_schema(&dividend_schema)?;
    let mut divisor_table: Option<DivisorTable> = None;
    let mut quotient_table: Option<QuotientTable> = None;
    let mut outbox: Vec<Tuple> = Vec::new();
    const SHIP_BATCH: usize = 256;
    loop {
        match rx.recv() {
            Ok(Message::Divisor(v)) => {
                // Step 1, once, from the replicated/partitioned fragment.
                let rel = Relation::from_tuples(spec_divisor_schema(&spec, &dividend_schema), v)
                    .map_err(ExecError::from)?;
                let mut scan: reldiv_exec::BoxedOp = Box::new(reldiv_exec::scan::MemScan::new(rel));
                let dt = DivisorTable::build(&mut scan, &pool)?;
                quotient_table = Some(QuotientTable::new(
                    &pool,
                    HashDivisionMode::EarlyOut,
                    dt.count(),
                    spec.quotient_keys.clone(),
                    quotient_schema.record_width(),
                )?);
                divisor_table = Some(dt);
            }
            Ok(Message::Dividend(v)) => {
                let dt = divisor_table
                    .as_ref()
                    .ok_or_else(|| ExecError::Plan("dividend before divisor".into()))?;
                let qt = quotient_table.as_mut().expect("built with divisor table");
                for t in v {
                    let dno = if dt.count() == 0 {
                        Some(None)
                    } else {
                        dt.lookup(&t, &spec.divisor_keys).map(Some)
                    };
                    if let Some(dno) = dno {
                        if let Some(q) = qt.absorb(&t, dno)? {
                            outbox.push(q);
                            if outbox.len() >= SHIP_BATCH {
                                result.send(node_id, std::mem::take(&mut outbox));
                            }
                        }
                    }
                }
            }
            Ok(Message::End) | Err(_) => break,
        }
    }
    if !outbox.is_empty() {
        result.send(node_id, outbox);
    }
    Ok(scope.finish())
}

/// Reconstructs the divisor schema from the spec and the dividend schema
/// (the divisor columns are the dividend's divisor-key columns, in order).
fn spec_divisor_schema(
    spec: &DivisionSpec,
    dividend_schema: &reldiv_rel::Schema,
) -> reldiv_rel::Schema {
    reldiv_rel::Schema::new(
        spec.divisor_keys
            .iter()
            .map(|&k| dividend_schema.fields()[k].clone())
            .collect(),
    )
}

/// One node's worker: receive divisor and dividend, divide locally with a
/// private engine (including local overflow handling), ship the quotient
/// cluster to the collection site.
fn node_main(
    node_id: usize,
    rx: crossbeam::channel::Receiver<Message>,
    result: network::ResultPort,
    spec: DivisionSpec,
    dividend_schema: reldiv_rel::Schema,
    divisor_schema: reldiv_rel::Schema,
    storage_config: StorageConfig,
) -> Result<OpSnapshot> {
    let scope = OpScope::begin();
    let mut divisor_tuples: Vec<Tuple> = Vec::new();
    let mut dividend_tuples: Vec<Tuple> = Vec::new();
    loop {
        match rx.recv() {
            Ok(Message::Divisor(v)) => divisor_tuples.extend(v),
            Ok(Message::Dividend(v)) => dividend_tuples.extend(v),
            Ok(Message::End) | Err(_) => break,
        }
    }
    let dividend =
        Relation::from_tuples(dividend_schema, dividend_tuples).map_err(ExecError::from)?;
    let divisor = Relation::from_tuples(divisor_schema, divisor_tuples).map_err(ExecError::from)?;
    let storage = StorageManager::shared(storage_config);
    let quotient = divide(
        &storage,
        &Source::from_relation(&dividend),
        &Source::from_relation(&divisor),
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &DivisionConfig::default(),
    )?;
    result.send(node_id, quotient.into_tuples());
    Ok(scope.finish())
}

/// The thread machine's [`Transport`]: accounted in-process channels.
/// Sends cannot fail — a hung-up receiver means the node died, and the
/// thread join below surfaces its error.
struct ChannelTransport<'a> {
    ports: &'a [Port],
}

impl Transport for ChannelTransport<'_> {
    type Error = std::convert::Infallible;

    fn ship_divisor(
        &mut self,
        node: usize,
        tuples: Vec<Tuple>,
    ) -> std::result::Result<(), Self::Error> {
        self.ports[node].send(Message::Divisor(tuples));
        Ok(())
    }

    fn ship_dividend(
        &mut self,
        node: usize,
        tuples: Vec<Tuple>,
    ) -> std::result::Result<(), Self::Error> {
        self.ports[node].send(Message::Dividend(tuples));
        Ok(())
    }

    fn end(&mut self, node: usize) -> std::result::Result<(), Self::Error> {
        self.ports[node].send(Message::End);
        Ok(())
    }
}

/// Runs `dividend ÷ divisor` across the simulated cluster.
pub fn parallel_divide(
    dividend: &Relation,
    divisor: &Relation,
    spec: &DivisionSpec,
    config: &ClusterConfig,
) -> Result<(Relation, RunReport)> {
    if config.nodes == 0 {
        return Err(ExecError::Plan("cluster needs at least one node".into()));
    }
    spec.validate(dividend.schema(), divisor.schema())?;
    let quotient_schema = spec.quotient_schema(dividend.schema())?;
    let start = Instant::now();

    let counters = Arc::new(NetworkCounters::default());
    let tuple_bytes = dividend.schema().record_width();
    let (ports, receivers) = build_links(config.nodes, tuple_bytes, &counters);
    let (result_port, result_rx) = build_result_link(quotient_schema.record_width(), &counters);

    // Spawn the nodes.
    let mut handles = Vec::with_capacity(config.nodes);
    for (node_id, rx) in receivers.into_iter().enumerate() {
        let result = result_port.clone();
        let spec = spec.clone();
        let dividend_schema = dividend.schema().clone();
        let divisor_schema = divisor.schema().clone();
        let storage_config = config.node_storage.clone();
        let streaming = config.streaming_nodes;
        handles.push(std::thread::spawn(move || {
            if streaming {
                node_main_streaming(node_id, rx, result, spec, dividend_schema, storage_config)
            } else {
                node_main(
                    node_id,
                    rx,
                    result,
                    spec,
                    dividend_schema,
                    divisor_schema,
                    storage_config,
                )
            }
        }));
    }
    drop(result_port); // collection channel closes when all nodes finish

    let n = config.nodes;
    // The scan site: the shared strategy driver over the accounted
    // channels. The TCP cluster runs the identical driver over its links,
    // so the two backends cannot drift apart.
    let mut transport = ChannelTransport { ports: &ports };
    let dist = distribute(
        &mut transport,
        Distribution {
            strategy: config.strategy,
            nodes: n,
            bit_vector_bits: config.bit_vector_bits,
        },
        spec,
        dividend.tuples(),
        divisor.tuples(),
        divisor.schema().arity(),
        config.batch_size,
    )
    .expect("channel transport is infallible");
    let participating = dist.participating.clone();

    // Collection site.
    let mut result = Relation::empty(quotient_schema.clone());
    match config.strategy {
        Strategy::QuotientPartitioning => {
            // Clusters are disjoint in the quotient attributes: concatenate.
            while let Ok((_, tuples)) = result_rx.recv() {
                for t in tuples {
                    result.push(t).map_err(ExecError::from)?;
                }
            }
        }
        Strategy::DivisorPartitioning => {
            // "The collection site divides the set of all incoming tuples
            // over the set of processor network addresses" — the shared
            // [`CollectionSite`], also used verbatim by the TCP cluster's
            // coordinator. With more than one site, the tagged tuples are
            // themselves quotient-partitioned across sites — the paper's
            // decentralized collection. (Nodes would hash-route their
            // shipments directly in a real machine, so no extra network
            // traffic is charged for the fan-out.)
            let sites = config.collection_sites.max(1);
            let qarity = quotient_schema.arity();
            if sites == 1 {
                let mut site =
                    CollectionSite::new(&quotient_schema, &participating, dist.empty_divisor)?;
                while let Ok((node, tuples)) = result_rx.recv() {
                    for t in tuples {
                        site.absorb(node, &t)?;
                    }
                }
                for t in site.finish() {
                    result.push(t).map_err(ExecError::from)?;
                }
            } else {
                // Decentralized: one collector thread per site, fed a
                // quotient-hash partition of the tagged tuples.
                let mut txs = Vec::with_capacity(sites);
                let mut collectors = Vec::with_capacity(sites);
                for _ in 0..sites {
                    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Tuple)>();
                    txs.push(tx);
                    let schema = quotient_schema.clone();
                    let participating = participating.clone();
                    let empty_divisor = dist.empty_divisor;
                    collectors.push(std::thread::spawn(move || -> Result<Vec<Tuple>> {
                        let mut site = CollectionSite::new(&schema, &participating, empty_divisor)?;
                        while let Ok((node, t)) = rx.recv() {
                            site.absorb(node, &t)?;
                        }
                        Ok(site.finish())
                    }));
                }
                let qcols: Vec<usize> = (0..qarity).collect();
                while let Ok((node, tuples)) = result_rx.recv() {
                    for t in tuples {
                        let site = (t.hash_on(&qcols) as usize) % sites;
                        let _ = txs[site].send((node, t));
                    }
                }
                drop(txs);
                for handle in collectors {
                    let partial = handle
                        .join()
                        .map_err(|_| ExecError::Plan("collection site panicked".into()))??;
                    for t in partial {
                        result.push(t).map_err(ExecError::from)?;
                    }
                }
            }
        }
    }

    // Surface node failures; collect each node's operation counts.
    let mut per_node_ops = Vec::with_capacity(handles.len());
    for handle in handles {
        per_node_ops.push(
            handle
                .join()
                .map_err(|_| ExecError::Plan("node thread panicked".into()))??,
        );
    }
    let total_ops = per_node_ops
        .iter()
        .fold(OpSnapshot::default(), |acc, ops| acc.merge(ops));

    let report = RunReport {
        network: counters.stats(),
        nodes: n,
        participating_nodes: participating.len(),
        filtered_tuples: dist.filtered_tuples,
        filter_fill_ratio: dist.filter_fill_ratio,
        per_node_dividend: dist.per_node_dividend,
        per_node_ops,
        total_ops,
        elapsed: start.elapsed(),
    };
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::{Field, Schema};
    use reldiv_rel::tuple::ints;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn workload() -> (Relation, Relation, Vec<i64>) {
        let mut rows = Vec::new();
        for s in 0..60i64 {
            for c in 0..=(s % 11) {
                rows.push([s, c]);
            }
            rows.push([s, 500 + s]); // noise, matches nothing
        }
        let expected: Vec<i64> = (0..60).filter(|s| s % 11 >= 6).collect();
        (
            transcript(&rows),
            courses(&(0..7).collect::<Vec<_>>()),
            expected,
        )
    }

    fn run(config: &ClusterConfig) -> (Vec<i64>, RunReport) {
        let (dividend, divisor, _) = workload();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (rel, report) = parallel_divide(&dividend, &divisor, &spec, config).unwrap();
        let mut sids: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        sids.sort_unstable();
        (sids, report)
    }

    #[test]
    fn quotient_partitioning_matches_serial_result() {
        let (_, _, expected) = workload();
        for nodes in [1, 2, 4, 8] {
            let config = ClusterConfig {
                nodes,
                strategy: Strategy::QuotientPartitioning,
                ..Default::default()
            };
            let (got, report) = run(&config);
            assert_eq!(got, expected, "nodes={nodes}");
            assert_eq!(report.participating_nodes, nodes);
        }
    }

    #[test]
    fn run_report_folds_into_a_profile_tree() {
        let config = ClusterConfig {
            nodes: 4,
            strategy: Strategy::QuotientPartitioning,
            ..Default::default()
        };
        let (_, report) = run(&config);
        let profile = report.to_profile();
        assert_eq!(profile.root.children.len(), 4, "one span per node");
        assert_eq!(profile.root.network_bytes, report.network.bytes);
        assert_eq!(
            profile.root.tuples_in,
            report.per_node_dividend.iter().sum::<u64>()
        );
        let child_ops = profile
            .root
            .children
            .iter()
            .fold(OpSnapshot::default(), |acc, c| acc.merge(&c.ops));
        assert_eq!(child_ops, report.total_ops, "node spans carry the ops");
        assert!(
            profile.root.phases[0].contains("4 of 4 nodes"),
            "{:?}",
            profile.root.phases
        );
        // The shared renderer understands the folded tree.
        let rendered = profile.render();
        assert!(
            rendered.contains("node 0") && rendered.contains("net="),
            "{rendered}"
        );
    }

    #[test]
    fn divisor_partitioning_matches_serial_result() {
        let (_, _, expected) = workload();
        for nodes in [1, 2, 4, 8] {
            let config = ClusterConfig {
                nodes,
                strategy: Strategy::DivisorPartitioning,
                ..Default::default()
            };
            let (got, _) = run(&config);
            assert_eq!(got, expected, "nodes={nodes}");
        }
    }

    #[test]
    fn bit_vector_filter_cuts_traffic_without_changing_the_answer() {
        let (_, _, expected) = workload();
        let base = ClusterConfig {
            nodes: 4,
            strategy: Strategy::DivisorPartitioning,
            ..Default::default()
        };
        let (got_plain, report_plain) = run(&base);
        let filtered_config = ClusterConfig {
            bit_vector_bits: Some(4096),
            ..base
        };
        let (got_filtered, report_filtered) = run(&filtered_config);
        assert_eq!(got_plain, expected);
        assert_eq!(got_filtered, expected);
        assert!(
            report_filtered.filtered_tuples > 0,
            "noise tuples must be dropped"
        );
        assert!(
            report_filtered.network.tuples < report_plain.network.tuples,
            "filtering must reduce shipped tuples: {} vs {}",
            report_filtered.network.tuples,
            report_plain.network.tuples
        );
        assert!(report_filtered.filter_fill_ratio.unwrap() < 0.5);
    }

    #[test]
    fn divisor_replication_costs_scale_with_nodes() {
        let (dividend, divisor, _) = workload();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut last = 0;
        for nodes in [1, 2, 4] {
            let config = ClusterConfig {
                nodes,
                strategy: Strategy::QuotientPartitioning,
                ..Default::default()
            };
            let (_, report) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
            assert!(
                report.network.tuples > last,
                "replication traffic grows with node count"
            );
            last = report.network.tuples;
        }
    }

    #[test]
    fn empty_divisor_is_vacuous_in_parallel() {
        let dividend = transcript(&[[1, 10], [2, 20], [1, 30]]);
        let divisor = courses(&[]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for strategy in [
            Strategy::QuotientPartitioning,
            Strategy::DivisorPartitioning,
        ] {
            let config = ClusterConfig {
                nodes: 3,
                strategy,
                ..Default::default()
            };
            let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
            let mut sids: Vec<i64> = rel
                .tuples()
                .iter()
                .map(|t| t.value(0).as_int().unwrap())
                .collect();
            sids.sort_unstable();
            assert_eq!(sids, vec![1, 2], "{strategy:?}");
        }
    }

    #[test]
    fn empty_dividend_is_empty_in_parallel() {
        let dividend = transcript(&[]);
        let divisor = courses(&[1]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for strategy in [
            Strategy::QuotientPartitioning,
            Strategy::DivisorPartitioning,
        ] {
            let config = ClusterConfig {
                nodes: 3,
                strategy,
                ..Default::default()
            };
            let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
            assert!(rel.is_empty(), "{strategy:?}");
        }
    }

    #[test]
    fn zero_nodes_is_a_plan_error() {
        let dividend = transcript(&[[1, 1]]);
        let divisor = courses(&[1]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = ClusterConfig {
            nodes: 0,
            ..Default::default()
        };
        assert!(parallel_divide(&dividend, &divisor, &spec, &config).is_err());
    }

    #[test]
    fn work_is_spread_across_nodes() {
        let (got, report) = run(&ClusterConfig {
            nodes: 4,
            strategy: Strategy::QuotientPartitioning,
            ..Default::default()
        });
        assert!(!got.is_empty());
        let busy = report.per_node_dividend.iter().filter(|&&n| n > 0).count();
        assert!(busy >= 3, "60 students should spread over >= 3 of 4 nodes");
    }
}

#[cfg(test)]
mod decentralized_tests {
    use super::*;
    use reldiv_rel::schema::{Field, Schema};
    use reldiv_rel::tuple::ints;

    fn workload() -> (Relation, Relation, Vec<i64>) {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        let mut rows = Vec::new();
        for s in 0..80i64 {
            for c in 0..=(s % 9) {
                rows.push(ints(&[s, c]));
            }
        }
        let dividend = Relation::from_tuples(schema, rows).unwrap();
        let divisor = Relation::from_tuples(
            Schema::new(vec![Field::int("cno")]),
            (0..6).map(|c| ints(&[c])).collect(),
        )
        .unwrap();
        let expected: Vec<i64> = (0..80).filter(|s| s % 9 >= 5).collect();
        (dividend, divisor, expected)
    }

    #[test]
    fn decentralized_collection_matches_central() {
        let (dividend, divisor, expected) = workload();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for sites in [1usize, 2, 3, 5] {
            let config = ClusterConfig {
                nodes: 4,
                strategy: Strategy::DivisorPartitioning,
                collection_sites: sites,
                ..Default::default()
            };
            let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
            let mut got: Vec<i64> = rel
                .tuples()
                .iter()
                .map(|t| t.value(0).as_int().unwrap())
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "sites={sites}");
        }
    }

    #[test]
    fn decentralized_collection_with_empty_divisor() {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        let dividend =
            Relation::from_tuples(schema, vec![ints(&[1, 10]), ints(&[2, 20]), ints(&[1, 30])])
                .unwrap();
        let divisor = Relation::from_tuples(Schema::new(vec![Field::int("cno")]), vec![]).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = ClusterConfig {
            nodes: 3,
            strategy: Strategy::DivisorPartitioning,
            collection_sites: 2,
            ..Default::default()
        };
        let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
        let mut got: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use reldiv_rel::schema::{Field, Schema};
    use reldiv_rel::tuple::ints;

    fn workload() -> (Relation, Relation, Vec<i64>) {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        let mut rows = Vec::new();
        for s in 0..70i64 {
            for c in 0..=(s % 8) {
                rows.push(ints(&[s, c]));
            }
            rows.push(ints(&[s, 900 + s])); // noise
        }
        let dividend = Relation::from_tuples(schema, rows).unwrap();
        let divisor = Relation::from_tuples(
            Schema::new(vec![Field::int("cno")]),
            (0..5).map(|c| ints(&[c])).collect(),
        )
        .unwrap();
        let expected: Vec<i64> = (0..70).filter(|s| s % 8 >= 4).collect();
        (dividend, divisor, expected)
    }

    #[test]
    fn streaming_nodes_match_buffered_nodes() {
        let (dividend, divisor, expected) = workload();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for strategy in [
            Strategy::QuotientPartitioning,
            Strategy::DivisorPartitioning,
        ] {
            for nodes in [1usize, 3] {
                let config = ClusterConfig {
                    nodes,
                    strategy,
                    streaming_nodes: true,
                    ..Default::default()
                };
                let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
                let mut got: Vec<i64> = rel
                    .tuples()
                    .iter()
                    .map(|t| t.value(0).as_int().unwrap())
                    .collect();
                got.sort_unstable();
                assert_eq!(got, expected, "{strategy:?} nodes={nodes}");
            }
        }
    }

    #[test]
    fn streaming_with_decentralized_collection() {
        let (dividend, divisor, expected) = workload();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = ClusterConfig {
            nodes: 4,
            strategy: Strategy::DivisorPartitioning,
            streaming_nodes: true,
            collection_sites: 3,
            bit_vector_bits: Some(4096),
            ..Default::default()
        };
        let (rel, report) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
        let mut got: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(report.filtered_tuples > 0, "noise dropped by the filter");
    }

    #[test]
    fn streaming_nodes_handle_empty_divisor() {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        let dividend =
            Relation::from_tuples(schema, vec![ints(&[1, 10]), ints(&[2, 20]), ints(&[1, 30])])
                .unwrap();
        let divisor = Relation::from_tuples(Schema::new(vec![Field::int("cno")]), vec![]).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = ClusterConfig {
            nodes: 2,
            strategy: Strategy::QuotientPartitioning,
            streaming_nodes: true,
            ..Default::default()
        };
        let (rel, _) = parallel_divide(&dividend, &divisor, &spec, &config).unwrap();
        let mut got: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
