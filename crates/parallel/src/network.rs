//! The simulated interconnection network: crossbeam channels with
//! message/tuple/byte accounting.
//!
//! Section 6 reasons about network activity as the scarce resource of a
//! shared-nothing machine ("network activity can become a bottleneck");
//! this module makes that activity observable so the benchmarks can show,
//! e.g., how much traffic bit-vector filtering saves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use reldiv_rel::Tuple;

/// Counters shared by every port of one simulated network.
#[derive(Debug, Default)]
pub struct NetworkCounters {
    messages: AtomicU64,
    tuples: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time view of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages sent (batches count once).
    pub messages: u64,
    /// Tuples shipped.
    pub tuples: u64,
    /// Payload bytes shipped (record-width accounting).
    pub bytes: u64,
}

impl NetworkCounters {
    /// Reads the counters.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            messages: self.messages.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Messages exchanged between the coordinator and the nodes.
#[derive(Debug)]
pub enum Message {
    /// The (replicated or partitioned) divisor fragment for the node.
    Divisor(Vec<Tuple>),
    /// A batch of dividend tuples.
    Dividend(Vec<Tuple>),
    /// No more input; produce your quotient cluster.
    End,
}

/// The sending half of a node link, with accounting.
pub struct Port {
    sender: Sender<Message>,
    counters: Arc<NetworkCounters>,
    tuple_bytes: usize,
}

impl Port {
    /// Ships a message, recording its size.
    pub fn send(&self, msg: Message) {
        let n = match &msg {
            Message::Divisor(v) | Message::Dividend(v) => v.len(),
            Message::End => 0,
        };
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters.tuples.fetch_add(n as u64, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add((n * self.tuple_bytes) as u64, Ordering::Relaxed);
        // Receiver hang-up just means the node failed; the join below will
        // surface its error.
        let _ = self.sender.send(msg);
    }
}

/// Builds `n` node links plus a result channel back to the coordinator.
/// `tuple_bytes` prices each shipped tuple (the record width of the
/// relation being shipped dominates; we charge the dividend width).
pub fn build_links(
    n: usize,
    tuple_bytes: usize,
    counters: &Arc<NetworkCounters>,
) -> (Vec<Port>, Vec<Receiver<Message>>) {
    let mut ports = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        ports.push(Port {
            sender: tx,
            counters: counters.clone(),
            tuple_bytes,
        });
        receivers.push(rx);
    }
    (ports, receivers)
}

/// Result channel: nodes ship `(node_id, quotient tuples)` back; the
/// shipment is also network traffic and is counted.
pub struct ResultPort {
    sender: Sender<(usize, Vec<Tuple>)>,
    counters: Arc<NetworkCounters>,
    tuple_bytes: usize,
}

impl ResultPort {
    /// Ships a node's quotient cluster to the collection site.
    pub fn send(&self, node: usize, tuples: Vec<Tuple>) {
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters
            .tuples
            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add((tuples.len() * self.tuple_bytes) as u64, Ordering::Relaxed);
        let _ = self.sender.send((node, tuples));
    }
}

/// Builds the shared result channel.
pub fn build_result_link(
    tuple_bytes: usize,
    counters: &Arc<NetworkCounters>,
) -> (ResultPort, Receiver<(usize, Vec<Tuple>)>) {
    let (tx, rx) = unbounded();
    (
        ResultPort {
            sender: tx,
            counters: counters.clone(),
            tuple_bytes,
        },
        rx,
    )
}

impl Clone for ResultPort {
    fn clone(&self) -> Self {
        ResultPort {
            sender: self.sender.clone(),
            counters: self.counters.clone(),
            tuple_bytes: self.tuple_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::tuple::ints;

    #[test]
    fn sends_are_counted_in_messages_tuples_and_bytes() {
        let counters = Arc::new(NetworkCounters::default());
        let (ports, receivers) = build_links(2, 16, &counters);
        ports[0].send(Message::Dividend(vec![ints(&[1, 2]), ints(&[3, 4])]));
        ports[1].send(Message::End);
        let stats = counters.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.tuples, 2);
        assert_eq!(stats.bytes, 32);
        assert!(matches!(receivers[0].recv().unwrap(), Message::Dividend(v) if v.len() == 2));
        assert!(matches!(receivers[1].recv().unwrap(), Message::End));
    }

    #[test]
    fn result_shipments_are_counted_too() {
        let counters = Arc::new(NetworkCounters::default());
        let (port, rx) = build_result_link(8, &counters);
        port.clone().send(3, vec![ints(&[9])]);
        let (node, tuples) = rx.recv().unwrap();
        assert_eq!(node, 3);
        assert_eq!(tuples.len(), 1);
        assert_eq!(counters.stats().bytes, 8);
    }
}
