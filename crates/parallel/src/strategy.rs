//! Strategy logic shared by the thread-simulated machine and the TCP
//! cluster.
//!
//! Section 6's two parallelization strategies are transport-independent:
//! what varies between the in-process machine ([`crate::parallel_divide`])
//! and a real shared-nothing deployment (`reldiv-cluster`) is only *how*
//! tuples move, not *which* tuples move where. This module owns the
//! shared half:
//!
//! * [`plan_divisor`] — place the divisor (replicate it for
//!   [`Strategy::QuotientPartitioning`], hash-cluster it on all divisor
//!   columns for [`Strategy::DivisorPartitioning`]), build the optional
//!   bit-vector filter while scanning it, and decide which nodes
//!   participate.
//! * [`Router`] — the sending site's per-tuple decision: drop (filter or
//!   non-participating destination) or ship to a node, with accounting.
//! * [`Transport`] + [`distribute`] — the generic scan-site driver that
//!   ships divisor fragments and batched dividend tuples over any
//!   transport (accounted channels, TCP links, or a bucket accumulator on
//!   a cluster node repartitioning its local fragment).
//! * [`CollectionSite`] — the collection-phase division over node
//!   addresses ("the collection site divides the set of all incoming
//!   tuples over the set of processor network addresses"), reusing the
//!   quotient-table machinery with each node's dense tag as the bit
//!   index.

use std::collections::HashMap;

use reldiv_core::hash_division::{HashDivisionMode, QuotientTable};
use reldiv_core::DivisionSpec;
use reldiv_rel::{Schema, Tuple};
use reldiv_storage::MemoryPool;

use crate::filter::BitVectorFilter;
use crate::partition::route;

/// Partitioning strategy for the parallel division.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Replicate the divisor; partition the dividend on the quotient
    /// attributes; concatenate node results. The default: it is the
    /// strategy Section 6 develops first and the cheaper one when the
    /// divisor is small.
    #[default]
    QuotientPartitioning,
    /// Partition both inputs on the divisor attributes; collect node
    /// results with a final collection-phase division over node
    /// addresses.
    DivisorPartitioning,
}

impl Strategy {
    /// Stable one-byte wire/cache encoding.
    pub fn code(self) -> u8 {
        match self {
            Strategy::QuotientPartitioning => 0,
            Strategy::DivisorPartitioning => 1,
        }
    }

    /// Decodes [`Strategy::code`]; `None` for unknown bytes.
    pub fn from_code(code: u8) -> Option<Strategy> {
        match code {
            0 => Some(Strategy::QuotientPartitioning),
            1 => Some(Strategy::DivisorPartitioning),
            _ => None,
        }
    }
}

/// A request-level description of how to distribute a division. Carried
/// by the service's `QueryOptions` (in-process parallel execution) and by
/// the wire protocol's trailing distribution extension on Divide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Distribution {
    /// Which Section 6 strategy to run.
    pub strategy: Strategy,
    /// Number of nodes to spread the division over.
    pub nodes: usize,
    /// Bit-vector filter size applied at the sending site (divisor
    /// partitioning only). `None` disables filtering.
    pub bit_vector_bits: Option<usize>,
}

/// Where the divisor fragments go, computed once per query at the site
/// that owns the divisor.
#[derive(Debug, Clone)]
pub struct DivisorPlan {
    /// One fragment per node: full replicas under quotient partitioning,
    /// disjoint hash clusters under divisor partitioning. Empty fragments
    /// are still shipped so every node can build its (empty) table.
    pub clusters: Vec<Vec<Tuple>>,
    /// Bit-vector filter built while scanning the divisor (divisor
    /// partitioning with `bit_vector_bits`; never built for an empty
    /// divisor, where it would wrongly drop every vacuous candidate).
    pub filter: Option<BitVectorFilter>,
    /// Nodes holding at least one divisor tuple — the only nodes whose
    /// local division can produce quotient tuples. All nodes when the
    /// divisor is empty (vacuous truth) or replicated.
    pub participating: Vec<usize>,
    /// The divisor is empty: division is vacuously true for every
    /// quotient candidate.
    pub empty_divisor: bool,
}

/// Places the divisor for `strategy` across `nodes` sites.
pub fn plan_divisor(
    strategy: Strategy,
    nodes: usize,
    bit_vector_bits: Option<usize>,
    divisor: &[Tuple],
    divisor_arity: usize,
) -> DivisorPlan {
    let empty_divisor = divisor.is_empty();
    match strategy {
        Strategy::QuotientPartitioning => DivisorPlan {
            clusters: vec![divisor.to_vec(); nodes],
            filter: None,
            participating: (0..nodes).collect(),
            empty_divisor,
        },
        Strategy::DivisorPartitioning => {
            let divisor_all: Vec<usize> = (0..divisor_arity).collect();
            let mut clusters: Vec<Vec<Tuple>> = vec![Vec::new(); nodes];
            let mut filter = if empty_divisor {
                None
            } else {
                bit_vector_bits.map(BitVectorFilter::new)
            };
            for t in divisor {
                if let Some(f) = &mut filter {
                    f.insert(t);
                }
                clusters[route(t, &divisor_all, nodes)].push(t.clone());
            }
            let participating: Vec<usize> = if empty_divisor {
                (0..nodes).collect()
            } else {
                (0..nodes).filter(|&i| !clusters[i].is_empty()).collect()
            };
            DivisorPlan {
                clusters,
                filter,
                participating,
                empty_divisor,
            }
        }
    }
}

/// The sending site's per-tuple routing decision, with accounting.
///
/// Strategy-agnostic: it routes on a key set, optionally tests a
/// bit-vector filter, and optionally drops tuples bound for sites that
/// hold no divisor fragment. Built from a [`DivisorPlan`] via
/// [`Router::for_strategy`] at scan sites that own the divisor, or
/// directly via [`Router::new`] at cluster nodes that repartition their
/// dividend fragment against a filter shipped to them.
#[derive(Debug)]
pub struct Router {
    route_keys: Vec<usize>,
    nodes: usize,
    filter: Option<(BitVectorFilter, Vec<usize>)>,
    /// `None` = every destination accepts tuples.
    accepts: Option<Vec<bool>>,
    /// Tuples dropped (filter misses + non-participating destinations).
    pub filtered: u64,
    /// Tuples routed to each node.
    pub per_node: Vec<u64>,
}

impl Router {
    /// A router over `nodes` destinations, hashing on `route_keys`.
    pub fn new(route_keys: Vec<usize>, nodes: usize) -> Router {
        Router {
            route_keys,
            nodes,
            filter: None,
            accepts: None,
            filtered: 0,
            per_node: vec![0; nodes],
        }
    }

    /// Drops tuples whose `filter_keys` projection misses `filter`.
    pub fn with_filter(mut self, filter: BitVectorFilter, filter_keys: Vec<usize>) -> Router {
        self.filter = Some((filter, filter_keys));
        self
    }

    /// Drops tuples bound for nodes outside `participating`.
    pub fn with_participants(mut self, participating: &[usize]) -> Router {
        let mut accepts = vec![false; self.nodes];
        for &node in participating {
            accepts[node] = true;
        }
        self.accepts = Some(accepts);
        self
    }

    /// The router a divisor-owning scan site uses for `strategy`.
    pub fn for_strategy(
        strategy: Strategy,
        spec: &DivisionSpec,
        nodes: usize,
        plan: &DivisorPlan,
    ) -> Router {
        match strategy {
            Strategy::QuotientPartitioning => Router::new(spec.quotient_keys.clone(), nodes),
            Strategy::DivisorPartitioning => {
                let mut router = Router::new(spec.divisor_keys.clone(), nodes);
                if !plan.empty_divisor {
                    if let Some(f) = &plan.filter {
                        router = router.with_filter(f.clone(), spec.divisor_keys.clone());
                    }
                    router = router.with_participants(&plan.participating);
                }
                router
            }
        }
    }

    /// Routes one dividend tuple: `Some(node)` to ship, `None` to drop
    /// (counted in [`Router::filtered`]).
    pub fn route(&mut self, t: &Tuple) -> Option<usize> {
        if let Some((f, keys)) = &self.filter {
            if !f.may_match(t, keys) {
                self.filtered += 1;
                return None;
            }
        }
        let node = route(t, &self.route_keys, self.nodes);
        if let Some(accepts) = &self.accepts {
            if !accepts[node] {
                // No divisor tuples live there; nothing to match.
                self.filtered += 1;
                return None;
            }
        }
        self.per_node[node] += 1;
        Some(node)
    }
}

/// The sending half a strategy needs from a transport: ship a divisor
/// fragment, ship a dividend batch, signal end-of-input. Implemented by
/// the accounted channels of the thread machine, the TCP links of the
/// cluster, and the bucket accumulator a node uses when repartitioning.
pub trait Transport {
    /// Transport failure (infallible for in-process channels).
    type Error;
    /// Ships node `node` its divisor fragment (possibly empty).
    fn ship_divisor(&mut self, node: usize, tuples: Vec<Tuple>) -> Result<(), Self::Error>;
    /// Ships node `node` a batch of dividend tuples.
    fn ship_dividend(&mut self, node: usize, tuples: Vec<Tuple>) -> Result<(), Self::Error>;
    /// Tells node `node` its input is complete.
    fn end(&mut self, node: usize) -> Result<(), Self::Error>;
}

/// What the scan site measured while distributing one query's inputs.
#[derive(Debug, Clone)]
pub struct DistributionReport {
    /// Nodes whose local division can contribute quotient tuples.
    pub participating: Vec<usize>,
    /// The divisor was empty (vacuous-truth semantics).
    pub empty_divisor: bool,
    /// Dividend tuples dropped at the sending site.
    pub filtered_tuples: u64,
    /// Fill ratio of the bit-vector filter, if one was built.
    pub filter_fill_ratio: Option<f64>,
    /// Dividend tuples shipped to each node.
    pub per_node_dividend: Vec<u64>,
}

/// The generic scan-site driver: places the divisor, then streams the
/// dividend through a [`Router`] in `batch_size` batches over any
/// [`Transport`]. Both backends run exactly this code, so the thread
/// machine is a faithful model of the TCP cluster's traffic.
pub fn distribute<T: Transport>(
    transport: &mut T,
    dist: Distribution,
    spec: &DivisionSpec,
    dividend: &[Tuple],
    divisor: &[Tuple],
    divisor_arity: usize,
    batch_size: usize,
) -> Result<DistributionReport, T::Error> {
    let nodes = dist.nodes;
    let plan = plan_divisor(
        dist.strategy,
        nodes,
        dist.bit_vector_bits,
        divisor,
        divisor_arity,
    );
    let filter_fill_ratio = plan.filter.as_ref().map(BitVectorFilter::fill_ratio);
    for (node, cluster) in plan.clusters.iter().enumerate() {
        transport.ship_divisor(node, cluster.clone())?;
    }
    let mut router = Router::for_strategy(dist.strategy, spec, nodes, &plan);
    let batch_size = batch_size.max(1);
    let mut batches: Vec<Vec<Tuple>> = vec![Vec::new(); nodes];
    for t in dividend {
        if let Some(node) = router.route(t) {
            batches[node].push(t.clone());
            if batches[node].len() >= batch_size {
                transport.ship_dividend(node, std::mem::take(&mut batches[node]))?;
            }
        }
    }
    for (node, batch) in batches.into_iter().enumerate() {
        if !batch.is_empty() {
            transport.ship_dividend(node, batch)?;
        }
        transport.end(node)?;
    }
    Ok(DistributionReport {
        participating: plan.participating,
        empty_divisor: plan.empty_divisor,
        filtered_tuples: router.filtered,
        filter_fill_ratio,
        per_node_dividend: router.per_node,
    })
}

/// The collection-phase division over node addresses (divisor
/// partitioning). Each participating node's quotient cluster carries the
/// node's address; a quotient value is in the final result iff tuples for
/// it arrived from *every* participating node. With an empty divisor
/// every node's cluster is vacuously complete, so a single tag suffices
/// (and duplicates across nodes still collapse to one output tuple).
pub struct CollectionSite {
    // The pool must outlive the table's reservations.
    _pool: MemoryPool,
    table: QuotientTable,
    dense: HashMap<usize, u32>,
    empty_divisor: bool,
}

impl CollectionSite {
    /// A collection site expecting clusters from `participating` nodes.
    pub fn new(
        quotient_schema: &Schema,
        participating: &[usize],
        empty_divisor: bool,
    ) -> crate::Result<CollectionSite> {
        let phase_count = if empty_divisor {
            1
        } else {
            participating.len() as u32
        };
        let pool = MemoryPool::unbounded();
        let table = QuotientTable::new(
            &pool,
            HashDivisionMode::Standard,
            phase_count,
            (0..quotient_schema.arity()).collect(),
            quotient_schema.record_width(),
        )?;
        let dense = participating
            .iter()
            .enumerate()
            .map(|(i, &node)| (node, i as u32))
            .collect();
        Ok(CollectionSite {
            _pool: pool,
            table,
            dense,
            empty_divisor,
        })
    }

    /// Absorbs one tuple of node `node`'s quotient cluster. Tuples from
    /// non-participating nodes (which report empty clusters) are ignored.
    pub fn absorb(&mut self, node: usize, t: &Tuple) -> crate::Result<()> {
        let tag = if self.empty_divisor {
            0
        } else {
            match self.dense.get(&node) {
                Some(&tag) => tag,
                None => return Ok(()),
            }
        };
        self.table.absorb(t, Some(tag))?;
        Ok(())
    }

    /// Drains the completed quotient tuples.
    pub fn finish(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.table.next_complete() {
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn spec2() -> DivisionSpec {
        DivisionSpec {
            quotient_keys: vec![0],
            divisor_keys: vec![1],
        }
    }

    fn qschema() -> Schema {
        Schema::new(vec![Field::int("sid")])
    }

    /// Records every transport call, and can fail on command.
    #[derive(Default)]
    struct RecordingTransport {
        divisor: Vec<(usize, usize)>,
        dividend: Vec<(usize, usize)>,
        ends: Vec<usize>,
        fail_on_dividend: bool,
    }

    impl Transport for RecordingTransport {
        type Error = &'static str;
        fn ship_divisor(&mut self, node: usize, tuples: Vec<Tuple>) -> Result<(), Self::Error> {
            self.divisor.push((node, tuples.len()));
            Ok(())
        }
        fn ship_dividend(&mut self, node: usize, tuples: Vec<Tuple>) -> Result<(), Self::Error> {
            if self.fail_on_dividend {
                return Err("link down");
            }
            self.dividend.push((node, tuples.len()));
            Ok(())
        }
        fn end(&mut self, node: usize) -> Result<(), Self::Error> {
            self.ends.push(node);
            Ok(())
        }
    }

    #[test]
    fn quotient_partitioning_replicates_the_divisor_everywhere() {
        let divisor: Vec<Tuple> = (0..5).map(|c| ints(&[c])).collect();
        let plan = plan_divisor(Strategy::QuotientPartitioning, 3, Some(1024), &divisor, 1);
        assert_eq!(plan.clusters.len(), 3);
        assert!(plan.clusters.iter().all(|c| c.len() == 5), "full replicas");
        assert!(plan.filter.is_none(), "no filter under replication");
        assert_eq!(plan.participating, vec![0, 1, 2]);
    }

    #[test]
    fn divisor_partitioning_clusters_are_disjoint_and_complete() {
        let divisor: Vec<Tuple> = (0..40).map(|c| ints(&[c])).collect();
        let plan = plan_divisor(Strategy::DivisorPartitioning, 4, None, &divisor, 1);
        let total: usize = plan.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 40, "every divisor tuple placed exactly once");
        for (node, cluster) in plan.clusters.iter().enumerate() {
            for t in cluster {
                assert_eq!(crate::partition::route(t, &[0], 4), node);
            }
        }
    }

    #[test]
    fn empty_divisor_builds_no_filter_and_everyone_participates() {
        let plan = plan_divisor(Strategy::DivisorPartitioning, 4, Some(4096), &[], 1);
        assert!(plan.empty_divisor);
        assert!(
            plan.filter.is_none(),
            "an empty filter would drop every vacuous candidate"
        );
        assert_eq!(plan.participating, vec![0, 1, 2, 3]);
    }

    #[test]
    fn router_drops_filter_misses_and_non_participants() {
        let divisor: Vec<Tuple> = (0..4).map(|c| ints(&[c])).collect();
        let plan = plan_divisor(Strategy::DivisorPartitioning, 8, Some(1 << 16), &divisor, 1);
        let mut router = Router::for_strategy(Strategy::DivisorPartitioning, &spec2(), 8, &plan);
        // Members always route somewhere participating.
        for c in 0..4 {
            let node = router.route(&ints(&[99, c])).expect("member must pass");
            assert!(plan.participating.contains(&node));
        }
        // A large sweep of non-members: all dropped (filter or
        // participation), never shipped.
        let mut dropped = 0;
        for c in 10_000..11_000 {
            if router.route(&ints(&[99, c])).is_none() {
                dropped += 1;
            }
        }
        assert!(dropped > 900, "sparse filter must drop non-members");
        assert_eq!(router.filtered, dropped);
    }

    #[test]
    fn distribute_batches_ships_everything_and_signals_end() {
        let dividend: Vec<Tuple> = (0..100)
            .flat_map(|s| (0..3).map(move |c| ints(&[s, c])))
            .collect();
        let divisor: Vec<Tuple> = (0..3).map(|c| ints(&[c])).collect();
        let mut t = RecordingTransport::default();
        let report = distribute(
            &mut t,
            Distribution {
                strategy: Strategy::QuotientPartitioning,
                nodes: 4,
                bit_vector_bits: None,
            },
            &spec2(),
            &dividend,
            &divisor,
            1,
            7,
        )
        .unwrap();
        assert_eq!(t.divisor.len(), 4, "one divisor replica per node");
        assert!(t.divisor.iter().all(|&(_, n)| n == 3));
        let shipped: usize = t.dividend.iter().map(|&(_, n)| n).sum();
        assert_eq!(shipped as u64, report.per_node_dividend.iter().sum::<u64>());
        assert_eq!(shipped, 300, "no tuple lost or duplicated");
        assert!(
            t.dividend.iter().all(|&(_, n)| n <= 7),
            "batch cap respected"
        );
        let mut ends = t.ends.clone();
        ends.sort_unstable();
        assert_eq!(ends, vec![0, 1, 2, 3], "every node sees end-of-input once");
    }

    #[test]
    fn distribute_surfaces_transport_errors() {
        let dividend: Vec<Tuple> = (0..10).map(|s| ints(&[s, 0])).collect();
        let divisor = vec![ints(&[0])];
        let mut t = RecordingTransport {
            fail_on_dividend: true,
            ..Default::default()
        };
        let err = distribute(
            &mut t,
            Distribution {
                strategy: Strategy::DivisorPartitioning,
                nodes: 2,
                bit_vector_bits: None,
            },
            &spec2(),
            &dividend,
            &divisor,
            1,
            1,
        )
        .unwrap_err();
        assert_eq!(err, "link down");
    }

    #[test]
    fn collection_site_requires_every_participating_node() {
        // Quotient value 7 arrives from both participating nodes (2 and
        // 5); value 8 only from node 2 → only 7 is complete.
        let mut site = CollectionSite::new(&qschema(), &[2, 5], false).unwrap();
        site.absorb(2, &ints(&[7])).unwrap();
        site.absorb(5, &ints(&[7])).unwrap();
        site.absorb(2, &ints(&[8])).unwrap();
        site.absorb(9, &ints(&[8])).unwrap(); // unknown node: ignored
        let mut got: Vec<i64> = site
            .finish()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn collection_site_empty_divisor_dedups_across_nodes() {
        let mut site = CollectionSite::new(&qschema(), &[0, 1, 2], true).unwrap();
        site.absorb(0, &ints(&[1])).unwrap();
        site.absorb(1, &ints(&[1])).unwrap();
        site.absorb(2, &ints(&[2])).unwrap();
        let mut got: Vec<i64> = site
            .finish()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn strategy_codes_round_trip() {
        for s in [
            Strategy::QuotientPartitioning,
            Strategy::DivisorPartitioning,
        ] {
            assert_eq!(Strategy::from_code(s.code()), Some(s));
        }
        assert_eq!(Strategy::from_code(9), None);
    }
}
