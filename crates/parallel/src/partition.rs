//! The shared hash-partitioning function.
//!
//! Every site that routes tuples must agree on where a tuple lives: the
//! thread-simulated machine in this crate, a cluster node repartitioning
//! its dividend fragment for shipment, and the coordinator placing shards
//! at registration time. They all call [`route`], which reduces the
//! tuple's deterministic FNV-1a hash ([`Tuple::hash_on`]) modulo the node
//! count. Because the hash is fixed across runs and platforms, shard
//! placement survives coordinator restarts — a relation sharded yesterday
//! is still addressed correctly by a coordinator started today, as long
//! as the node count and shard keys are unchanged.
//!
//! Plain hash partitioning does nothing against *key skew*: if one key
//! value dominates the input, the node it hashes to receives almost the
//! whole relation ("Design Trade-offs for a Robust Dynamic Hybrid Hash
//! Join" treats exactly this failure mode). The
//! `skewed_keys_land_on_one_node` test below pins that behavior so the
//! limitation stays documented rather than implicit.

use reldiv_rel::Tuple;

/// Routes a tuple to one of `nodes` sites by hashing it on `keys`.
///
/// Deterministic: the same tuple with the same keys and node count always
/// lands on the same node, across processes, restarts, and platforms.
///
/// # Panics
/// Debug-asserts `nodes > 0`; in release a zero node count would divide
/// by zero, so callers validate node counts at configuration time.
pub fn route(tuple: &Tuple, keys: &[usize], nodes: usize) -> usize {
    debug_assert!(nodes > 0, "route requires at least one node");
    (tuple.hash_on(keys) as usize) % nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reldiv_rel::tuple::ints;

    /// Satellite: uniformity across node counts 2..16. With thousands of
    /// distinct integer keys, every node's share must stay within a loose
    /// band of the mean — hash partitioning should never starve or
    /// overload a node by more than a constant factor on uniform keys.
    #[test]
    fn uniform_keys_spread_evenly_for_node_counts_2_to_16() {
        const TUPLES: i64 = 8192;
        for nodes in 2..=16usize {
            let mut loads = vec![0u64; nodes];
            for k in 0..TUPLES {
                loads[route(&ints(&[k, k * 7 + 1]), &[0], nodes)] += 1;
            }
            let mean = TUPLES as f64 / nodes as f64;
            for (node, &load) in loads.iter().enumerate() {
                assert!(
                    (load as f64) > 0.5 * mean && (load as f64) < 1.5 * mean,
                    "nodes={nodes} node={node} load={load} mean={mean:.1}"
                );
            }
        }
    }

    /// Satellite: stability across coordinator restarts. The routing of a
    /// tuple is a pure function of its key values — recomputing it in a
    /// fresh process (or after a restart, which this test simulates by
    /// recomputing from independently constructed tuples) must give the
    /// same node. The golden vector pins the concrete assignments: if the
    /// hash or the reduction ever changes, existing shard placements
    /// would silently break, and this test fails loudly instead.
    #[test]
    fn routing_is_stable_across_restarts() {
        // A "restart": independently constructed equal tuples route alike.
        for k in 0..256i64 {
            let before = route(&ints(&[k, 999]), &[0], 16);
            let after = route(&ints(&[k, -5]), &[0], 16); // other columns don't matter
            assert_eq!(before, after, "key {k} moved after restart");
        }
        // Golden assignments, captured from the FNV-1a implementation.
        // These are a compatibility contract, not arbitrary: changing them
        // orphans every shard placed by an earlier coordinator.
        let golden: Vec<usize> = (0..8).map(|k| route(&ints(&[k]), &[0], 4)).collect();
        assert_eq!(golden, crate::partition::tests::GOLDEN_N4.to_vec());
    }

    /// Pinned `route(ints(&[k]), &[0], 4)` for k in 0..8.
    pub(crate) const GOLDEN_N4: [usize; 8] = [3, 2, 1, 0, 3, 2, 1, 0];

    /// Satellite: the documented skew failure mode. All tuples sharing one
    /// key value land on a single node regardless of node count — hash
    /// partitioning offers no protection against key skew. (A production
    /// system would need range splitting or salting; see docs/CLUSTER.md.)
    #[test]
    fn skewed_keys_land_on_one_node() {
        for nodes in [2usize, 4, 16] {
            let mut hit = std::collections::HashSet::new();
            for row in 0..1000i64 {
                // 1000 tuples, one shared key value in the routed column.
                hit.insert(route(&ints(&[42, row]), &[0], nodes));
            }
            assert_eq!(
                hit.len(),
                1,
                "skewed key must (by current design) hit exactly one node"
            );
        }
    }

    proptest! {
        /// Route is total and in range for any keys and node count.
        #[test]
        fn route_is_in_range(k in -1_000_000i64..1_000_000, nodes in 1usize..64) {
            let t = ints(&[k, k ^ 0x5a5a]);
            let node = route(&t, &[0, 1], nodes);
            prop_assert!(node < nodes);
            // Determinism within a process, too.
            prop_assert_eq!(node, route(&t, &[0, 1], nodes));
        }
    }
}
