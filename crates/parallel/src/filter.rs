//! Bit-vector filtering (Section 6, after Babb 1979).
//!
//! "The bit vector can be used to avoid shipping tuples for which no
//! divisor record exists ... the selection of tuples is only a heuristic
//! \[false positives pass\]. Nevertheless, bit vector filters may reduce
//! significantly the network cost for the dividend relation, which is the
//! larger of the division operands."

use reldiv_rel::Tuple;

/// A bit-vector filter over divisor-attribute hash values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVectorFilter {
    words: Vec<u64>,
    bits: usize,
}

impl BitVectorFilter {
    /// Creates an empty filter of `bits` bits (rounded up to a word).
    pub fn new(bits: usize) -> Self {
        let bits = bits.max(64);
        BitVectorFilter {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Number of bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Inserts a divisor tuple (hashed on all its columns).
    pub fn insert(&mut self, divisor_tuple: &Tuple) {
        let all: Vec<usize> = (0..divisor_tuple.arity()).collect();
        self.insert_on(divisor_tuple, &all);
    }

    /// Inserts a tuple hashed on an explicit key set — the node-side
    /// `BuildFilter` handler inserts divisor fragments on the same
    /// columns [`may_match`](Self::may_match) later tests.
    pub fn insert_on(&mut self, tuple: &Tuple, keys: &[usize]) {
        let h = tuple.hash_on(keys) as usize % self.bits;
        self.words[h / 64] |= 1 << (h % 64);
    }

    /// Tests a dividend tuple on its divisor-attribute columns. `false`
    /// means *definitely* no matching divisor tuple (safe to drop);
    /// `true` may be a false positive.
    pub fn may_match(&self, dividend_tuple: &Tuple, divisor_keys: &[usize]) -> bool {
        let h = dividend_tuple.hash_on(divisor_keys) as usize % self.bits;
        self.words[h / 64] & (1 << (h % 64)) != 0
    }

    /// Fraction of set bits (the false-positive rate for uniformly hashed
    /// non-members).
    pub fn fill_ratio(&self) -> f64 {
        let ones: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        ones as f64 / self.bits as f64
    }

    /// The backing words, for wire serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a filter from its wire parts. `None` if the word count
    /// does not match the bit count (hostile or corrupt input) or the bit
    /// count is below the one-word minimum.
    pub fn from_parts(bits: usize, words: Vec<u64>) -> Option<Self> {
        if bits < 64 || words.len() != bits.div_ceil(64) {
            return None;
        }
        Some(BitVectorFilter { words, bits })
    }

    /// ORs another filter of the same geometry into this one — how a
    /// coordinator merges the filters that each divisor-owning node built
    /// over its local fragment. `false` (no-op) on a size mismatch.
    #[must_use]
    pub fn union(&mut self, other: &BitVectorFilter) -> bool {
        if self.bits != other.bits {
            return false;
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::tuple::ints;

    #[test]
    fn members_always_pass() {
        let mut f = BitVectorFilter::new(256);
        for d in 0..50 {
            f.insert(&ints(&[d]));
        }
        for d in 0..50 {
            // Dividend tuple (q, d): divisor key is column 1.
            assert!(f.may_match(&ints(&[999, d]), &[1]), "member {d} must pass");
        }
    }

    #[test]
    fn most_non_members_are_dropped_when_filter_is_sparse() {
        let mut f = BitVectorFilter::new(4096);
        for d in 0..20 {
            f.insert(&ints(&[d]));
        }
        let dropped = (1000..2000)
            .filter(|&d| !f.may_match(&ints(&[0, d]), &[1]))
            .count();
        assert!(
            dropped > 950,
            "sparse filter should drop most non-members: {dropped}"
        );
        assert!(f.fill_ratio() < 0.01);
    }

    #[test]
    fn false_positives_exist_for_tiny_filters() {
        // The paper's caveat: "a Transcript tuple for an agriculture
        // course will erroneously pass the bit vector filter if it maps to
        // the same bit as one of the database courses."
        let mut f = BitVectorFilter::new(64);
        for d in 0..60 {
            f.insert(&ints(&[d]));
        }
        let passing = (10_000..11_000)
            .filter(|&d| f.may_match(&ints(&[0, d]), &[1]))
            .count();
        assert!(
            passing > 0,
            "a nearly full filter must admit false positives"
        );
    }

    #[test]
    fn minimum_size_is_one_word() {
        let f = BitVectorFilter::new(1);
        assert_eq!(f.bits(), 64);
    }

    #[test]
    fn wire_parts_round_trip() {
        let mut f = BitVectorFilter::new(1024);
        for d in 0..30 {
            f.insert(&ints(&[d]));
        }
        let rebuilt = BitVectorFilter::from_parts(f.bits(), f.words().to_vec()).unwrap();
        assert_eq!(rebuilt, f);
        // Mismatched word counts are rejected, not mis-sized.
        assert!(BitVectorFilter::from_parts(1024, vec![0; 15]).is_none());
        assert!(BitVectorFilter::from_parts(0, vec![]).is_none());
    }

    #[test]
    fn union_merges_fragment_filters() {
        let mut a = BitVectorFilter::new(512);
        let mut b = BitVectorFilter::new(512);
        a.insert(&ints(&[1]));
        b.insert(&ints(&[2]));
        assert!(a.union(&b));
        for d in [1, 2] {
            assert!(a.may_match(&ints(&[0, d]), &[1]), "member {d} after union");
        }
        let other_geometry = BitVectorFilter::new(1024);
        assert!(!a.union(&other_geometry), "size mismatch refused");
    }
}
