//! Property test: the word-at-a-time bit map against a `HashSet` model.

use proptest::prelude::*;
use reldiv_core::Bitmap;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_matches_a_set_model(
        bits in 1usize..300,
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 0..400),
    ) {
        let mut bm = Bitmap::new(bits);
        let mut model: HashSet<usize> = HashSet::new();
        for (raw, probe) in ops {
            let i = raw as usize % bits;
            if probe {
                prop_assert_eq!(bm.get(i), model.contains(&i), "get({})", i);
            } else {
                let prior = bm.set(i);
                prop_assert_eq!(prior, !model.insert(i), "set({}) prior value", i);
            }
            prop_assert_eq!(bm.count_ones(), model.len());
            prop_assert_eq!(bm.all_set(), model.len() == bits);
        }
    }

    /// Completing a map in an arbitrary order flips `all_set` exactly at
    /// the last distinct index.
    #[test]
    fn all_set_flips_exactly_once(order in prop::collection::vec(any::<u16>(), 1..200)) {
        let bits = 64 + (order[0] as usize % 100); // straddle word boundary
        let mut bm = Bitmap::new(bits);
        let mut distinct: HashSet<usize> = HashSet::new();
        // Visit given order first, then fill the remainder ascending.
        let sequence: Vec<usize> = order
            .iter()
            .map(|&r| r as usize % bits)
            .chain(0..bits)
            .collect();
        for i in sequence {
            prop_assert!(!bm.all_set() || distinct.len() == bits);
            bm.set(i);
            distinct.insert(i);
            if distinct.len() == bits {
                prop_assert!(bm.all_set(), "all bits set but all_set is false");
            }
        }
        prop_assert!(bm.all_set());
    }
}
