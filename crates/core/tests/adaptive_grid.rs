//! Correctness grid for the memory-adaptive hybrid: every Table 4 cell,
//! budgets from 16 KB to 1 MB, byte-identical quotients against the naive
//! oracle — including quotient-key skew (one hot group holding ~50% of
//! the dividend, and Zipf-distributed group sizes) — for the adaptive
//! path and the surviving static fallbacks. Plus the wrong-size-estimate
//! regressions: an under-estimate must degrade mid-run instead of
//! aborting, an over-estimate must not partition at all.

use reldiv_core::api::{divide_with_report, DivisionConfig, OverflowPolicy, Source};
use reldiv_core::{Algorithm, DivisionSpec, HashDivisionMode};
use reldiv_rel::tuple::ints;
use reldiv_rel::{RecordCodec, Relation};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{StorageManager, StorageRef};
use reldiv_workload::{zipf_workload, WorkloadSpec};

/// The acceptance budgets: 16 KB squeezes every cell, 1 MB fits most.
const BUDGETS: [usize; 4] = [16 << 10, 64 << 10, 256 << 10, 1 << 20];

/// Table 4's nine `(|S|, |Q|)` configurations.
const GRID: [(u64, u64); 9] = [
    (25, 25),
    (25, 100),
    (25, 400),
    (100, 25),
    (100, 100),
    (100, 400),
    (400, 25),
    (400, 100),
    (400, 400),
];

fn storage() -> StorageRef {
    // A generous shared pool: the per-query budget (a child pool) is the
    // only constraint under test.
    StorageManager::shared(StorageConfig::large())
}

/// Canonical bytes of a relation: rows sorted on all columns, then
/// encoded with the record codec. Two relations with these bytes equal
/// are byte-identical quotients.
fn canonical_bytes(rel: &Relation) -> Vec<u8> {
    let mut sorted = rel.clone();
    let all: Vec<usize> = (0..rel.schema().arity()).collect();
    sorted.sort_by_keys(&all);
    let codec = RecordCodec::new(rel.schema().clone());
    let mut bytes = Vec::new();
    for t in sorted.tuples() {
        bytes.extend_from_slice(&codec.encode(t).expect("encodable tuple"));
    }
    bytes
}

/// The naive oracle, unbudgeted.
fn oracle(dividend: &Relation, divisor: &Relation) -> Vec<u8> {
    let st = storage();
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
    let (rel, _) = divide_with_report(
        &st,
        &Source::from_relation(dividend),
        &Source::from_relation(divisor),
        &spec,
        Algorithm::Naive,
        &DivisionConfig::default(),
    )
    .unwrap();
    canonical_bytes(&rel)
}

/// Runs hash-division under `policy` with a per-query `budget`.
fn budgeted_division(
    dividend: &Relation,
    divisor: &Relation,
    policy: OverflowPolicy,
    budget: usize,
) -> reldiv_core::Result<(Relation, reldiv_core::DegradationReport)> {
    let st = storage();
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
    let config = DivisionConfig {
        overflow: policy,
        mem_budget: Some(budget),
        ..DivisionConfig::default()
    };
    divide_with_report(
        &st,
        &Source::from_relation(dividend),
        &Source::from_relation(divisor),
        &spec,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        &config,
    )
}

/// One workload of the grid sweep: the relations plus a label for
/// assertion messages.
struct Cell {
    label: String,
    dividend: Relation,
    divisor: Relation,
}

/// Uniform Table 4 cell: `R = Q × S`, shuffled.
fn uniform_cell(s: u64, q: u64) -> Cell {
    let w = WorkloadSpec {
        divisor_size: s,
        quotient_size: q,
        ..WorkloadSpec::default()
    }
    .generate(0x9E37 ^ (s << 16) ^ q);
    Cell {
        label: format!("uniform |S|={s} |Q|={q}"),
        dividend: w.dividend,
        divisor: w.divisor,
    }
}

/// Skewed cell: group 0 is duplicated until it holds ~50% of all dividend
/// tuples. Duplicates leave the quotient unchanged (Figure 1's bit maps
/// are duplicate-insensitive) but concentrate half the stream on one
/// quotient key — the case the hot-group accumulator exists for.
fn hot_group_cell(s: u64, q: u64) -> Cell {
    let base = uniform_cell(s, q);
    let mut rows: Vec<reldiv_rel::Tuple> = base.dividend.tuples().to_vec();
    let others = rows.len() as u64 - s; // tuples not in group 0
    let mut need = others.saturating_sub(s); // extra copies for ~50%
    let mut d = 0u64;
    while need > 0 {
        rows.push(ints(&[0, 1_000_000 + (d % s) as i64]));
        d += 1;
        need -= 1;
    }
    let dividend = Relation::from_tuples(base.dividend.schema().clone(), rows).unwrap();
    Cell {
        label: format!("hot-group |S|={s} |Q|={q}"),
        dividend,
        divisor: base.divisor,
    }
}

/// Zipf cell: `q` complete groups plus `q` incomplete groups whose sizes
/// follow a Zipf(1.1) distribution over the divisor — a few near-complete
/// groups, a long tail of tiny ones.
fn zipf_cell(s: u64, q: u64) -> Cell {
    let w = zipf_workload(s, q, q, 1.1, 0xC0FFEE ^ (s << 16) ^ q);
    Cell {
        label: format!("zipf |S|={s} |Q|={q}"),
        dividend: w.dividend,
        divisor: w.divisor,
    }
}

/// Sweeps the grid under `make_cell`: the adaptive path must match the
/// oracle byte-for-byte at every budget; the surviving static fallbacks
/// (divisor-partitioned and combined) must match wherever they can run at
/// all — their unpartitioned collection table may legitimately exceed the
/// tightest budget, in which case the typed memory error (not a wrong
/// answer) is the only acceptable outcome.
fn sweep(make_cell: fn(u64, u64) -> Cell) {
    for (s, q) in GRID {
        let cell = make_cell(s, q);
        let expected = oracle(&cell.dividend, &cell.divisor);
        for budget in BUDGETS {
            let (rel, report) =
                budgeted_division(&cell.dividend, &cell.divisor, OverflowPolicy::Auto, budget)
                    .unwrap_or_else(|e| panic!("{} budget={budget}: {e}", cell.label));
            assert_eq!(
                canonical_bytes(&rel),
                expected,
                "{} budget={budget}: adaptive quotient differs from oracle (report {report:?})",
                cell.label
            );

            for policy in [
                OverflowPolicy::DivisorPartition { partitions: 16 },
                OverflowPolicy::CombinedPartition {
                    divisor_partitions: 8,
                    quotient_partitions: 8,
                },
            ] {
                match budgeted_division(&cell.dividend, &cell.divisor, policy, budget) {
                    Ok((rel, _)) => assert_eq!(
                        canonical_bytes(&rel),
                        expected,
                        "{} budget={budget} {policy:?}: fallback differs from oracle",
                        cell.label
                    ),
                    Err(e) => assert!(
                        e.is_memory_exhausted() && budget < 256 << 10,
                        "{} budget={budget} {policy:?}: only tight-budget \
                         memory exhaustion is acceptable, got {e}",
                        cell.label
                    ),
                }
            }
        }
    }
}

#[test]
fn adaptive_matches_oracle_on_uniform_grid() {
    sweep(uniform_cell);
}

#[test]
fn adaptive_matches_oracle_under_hot_group_skew() {
    sweep(hot_group_cell);
}

#[test]
fn adaptive_matches_oracle_under_zipf_skew() {
    sweep(zipf_cell);
}

/// Wrong estimate, too low: the optimizer believed the tables would fit
/// (the optimistic in-memory start) but the input is far larger. The
/// division must degrade mid-run — spill, finish, and report it — never
/// surface `MemoryExhausted`.
#[test]
fn under_estimated_memory_degrades_instead_of_aborting() {
    let cell = uniform_cell(25, 400); // ~10k tuples, tables >> 16 KB
    let expected = oracle(&cell.dividend, &cell.divisor);
    for policy in [
        OverflowPolicy::Auto,
        OverflowPolicy::Adaptive { fanout: 16 },
    ] {
        let (rel, report) = budgeted_division(&cell.dividend, &cell.divisor, policy, 16 << 10)
            .expect("an under-estimate must degrade, not abort");
        assert_eq!(canonical_bytes(&rel), expected, "{policy:?}");
        assert!(report.degraded, "{policy:?}: {report:?}");
        assert!(report.partitions_spilled > 0, "{policy:?}: {report:?}");
        assert!(report.retries >= 1, "{policy:?}: {report:?}");
        assert_eq!(
            report.phases[0], "in-memory: memory exhausted",
            "{policy:?}: the optimistic start must be on record"
        );
    }
}

/// Wrong estimate, too high: a generous budget for a small input must not
/// partition, spill, or retry anything — the report stays clean and the
/// only phase is the in-memory one.
#[test]
fn over_estimated_memory_never_partitions() {
    let cell = uniform_cell(25, 25); // 625 tuples, a few KB of tables
    let expected = oracle(&cell.dividend, &cell.divisor);
    for policy in [
        OverflowPolicy::Auto,
        OverflowPolicy::Adaptive { fanout: 16 },
    ] {
        let (rel, report) =
            budgeted_division(&cell.dividend, &cell.divisor, policy, 8 << 20).unwrap();
        assert_eq!(canonical_bytes(&rel), expected, "{policy:?}");
        assert!(!report.degraded, "{policy:?}: {report:?}");
        assert_eq!(report.spill_bytes, 0, "{policy:?}");
        assert_eq!(report.partitions_spilled, 0, "{policy:?}");
        assert_eq!(report.retries, 0, "{policy:?}");
        assert_eq!(report.phases, vec!["in-memory".to_string()], "{policy:?}");
    }
}
