//! Memory-adaptive hybrid hash-division.
//!
//! The paper's Section 3.4 overflow story is a *static* ladder: a
//! partitioning mode and cluster count are chosen up front (from size
//! estimates) and the whole division restarts on every rung. This module
//! replaces the quotient-side rungs with a *dynamic* hybrid in the style
//! of robust dynamic hybrid hash-join:
//!
//! * **Optimistic start.** The dividend is routed into `fanout` quotient
//!   partitions, all memory-resident. A division that fits never touches
//!   disk and reports the clean `"in-memory"` phase.
//! * **Incremental spill.** When the pool is exhausted, the *largest*
//!   resident partition is evicted: its table is serialized to a partition
//!   file and its memory freed. Only as many partitions spill as the
//!   actual input requires.
//! * **Skew handling.** A spilled partition keeps a one-entry *hot group*
//!   accumulator: the first quotient key seen after the spill is adopted
//!   and absorbs its tuples in memory, so one huge group (the classic
//!   skew case) does not force a delta record per tuple. A miss streak
//!   re-adopts the currently hot key.
//! * **Revive.** Between tuples the driver watches the pool; when memory
//!   frees up (another query finished), a spilled partition is re-admitted
//!   with a fresh resident table.
//! * **Bounded recursion.** After the input is consumed, each spilled
//!   partition is merged back in memory; a partition that still does not
//!   fit is re-partitioned by the next hash level and retried, down to
//!   [`MAX_RECURSION_DEPTH`] levels, past which the typed
//!   [`ExecError::RecursionLimit`] is returned.
//!
//! Spill files come in two fixed-width record layouts per partition: a
//! *state* file of whole table entries (quotient columns + bit-map words,
//! or an accumulated count in counter mode) and a *delta* file of single
//! matched tuples (quotient columns + divisor number). Merging ORs state
//! bit maps and sets delta bits, so duplicate dividend tuples stay
//! harmless in the bit-map modes exactly as in Figure 1.
//!
//! Every decision is recorded: spills/revives/recursion in the
//! [`DegradationReport`] and as [`SpanKind::Spill`]/[`SpanKind::Revive`]
//! profile spans.

use reldiv_exec::cancel::CancelToken;
use reldiv_exec::hash_table::ChainedTable;
use reldiv_exec::op::BoxedOp;
use reldiv_exec::profile::{ProfileSink, SpanKind, SpanScope};
use reldiv_rel::schema::Field;
use reldiv_rel::{RecordCodec, Relation, Schema, Tuple, Value};
use reldiv_storage::memory::Reservation;
use reldiv_storage::{FileId, MemoryPool, StorageManager, StorageRef};

use crate::bitmap::Bitmap;
use crate::hash_division::{DivisorTable, HashDivisionMode};
use crate::overflow::for_each_record;
use crate::report::DegradationReport;
use crate::spec::DivisionSpec;
use crate::{ExecError, Result};

/// Default number of quotient-hash partitions for the adaptive path.
pub const DEFAULT_FANOUT: usize = 16;

/// Re-partitioning recursion bound: a partition that still exceeds the
/// budget after this many hash levels yields [`ExecError::RecursionLimit`]
/// (the signal that the *divisor* side must be partitioned instead).
pub const MAX_RECURSION_DEPTH: u32 = 6;

/// Tuples between revive checks of the memory pool.
const REVIVE_STRIDE: u64 = 256;

/// Consecutive hot-group misses before the accumulator re-adopts.
const HOT_MISS_LIMIT: u32 = 16;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Routes a quotient-key hash to a partition at recursion `level`. Each
/// level remixes with a different seed so sub-partitions of one partition
/// spread evenly.
fn route(h: u64, level: u32, fanout: usize) -> usize {
    (splitmix64(h ^ u64::from(level).wrapping_mul(0xA076_1D64_78BD_642F)) as usize) % fanout
}

/// One quotient group: candidate tuple plus its bit map (or counter).
struct HEntry {
    tuple: Tuple,
    bitmap: Bitmap,
    count: u32,
}

impl HEntry {
    fn complete(&self, counter: bool, divisor_count: u32) -> bool {
        if counter {
            self.count == divisor_count
        } else {
            self.bitmap.all_set()
        }
    }
}

/// A resident partition's quotient table, memory-accounted like
/// [`crate::hash_division::QuotientTable`] but exposing its footprint
/// (victim policy) and entry iteration (spilling).
struct HybridTable {
    table: ChainedTable<HEntry>,
    payload: Reservation,
    counter: bool,
    divisor_count: u32,
    qcols: Vec<usize>,
    entry_bytes: usize,
}

impl HybridTable {
    fn new(
        pool: &MemoryPool,
        counter: bool,
        divisor_count: u32,
        quotient_arity: usize,
        quotient_width: usize,
    ) -> Result<Self> {
        let bits = if counter { 0 } else { divisor_count as usize };
        Ok(HybridTable {
            table: ChainedTable::new(pool, 16)?,
            payload: pool.reserve(0)?,
            counter,
            divisor_count,
            qcols: (0..quotient_arity).collect(),
            entry_bytes: quotient_width + Bitmap::heap_bytes(bits),
        })
    }

    /// Accounted bytes: buckets, chain elements, tuples, bit maps.
    fn footprint(&self) -> usize {
        self.table.accounted_bytes() + self.payload.bytes()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn entry(&self, idx: u32) -> &HEntry {
        self.table.get(idx)
    }

    fn find_or_insert(&mut self, q: &Tuple, h: u64) -> Result<u32> {
        if let Some(idx) = self
            .table
            .find(h, |e| q.eq_on(&self.qcols, &e.tuple, &self.qcols))
        {
            return Ok(idx);
        }
        self.payload.grow(self.entry_bytes)?;
        let bits = if self.counter {
            0
        } else {
            self.divisor_count as usize
        };
        self.table.insert(
            h,
            HEntry {
                tuple: q.clone(),
                bitmap: Bitmap::new(bits),
                count: 0,
            },
        )
    }

    /// Absorbs one matched dividend tuple, already projected onto the
    /// quotient columns. `None` means the divisor is empty (vacuous).
    fn absorb(&mut self, q: &Tuple, h: u64, dno: Option<u32>) -> Result<()> {
        let idx = self.find_or_insert(q, h)?;
        let counter = self.counter;
        let e = self.table.get_mut(idx);
        match dno {
            Some(d) if !counter => {
                e.bitmap.set(d as usize);
            }
            Some(_) => e.count += 1,
            None => {}
        }
        Ok(())
    }

    /// Merges a state record: whole bit-map words (or a count).
    fn merge_state(&mut self, q: &Tuple, h: u64, words: &[u64], count: u32) -> Result<()> {
        let idx = self.find_or_insert(q, h)?;
        let counter = self.counter;
        let e = self.table.get_mut(idx);
        if counter {
            e.count += count;
        } else {
            e.bitmap.or_words(words.iter().copied());
        }
        Ok(())
    }

    /// Merges a whole in-memory entry (a revived partition adopting its
    /// hot group).
    fn merge_entry(&mut self, entry: &HEntry, h: u64) -> Result<()> {
        if self.counter {
            self.merge_state(&entry.tuple, h, &[], entry.count)
        } else {
            self.merge_state(&entry.tuple, h, entry.bitmap.words(), 0)
        }
    }

    /// Step 3: emits every complete candidate into `out`.
    fn emit_complete(&self, out: &mut Relation) -> Result<()> {
        for idx in 0..self.table.len() {
            let e = self.table.get(idx as u32);
            if e.complete(self.counter, self.divisor_count) {
                out.push(e.tuple.clone()).map_err(ExecError::from)?;
            }
        }
        Ok(())
    }
}

/// The hot-group accumulator of a spilled partition.
struct HotGroup {
    entry: HEntry,
    /// Accounts the entry's bytes so skew handling respects the budget.
    _mem: Reservation,
}

/// One append-only spill file with its byte/record accounting.
struct SpillFile {
    file: FileId,
    bytes: u64,
}

/// One quotient partition of the adaptive hybrid.
#[derive(Default)]
struct Partition {
    /// The resident table; `None` when untouched or spilled.
    resident: Option<HybridTable>,
    /// Whether the partition has been evicted (distinguishes "spilled"
    /// from "never touched").
    spilled: bool,
    /// Serialized table entries (quotient + bit-map words / count).
    state: Option<SpillFile>,
    /// Single matched tuples (quotient + divisor number).
    delta: Option<SpillFile>,
    hot: Option<HotGroup>,
    hot_misses: u32,
}

/// Spill-record codecs shared by every partition and recursion level.
struct SpillCodecs {
    state: RecordCodec,
    delta: RecordCodec,
    /// Bit-map word columns in the state schema (0 in counter mode).
    words: usize,
    /// Quotient arity — the leading columns of both record layouts.
    qar: usize,
}

impl SpillCodecs {
    fn new(quotient_schema: &Schema, counter: bool, divisor_count: u32) -> Self {
        let qar = quotient_schema.arity();
        let words = if counter {
            0
        } else {
            (divisor_count as usize).div_ceil(64)
        };
        let mut state_fields = quotient_schema.fields().to_vec();
        if counter {
            state_fields.push(Field::int("count"));
        } else {
            for w in 0..words {
                state_fields.push(Field::int(format!("w{w}")));
            }
        }
        let mut delta_fields = quotient_schema.fields().to_vec();
        delta_fields.push(Field::int("dno"));
        SpillCodecs {
            state: RecordCodec::new(Schema::new(state_fields)),
            delta: RecordCodec::new(Schema::new(delta_fields)),
            words,
            qar,
        }
    }

    /// `(quotient projection, bit-map words, count)` of a state record.
    fn decode_state(&self, t: &Tuple) -> (Tuple, Vec<u64>, u32) {
        let q = t.project(&(0..self.qar).collect::<Vec<_>>());
        if self.words == 0 && self.state.schema().arity() > self.qar {
            let count = t.value(self.qar).as_int().unwrap_or(0) as u32;
            (q, Vec::new(), count)
        } else {
            let words = (0..self.words)
                .map(|w| t.value(self.qar + w).as_int().unwrap_or(0) as u64)
                .collect();
            (q, words, 0)
        }
    }

    /// `(quotient projection, divisor number)` of a delta record; a
    /// negative column means "no divisor number" (vacuous divisor).
    fn decode_delta(&self, t: &Tuple) -> (Tuple, Option<u32>) {
        let q = t.project(&(0..self.qar).collect::<Vec<_>>());
        let dno = match t.value(self.qar).as_int() {
            Some(d) if d >= 0 => Some(d as u32),
            _ => None,
        };
        (q, dno)
    }
}

/// The adaptive-hybrid driver state.
struct Hybrid<'a> {
    storage: &'a StorageRef,
    pool: MemoryPool,
    counter: bool,
    divisor_count: u32,
    quotient_schema: Schema,
    qcols: Vec<usize>,
    qwidth: usize,
    codecs: SpillCodecs,
    fanout: usize,
    cancel: CancelToken,
    budget: u32,
    profile: Option<&'a ProfileSink>,
    /// Pool headroom that triggers a revive.
    revive_threshold: usize,
    /// Every spill file ever created, deleted in one sweep at the end so
    /// an abandoned run (fallback to divisor partitioning) cannot leak
    /// temporary files.
    created: Vec<FileId>,
}

impl<'a> Hybrid<'a> {
    fn new_table(&self) -> Result<HybridTable> {
        HybridTable::new(
            &self.pool,
            self.counter,
            self.divisor_count,
            self.qcols.len(),
            self.qwidth,
        )
    }

    fn span(&self, label: String, kind: SpanKind) -> Option<SpanScope> {
        self.profile
            .map(|sink| SpanScope::enter(sink, label, kind, Some(self.storage.clone())))
    }

    fn create_file(&mut self) -> FileId {
        let f = self
            .storage
            .borrow_mut()
            .create_file(StorageManager::DATA_DISK);
        self.created.push(f);
        f
    }

    /// Appends a state record for `entry`, creating the file on first use.
    /// Returns the bytes written (the caller decides spill vs respool).
    fn append_state(&mut self, slot: &mut Option<SpillFile>, entry: &HEntry) -> Result<u64> {
        let mut vals = entry.tuple.clone().into_values();
        if self.counter {
            vals.push(Value::Int(i64::from(entry.count)));
        } else {
            for w in 0..self.codecs.words {
                let word = entry.bitmap.words().get(w).copied().unwrap_or(0);
                vals.push(Value::Int(word as i64));
            }
        }
        let record = self.codecs.state.encode(&Tuple::new(vals))?;
        if slot.is_none() {
            let file = self.create_file();
            *slot = Some(SpillFile { file, bytes: 0 });
        }
        let sf = slot.as_mut().expect("just created");
        self.storage.borrow_mut().append(sf.file, &record)?;
        sf.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Appends a delta record for one matched tuple.
    fn append_delta(
        &mut self,
        slot: &mut Option<SpillFile>,
        q: &Tuple,
        dno: Option<u32>,
    ) -> Result<u64> {
        let mut vals = q.clone().into_values();
        vals.push(Value::Int(dno.map_or(-1, i64::from)));
        let record = self.codecs.delta.encode(&Tuple::new(vals))?;
        if slot.is_none() {
            let file = self.create_file();
            *slot = Some(SpillFile { file, bytes: 0 });
        }
        let sf = slot.as_mut().expect("just created");
        self.storage.borrow_mut().append(sf.file, &record)?;
        sf.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Evicts the largest resident partition. Returns `false` when no
    /// partition is resident (nothing left to evict).
    fn spill_victim(
        &mut self,
        parts: &mut [Partition],
        report: &mut DegradationReport,
    ) -> Result<bool> {
        let victim = parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.resident.as_ref().map(|t| (i, t.footprint())))
            .max_by_key(|&(_, f)| f);
        let Some((vi, _)) = victim else {
            return Ok(false);
        };
        let table = parts[vi].resident.take().expect("victim is resident");
        parts[vi].spilled = true;
        parts[vi].hot_misses = 0;
        let _span = self.span(
            format!("spill p{vi} ({} groups)", table.len()),
            SpanKind::Spill,
        );
        let mut bytes = 0u64;
        let mut state = parts[vi].state.take();
        for idx in 0..table.len() {
            self.cancel.checkpoint(&mut self.budget)?;
            bytes += self.append_state(&mut state, table.entry(idx as u32))?;
        }
        parts[vi].state = state;
        drop(table); // releases the partition's reservations
        report.note_spill(bytes);
        Ok(true)
    }

    /// Adopts `q` as the hot group of a spilled partition; falls back to a
    /// delta record when even one entry does not fit.
    fn adopt_hot(
        &mut self,
        part: &mut Partition,
        q: Tuple,
        dno: Option<u32>,
        report: &mut DegradationReport,
    ) -> Result<()> {
        let bits = if self.counter {
            0
        } else {
            self.divisor_count as usize
        };
        match self.pool.reserve(self.qwidth + Bitmap::heap_bytes(bits)) {
            Ok(mem) => {
                let mut bitmap = Bitmap::new(bits);
                let mut count = 0;
                match dno {
                    Some(d) if !self.counter => {
                        bitmap.set(d as usize);
                    }
                    Some(_) => count = 1,
                    None => {}
                }
                part.hot = Some(HotGroup {
                    entry: HEntry {
                        tuple: q,
                        bitmap,
                        count,
                    },
                    _mem: mem,
                });
                Ok(())
            }
            Err(_) => {
                let mut delta = part.delta.take();
                let bytes = self.append_delta(&mut delta, &q, dno)?;
                part.delta = delta;
                report.spill_bytes += bytes;
                Ok(())
            }
        }
    }

    /// Absorbs a matched tuple into a spilled partition: the hot-group
    /// accumulator when the key matches, a delta record otherwise.
    fn absorb_spilled(
        &mut self,
        parts: &mut [Partition],
        p: usize,
        q: Tuple,
        dno: Option<u32>,
        report: &mut DegradationReport,
    ) -> Result<()> {
        let part = &mut parts[p];
        if let Some(hot) = &mut part.hot {
            if hot.entry.tuple.eq_on(&self.qcols, &q, &self.qcols) {
                match dno {
                    Some(d) if !self.counter => {
                        hot.entry.bitmap.set(d as usize);
                    }
                    Some(_) => hot.entry.count += 1,
                    None => {}
                }
                part.hot_misses = 0;
                return Ok(());
            }
            part.hot_misses += 1;
            if part.hot_misses >= HOT_MISS_LIMIT {
                // The adopted group went cold: flush it and re-adopt.
                let hot = part.hot.take().expect("checked above");
                let mut state = part.state.take();
                let bytes = self.append_state(&mut state, &hot.entry)?;
                let part = &mut parts[p];
                part.state = state;
                part.hot_misses = 0;
                report.spill_bytes += bytes;
                return self.adopt_hot(&mut parts[p], q, dno, report);
            }
            let mut delta = part.delta.take();
            let bytes = self.append_delta(&mut delta, &q, dno)?;
            let part = &mut parts[p];
            part.delta = delta;
            report.spill_bytes += bytes;
            return Ok(());
        }
        self.adopt_hot(&mut parts[p], q, dno, report)
    }

    /// Routes one matched tuple, spilling victims until it lands.
    #[allow(clippy::too_many_arguments)]
    fn absorb(
        &mut self,
        parts: &mut [Partition],
        p: usize,
        q: Tuple,
        h: u64,
        dno: Option<u32>,
        spilled_yet: &mut bool,
        report: &mut DegradationReport,
    ) -> Result<()> {
        loop {
            if parts[p].spilled {
                return self.absorb_spilled(parts, p, q, dno, report);
            }
            if parts[p].resident.is_none() {
                match self.new_table() {
                    Ok(t) => parts[p].resident = Some(t),
                    Err(e) if e.is_memory_exhausted() => {
                        self.note_first_spill(spilled_yet, report);
                        if !self.spill_victim(parts, report)? {
                            // Nothing to evict: even an empty table does
                            // not fit. Run this partition spilled.
                            parts[p].spilled = true;
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match parts[p]
                .resident
                .as_mut()
                .expect("just ensured")
                .absorb(&q, h, dno)
            {
                Ok(()) => return Ok(()),
                Err(e) if e.is_memory_exhausted() => {
                    self.note_first_spill(spilled_yet, report);
                    // The victim may be `p` itself (largest wins); the
                    // next iteration lands on the spilled path then.
                    if !self.spill_victim(parts, report)? {
                        parts[p].spilled = true;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn note_first_spill(&self, spilled_yet: &mut bool, report: &mut DegradationReport) {
        if *spilled_yet {
            return;
        }
        *spilled_yet = true;
        if let Some(last) = report.phases.last_mut() {
            last.push_str(": memory exhausted");
        }
        report.note_retry();
        report.note_phase(format!("adaptive-hybrid f={}", self.fanout));
    }

    /// Re-admits one spilled partition when the pool has headroom again.
    fn maybe_revive(
        &mut self,
        parts: &mut [Partition],
        report: &mut DegradationReport,
    ) -> Result<()> {
        if self.pool.available() < self.revive_threshold {
            return Ok(());
        }
        let Some(vi) = parts.iter().position(|p| p.spilled) else {
            return Ok(());
        };
        let mut table = match self.new_table() {
            Ok(t) => t,
            // The headroom estimate was optimistic; stay spilled.
            Err(e) if e.is_memory_exhausted() => return Ok(()),
            Err(e) => return Err(e),
        };
        let _span = self.span(format!("revive p{vi}"), SpanKind::Revive);
        if let Some(hot) = parts[vi].hot.take() {
            let h = hot.entry.tuple.hash_on(&self.qcols);
            match table.merge_entry(&hot.entry, h) {
                Ok(()) => {}
                Err(e) if e.is_memory_exhausted() => {
                    // Keep the hot group where it was and abort the revive.
                    parts[vi].hot = Some(hot);
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        parts[vi].resident = Some(table);
        parts[vi].spilled = false;
        parts[vi].hot_misses = 0;
        report.note_revive();
        Ok(())
    }

    /// Streams the partition's spill files into a fresh table. On memory
    /// exhaustion the partial table is discarded (the files still hold
    /// every record) and the caller re-partitions.
    fn try_merge(
        &mut self,
        state: &Option<SpillFile>,
        delta: &Option<SpillFile>,
    ) -> Result<HybridTable> {
        let mut table = self.new_table()?;
        let cancel = self.cancel;
        let mut budget = self.budget;
        if let Some(sf) = state {
            let codecs = &self.codecs;
            let qcols = &self.qcols;
            for_each_record(self.storage, sf.file, &codecs.state, |t| {
                cancel.checkpoint(&mut budget)?;
                let (q, words, count) = codecs.decode_state(&t);
                let h = q.hash_on(qcols);
                table.merge_state(&q, h, &words, count)
            })?;
        }
        if let Some(df) = delta {
            let codecs = &self.codecs;
            let qcols = &self.qcols;
            for_each_record(self.storage, df.file, &codecs.delta, |t| {
                cancel.checkpoint(&mut budget)?;
                let (q, dno) = codecs.decode_delta(&t);
                let h = q.hash_on(qcols);
                table.absorb(&q, h, dno)
            })?;
        }
        self.budget = budget;
        Ok(table)
    }

    /// Splits a partition's spill files into `fanout` sub-partitions with
    /// the next hash level. The bytes are *re-spooled* (already spilled
    /// once), so they land in `respool_bytes`, never `spill_bytes`.
    fn repartition(
        &mut self,
        state: Option<SpillFile>,
        delta: Option<SpillFile>,
        level: u32,
        report: &mut DegradationReport,
    ) -> Result<Vec<(Option<SpillFile>, Option<SpillFile>)>> {
        let _span = self.span(format!("repartition level={level}"), SpanKind::Spill);
        let mut subs: Vec<(Option<SpillFile>, Option<SpillFile>)> =
            (0..self.fanout).map(|_| (None, None)).collect();
        let cancel = self.cancel;
        let mut budget = self.budget;
        let fanout = self.fanout;
        if let Some(sf) = &state {
            // Collect first: `for_each_record` holds the storage borrow.
            let mut routed: Vec<(usize, Tuple)> = Vec::new();
            {
                let codecs = &self.codecs;
                let qcols = &self.qcols;
                for_each_record(self.storage, sf.file, &codecs.state, |t| {
                    cancel.checkpoint(&mut budget)?;
                    let (q, _, _) = codecs.decode_state(&t);
                    let h = q.hash_on(qcols);
                    routed.push((route(h, level, fanout), t));
                    Ok(())
                })?;
            }
            for (sub, t) in routed {
                let record = self.codecs.state.encode(&t)?;
                if subs[sub].0.is_none() {
                    let file = self.create_file();
                    subs[sub].0 = Some(SpillFile { file, bytes: 0 });
                }
                let slot = subs[sub].0.as_mut().expect("just created");
                self.storage.borrow_mut().append(slot.file, &record)?;
                slot.bytes += record.len() as u64;
                report.respool_bytes += record.len() as u64;
            }
        }
        if let Some(df) = &delta {
            let mut routed: Vec<(usize, Tuple)> = Vec::new();
            {
                let codecs = &self.codecs;
                let qcols = &self.qcols;
                for_each_record(self.storage, df.file, &codecs.delta, |t| {
                    cancel.checkpoint(&mut budget)?;
                    let (q, _) = codecs.decode_delta(&t);
                    let h = q.hash_on(qcols);
                    routed.push((route(h, level, fanout), t));
                    Ok(())
                })?;
            }
            for (sub, t) in routed {
                let record = self.codecs.delta.encode(&t)?;
                if subs[sub].1.is_none() {
                    let file = self.create_file();
                    subs[sub].1 = Some(SpillFile { file, bytes: 0 });
                }
                let slot = subs[sub].1.as_mut().expect("just created");
                self.storage.borrow_mut().append(slot.file, &record)?;
                slot.bytes += record.len() as u64;
                report.respool_bytes += record.len() as u64;
            }
        }
        self.budget = budget;
        Ok(subs)
    }

    /// Merges one partition's files, recursing on exhaustion. `depth` is
    /// the current recursion level (0 for the first pass).
    fn merge_files(
        &mut self,
        label: usize,
        state: Option<SpillFile>,
        delta: Option<SpillFile>,
        depth: u32,
        result: &mut Relation,
        report: &mut DegradationReport,
    ) -> Result<()> {
        if state.is_none() && delta.is_none() {
            return Ok(());
        }
        let span = self.span(format!("merge p{label} depth={depth}"), SpanKind::Partition);
        match self.try_merge(&state, &delta) {
            Ok(table) => {
                table.emit_complete(result)?;
                drop(span);
                Ok(())
            }
            Err(e) if e.is_memory_exhausted() => {
                drop(span);
                if depth >= MAX_RECURSION_DEPTH {
                    return Err(ExecError::RecursionLimit { depth });
                }
                report.note_recursion(depth + 1);
                let subs = self.repartition(state, delta, depth + 1, report)?;
                for (i, (s, d)) in subs.into_iter().enumerate() {
                    self.merge_files(i, s, d, depth + 1, result, report)?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Finishes one partition after the input is consumed.
    fn finish_partition(
        &mut self,
        parts: &mut [Partition],
        p: usize,
        result: &mut Relation,
        report: &mut DegradationReport,
    ) -> Result<()> {
        let resident = parts[p].resident.take();
        let hot = parts[p].hot.take();
        let has_file = parts[p].state.is_some() || parts[p].delta.is_some();
        if !has_file {
            // Fully in-memory: emit straight from the table (and the hot
            // group of a partition that spilled before writing anything).
            if let Some(table) = resident {
                table.emit_complete(result)?;
            }
            if let Some(hot) = hot {
                if hot.entry.complete(self.counter, self.divisor_count) {
                    result
                        .push(hot.entry.tuple.clone())
                        .map_err(ExecError::from)?;
                }
            }
            return Ok(());
        }
        // Flush the in-memory remains so the files hold every record, then
        // merge from disk (first-time spills: these bytes never hit a file
        // before).
        let mut state = parts[p].state.take();
        if let Some(table) = resident {
            let mut bytes = 0u64;
            for idx in 0..table.len() {
                self.cancel.checkpoint(&mut self.budget)?;
                bytes += self.append_state(&mut state, table.entry(idx as u32))?;
            }
            report.spill_bytes += bytes;
        }
        if let Some(hot) = hot {
            report.spill_bytes += self.append_state(&mut state, &hot.entry)?;
        }
        let delta = parts[p].delta.take();
        self.merge_files(p, state, delta, 0, result, report)
    }

    fn run(
        &mut self,
        mut dividend: BoxedOp,
        dt: &DivisorTable,
        divisor_keys: &[usize],
        quotient_keys: &[usize],
        report: &mut DegradationReport,
    ) -> Result<Relation> {
        let mut parts: Vec<Partition> = (0..self.fanout).map(|_| Partition::default()).collect();
        let mut result = Relation::empty(self.quotient_schema.clone());
        let mut spilled_yet = false;
        let mut seen = 0u64;
        dividend.open()?;
        while let Some(t) = dividend.next()? {
            self.cancel.checkpoint(&mut self.budget)?;
            let dno = if dt.count() == 0 {
                None // empty divisor: vacuously matched
            } else {
                match dt.lookup(&t, divisor_keys) {
                    Some(d) => Some(d),
                    None => continue, // no divisor match: discard
                }
            };
            let q = t.project(quotient_keys);
            let h = q.hash_on(&self.qcols);
            let p = route(h, 0, self.fanout);
            self.absorb(&mut parts, p, q, h, dno, &mut spilled_yet, report)?;
            seen += 1;
            if spilled_yet && seen % REVIVE_STRIDE == 0 {
                self.maybe_revive(&mut parts, report)?;
            }
        }
        dividend.close()?;
        for p in 0..self.fanout {
            self.finish_partition(&mut parts, p, &mut result, report)?;
        }
        Ok(result)
    }

    /// Deletes every spill file created during the run, success or not.
    fn cleanup(&mut self) {
        let mut sm = self.storage.borrow_mut();
        for f in self.created.drain(..) {
            let _ = sm.delete_file(f);
        }
    }
}

/// Memory-adaptive hybrid hash-division with spill accounting into
/// `report` and optional profiling.
///
/// The divisor table must fit in the pool (as with quotient partitioning,
/// "the divisor table must be kept in main memory during all phases");
/// `MemoryExhausted` from its build is the caller's cue to partition the
/// divisor instead.
#[allow(clippy::too_many_arguments)] // the full division context
pub fn adaptive_hybrid_report(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: BoxedOp,
    mut divisor: BoxedOp,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    fanout: usize,
    cancel: CancelToken,
    profile: Option<&ProfileSink>,
    report: &mut DegradationReport,
) -> Result<Relation> {
    if fanout < 2 {
        return Err(ExecError::Plan("adaptive hybrid needs fanout >= 2".into()));
    }
    spec.validate(dividend.schema(), divisor.schema())?;
    let quotient_schema = spec.quotient_schema(dividend.schema())?;
    report.note_phase("in-memory");
    let span = profile.map(|sink| {
        SpanScope::enter(
            sink,
            "hash-division (adaptive)",
            SpanKind::HashDivision,
            Some(storage.clone()),
        )
    });

    // Step 1 once: the divisor table stays resident for every phase.
    let dt = DivisorTable::build(&mut divisor, pool)?;

    // EarlyOut's incremental emission cannot survive a spill (a completed
    // candidate would be re-emitted by the merge pass), so the adaptive
    // path runs it as Standard; the quotient set is identical.
    let counter = mode == HashDivisionMode::CounterOnly;
    let mut hybrid = Hybrid {
        storage,
        pool: pool.clone(),
        counter,
        divisor_count: dt.count(),
        qcols: (0..spec.quotient_keys.len()).collect(),
        qwidth: quotient_schema.record_width(),
        codecs: SpillCodecs::new(&quotient_schema, counter, dt.count()),
        quotient_schema,
        fanout,
        cancel,
        budget: 0,
        profile,
        // Two average partitions' worth of headroom: one spill frees about
        // capacity/fanout, so a single-partition threshold would let every
        // spill immediately trigger a revive (spill-revive churn). Real
        // headroom (a neighbour query finishing) clears the bar.
        revive_threshold: (2 * (pool.capacity() / fanout)).max(8 * 1024),
        created: Vec::new(),
    };
    let result = hybrid.run(
        dividend,
        &dt,
        &spec.divisor_keys,
        &spec.quotient_keys,
        report,
    );
    hybrid.cleanup();
    drop(span);
    result
}

/// [`adaptive_hybrid_report`] without cancellation, profiling, or an
/// existing report — the plain entry point for tests and tools.
pub fn adaptive_hybrid(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    fanout: usize,
) -> Result<(Relation, DegradationReport)> {
    let mut report = DegradationReport::new();
    let rel = adaptive_hybrid_report(
        storage,
        pool,
        dividend,
        divisor,
        spec,
        mode,
        fanout,
        CancelToken::none(),
        None,
        &mut report,
    )?;
    Ok((rel, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_exec::op::Operator;
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::StorageConfig;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn storage() -> StorageRef {
        StorageManager::shared(StorageConfig::large())
    }

    fn sids(rel: &Relation) -> Vec<i64> {
        let mut v: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        v.sort_unstable();
        v
    }

    fn run_with_pool(
        dividend: &Relation,
        divisor: &Relation,
        mode: HashDivisionMode,
        pool: MemoryPool,
    ) -> (Vec<i64>, DegradationReport) {
        let st = storage();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (rel, report) = adaptive_hybrid(
            &st,
            &pool,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            mode,
            DEFAULT_FANOUT,
        )
        .unwrap();
        (sids(&rel), report)
    }

    fn workload() -> (Relation, Relation, Vec<i64>) {
        let mut rows = Vec::new();
        for s in 0..60i64 {
            for c in 0..=(s % 13) {
                rows.push([s, c]);
            }
        }
        let expected: Vec<i64> = (0..60).filter(|s| s % 13 >= 7).collect();
        (
            transcript(&rows),
            courses(&(0..8).collect::<Vec<_>>()),
            expected,
        )
    }

    #[test]
    fn clean_run_spills_nothing() {
        let (dividend, divisor, expected) = workload();
        for mode in [HashDivisionMode::Standard, HashDivisionMode::EarlyOut] {
            let (out, report) = run_with_pool(&dividend, &divisor, mode, MemoryPool::unbounded());
            assert_eq!(out, expected, "{mode:?}");
            assert!(!report.degraded, "{mode:?}");
            assert_eq!(report.final_phase(), Some("in-memory"));
            assert_eq!(report.spill_bytes, 0);
            assert_eq!(report.partitions_spilled, 0);
        }
    }

    /// Peak memory of a fully in-memory run, for picking budgets that
    /// genuinely under- or over-provision the workload.
    fn in_memory_peak(dividend: &Relation, divisor: &Relation, mode: HashDivisionMode) -> usize {
        let pool = MemoryPool::unbounded();
        run_with_pool(dividend, divisor, mode, pool.clone());
        pool.peak()
    }

    #[test]
    fn tight_budget_spills_and_still_matches() {
        let mut rows = Vec::new();
        for q in 0..3000i64 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let peak = in_memory_peak(&dividend, &divisor, HashDivisionMode::Standard);
        for frac in [8, 4, 2] {
            let budget = peak / frac;
            let (out, report) = run_with_pool(
                &dividend,
                &divisor,
                HashDivisionMode::Standard,
                MemoryPool::new(budget),
            );
            assert_eq!(out.len(), 3000, "budget={budget}");
            assert_eq!(out, (0..3000).collect::<Vec<_>>());
            assert!(report.degraded, "budget={budget}");
            assert!(report.partitions_spilled > 0, "budget={budget}");
            assert!(report.spill_bytes > 0);
            assert_eq!(report.phases[0], "in-memory: memory exhausted");
            assert!(report.final_phase().unwrap().starts_with("adaptive-hybrid"));
        }
    }

    #[test]
    fn only_some_partitions_spill_under_mild_pressure() {
        // A budget that holds most of the quotient table: the adaptive
        // path must not evict all 16 partitions.
        let mut rows = Vec::new();
        for q in 0..2000i64 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let peak = in_memory_peak(&dividend, &divisor, HashDivisionMode::Standard);
        let (out, report) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::Standard,
            MemoryPool::new(peak * 7 / 8),
        );
        assert_eq!(out.len(), 2000);
        assert!(report.partitions_spilled >= 1);
        assert!(
            report.partitions_spilled < DEFAULT_FANOUT as u32,
            "incremental spill must keep some partitions resident: {}",
            report.partitions_spilled
        );
    }

    #[test]
    fn counter_mode_matches_under_pressure() {
        let mut rows = Vec::new();
        for q in 0..2500i64 {
            rows.push([q, 1]);
            if q % 3 == 0 {
                rows.push([q, 2]);
            }
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let expected: Vec<i64> = (0..2500).filter(|q| q % 3 == 0).collect();
        let (out, report) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::CounterOnly,
            MemoryPool::new(32 * 1024),
        );
        assert_eq!(out, expected);
        assert!(report.degraded);
    }

    #[test]
    fn empty_divisor_is_vacuous() {
        let dividend = transcript(&[[1, 10], [2, 20], [1, 30]]);
        let divisor = courses(&[]);
        let (out, _) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        );
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_divisor_is_vacuous_under_pressure() {
        let rows: Vec<[i64; 2]> = (0..4000i64).map(|q| [q, q % 7]).collect();
        let dividend = transcript(&rows);
        let divisor = courses(&[]);
        let (out, report) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::Standard,
            MemoryPool::new(24 * 1024),
        );
        assert_eq!(out, (0..4000).collect::<Vec<_>>());
        assert!(report.degraded);
    }

    #[test]
    fn empty_dividend_is_empty() {
        let (out, report) = run_with_pool(
            &transcript(&[]),
            &courses(&[1]),
            HashDivisionMode::Standard,
            MemoryPool::new(16 * 1024),
        );
        assert!(out.is_empty());
        assert!(!report.degraded);
    }

    #[test]
    fn duplicate_dividend_tuples_stay_harmless_across_spills() {
        // Student 2 has duplicates of (2,1) but never took course 2; a
        // count-based merge would wrongly qualify them.
        let mut rows = vec![[1, 1], [1, 2]];
        for _ in 0..50 {
            rows.push([2, 1]);
        }
        for q in 3..2000i64 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let (out, report) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::Standard,
            MemoryPool::new(24 * 1024),
        );
        let expected: Vec<i64> = std::iter::once(1).chain(3..2000).collect();
        assert_eq!(out, expected);
        assert!(report.degraded, "the workload must actually spill");
    }

    #[test]
    fn skewed_hot_group_accumulates_instead_of_spilling_per_tuple() {
        // One student holds ~50% of the dividend; the hot-group
        // accumulator must keep the spill volume near the non-skewed
        // tuples' share rather than one delta record per hot tuple.
        let mut rows = Vec::new();
        for c in 0..2000i64 {
            rows.push([7, c % 4]); // hot group: 2000 tuples, 4 courses
        }
        for q in 0..500i64 {
            rows.push([1000 + q, 0]);
            rows.push([1000 + q, 1]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[0, 1, 2, 3]);
        let (out, report) = run_with_pool(
            &dividend,
            &divisor,
            HashDivisionMode::Standard,
            MemoryPool::new(16 * 1024),
        );
        assert_eq!(out, vec![7], "only the hot student took all 4 courses");
        assert!(report.degraded);
        // 2000 hot tuples at ~24 bytes each would be ~48 KB of deltas if
        // the hot group spilled per-tuple; the accumulator keeps the
        // total well under that.
        assert!(
            report.spill_bytes < 40_000,
            "hot group must not spill per-tuple: {} bytes",
            report.spill_bytes
        );
    }

    /// An operator that releases an external reservation after N tuples,
    /// simulating a concurrent query finishing mid-stream.
    struct Releasing {
        inner: MemScan,
        release_after: u64,
        seen: u64,
        held: Option<Reservation>,
    }

    impl Operator for Releasing {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }
        fn open(&mut self) -> Result<()> {
            self.inner.open()
        }
        fn next(&mut self) -> Result<Option<Tuple>> {
            self.seen += 1;
            if self.seen == self.release_after {
                self.held = None;
            }
            self.inner.next()
        }
        fn close(&mut self) -> Result<()> {
            self.inner.close()
        }
    }

    #[test]
    fn freed_memory_revives_spilled_partitions() {
        let mut rows = Vec::new();
        for q in 0..4000i64 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let st = storage();
        let pool = MemoryPool::new(256 * 1024);
        // A neighbour hogs 90% of the pool for the first quarter of the
        // stream, then finishes.
        let held = pool.reserve(230 * 1024).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let scan = Releasing {
            inner: MemScan::new(dividend),
            release_after: 2000,
            seen: 0,
            held: Some(held),
        };
        let mut report = DegradationReport::new();
        let rel = adaptive_hybrid_report(
            &st,
            &pool,
            Box::new(scan),
            Box::new(MemScan::new(divisor)),
            &spec,
            HashDivisionMode::Standard,
            DEFAULT_FANOUT,
            CancelToken::none(),
            None,
            &mut report,
        )
        .unwrap();
        assert_eq!(sids(&rel), (0..4000).collect::<Vec<_>>());
        assert!(report.partitions_spilled > 0, "must spill while squeezed");
        assert!(
            report.partitions_revived > 0,
            "freed memory must revive spilled partitions: {report:?}"
        );
    }

    #[test]
    fn impossible_budget_hits_the_recursion_limit() {
        // A divisor so wide that a single bit map exceeds the pool: no
        // amount of quotient re-partitioning can make a group fit, so the
        // typed recursion error must surface (the Auto ladder's cue to
        // partition the divisor instead).
        let mut rows = Vec::new();
        for d in 0..3000i64 {
            rows.push([1, d]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&(0..3000).collect::<Vec<_>>());
        let st = storage();
        // Big enough for the divisor table, too small for any quotient
        // entry's 3000-bit map plus table overhead... the divisor table
        // for 3000 ints needs ~130 KB; give a pool that fits it with only
        // a sliver to spare.
        let dt_pool = MemoryPool::unbounded();
        let mut probe: BoxedOp = Box::new(MemScan::new(divisor.clone()));
        let dt = DivisorTable::build(&mut probe, &dt_pool).unwrap();
        assert_eq!(dt.count(), 3000);
        let needed = dt_pool.peak();
        // Headroom fits an empty partition table but never a 3000-bit
        // quotient entry (~384 bytes of bit map alone), at any depth.
        let pool = MemoryPool::new(needed + 300);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let err = adaptive_hybrid(
            &st,
            &pool,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            HashDivisionMode::Standard,
            4,
        )
        .unwrap_err();
        assert!(err.is_recursion_limit(), "want RecursionLimit, got {err:?}");
    }

    #[test]
    fn respool_bytes_stay_separate_from_spill_bytes() {
        // Force recursion: a modest budget with a huge candidate count
        // makes first-pass merges overflow and re-partition.
        let rows: Vec<[i64; 2]> = (0..12_000i64).map(|q| [q, 1]).collect();
        let dividend = transcript(&rows);
        let divisor = courses(&[1]);
        let st = storage();
        let pool = MemoryPool::new(12 * 1024);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (rel, report) = adaptive_hybrid(
            &st,
            &pool,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            HashDivisionMode::Standard,
            4,
        )
        .unwrap();
        assert_eq!(rel.cardinality(), 12_000);
        assert!(report.recursion_depth >= 1, "{report:?}");
        assert!(report.respool_bytes > 0, "{report:?}");
        // Re-spooled bytes must not inflate the first-time spill count:
        // every dividend tuple is spilled at most once (plus table-state
        // flushes), so spill_bytes stays well under the total rewritten.
        assert!(report.spill_bytes < report.spill_bytes + report.respool_bytes);
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let mut rows = Vec::new();
        for q in 0..3000i64 {
            rows.push([q, 1]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1]);
        let st = storage();
        let files_before = st.borrow().file_count();
        let pool = MemoryPool::new(20 * 1024);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (rel, report) = adaptive_hybrid(
            &st,
            &pool,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            HashDivisionMode::Standard,
            DEFAULT_FANOUT,
        )
        .unwrap();
        assert_eq!(rel.cardinality(), 3000);
        assert!(report.degraded);
        assert_eq!(
            st.borrow().file_count(),
            files_before,
            "all spill files must be deleted"
        );
    }
}
