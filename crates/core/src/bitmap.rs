//! Bit maps for quotient candidates.
//!
//! "The algorithm requires efficient handling of bit maps, including a
//! scan over a possibly large bit map. ... initializing a bit map and
//! searching for a single zero in a bit map can be done by inspecting a
//! word at a time." (Section 3.3.)
//!
//! Single-bit operations count one `Bit` each through
//! [`reldiv_rel::counters`]; whole-map initialization and the final
//! zero-scan count one `Bit` per *word*, reflecting the word-at-a-time
//! implementation the paper assumes.

use reldiv_rel::counters;

/// A fixed-size bit map indexed by divisor numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    bits: usize,
}

impl Bitmap {
    /// Creates a map of `bits` zero bits (one per divisor tuple).
    pub fn new(bits: usize) -> Self {
        let words = bits.div_ceil(64);
        counters::count_bitops(words.max(1) as u64); // word-at-a-time clear
        Bitmap {
            words: vec![0; words],
            bits,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the map has zero bits (an empty divisor).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Heap bytes a map of `bits` bits occupies, for memory accounting.
    pub fn heap_bytes(bits: usize) -> usize {
        bits.div_ceil(64) * 8
    }

    /// Sets bit `i`, returning its previous value.
    ///
    /// The early-output variant of hash-division "tests whether or not this
    /// bit position is set already" before setting — one operation here.
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        counters::count_bitops(1);
        let (w, b) = (i / 64, i % 64);
        let prior = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        prior
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        counters::count_bitops(1);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Tests the map for a zero bit, word at a time: `true` iff all bits
    /// are set. An empty map is vacuously complete.
    pub fn all_set(&self) -> bool {
        counters::count_bitops(self.words.len().max(1) as u64);
        if self.bits == 0 {
            return true;
        }
        let full_words = self.bits / 64;
        if self.words[..full_words].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let rem = self.bits % 64;
        if rem == 0 {
            return true;
        }
        let mask = (1u64 << rem) - 1;
        self.words[full_words] & mask == mask
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words, for spill-record serialization (adaptive-hybrid
    /// overflow writes whole bit maps to partition files).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// OR-merges serialized `words` into this map, word at a time.
    /// Extra trailing words in `words` are ignored; missing ones are
    /// treated as zero.
    pub fn or_words(&mut self, words: impl IntoIterator<Item = u64>) {
        counters::count_bitops(self.words.len().max(1) as u64);
        for (w, v) in self.words.iter_mut().zip(words) {
            *w |= v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_all_zero() {
        let b = Bitmap::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.all_set());
        assert!(!b.get(0));
        assert!(!b.get(99));
    }

    #[test]
    fn set_returns_prior_value() {
        let mut b = Bitmap::new(10);
        assert!(!b.set(3));
        assert!(b.set(3), "second set reports the bit was already set");
        assert!(b.get(3));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn all_set_requires_every_bit() {
        let mut b = Bitmap::new(5);
        for i in 0..4 {
            b.set(i);
        }
        assert!(!b.all_set());
        b.set(4);
        assert!(b.all_set());
    }

    #[test]
    fn word_boundaries_are_exact() {
        // 64 and 65 bits exercise the full-word and partial-word paths.
        for bits in [63, 64, 65, 128, 129] {
            let mut b = Bitmap::new(bits);
            for i in 0..bits {
                assert!(!b.all_set(), "bits={bits}, missing {i}");
                b.set(i);
            }
            assert!(b.all_set(), "bits={bits}");
            assert_eq!(b.count_ones(), bits);
        }
    }

    #[test]
    fn empty_map_is_vacuously_complete() {
        // An empty divisor means every quotient candidate qualifies.
        let b = Bitmap::new(0);
        assert!(b.all_set());
        assert!(b.is_empty());
    }

    #[test]
    fn stray_high_bits_cannot_fake_completeness() {
        let mut b = Bitmap::new(3);
        b.set(0);
        b.set(2);
        assert!(!b.all_set(), "bit 1 is still zero");
    }

    #[test]
    fn heap_bytes_rounds_to_words() {
        assert_eq!(Bitmap::heap_bytes(0), 0);
        assert_eq!(Bitmap::heap_bytes(1), 8);
        assert_eq!(Bitmap::heap_bytes(64), 8);
        assert_eq!(Bitmap::heap_bytes(65), 16);
        assert_eq!(Bitmap::heap_bytes(400), 56);
    }

    #[test]
    fn bit_operations_are_counted() {
        reldiv_rel::counters::reset();
        let mut b = Bitmap::new(128); // 2 words to clear
        b.set(5); // 1
        b.get(5); // 1
        b.all_set(); // 2 words
        let ops = reldiv_rel::counters::snapshot().bitops;
        assert_eq!(ops, 2 + 1 + 1 + 2);
    }
}
