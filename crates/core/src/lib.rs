//! # reldiv-core — relational division: four algorithms
//!
//! The primary contribution of Graefe's *"Relational Division: Four
//! Algorithms and Their Performance"* (OGC TR CS/E 88-022, ICDE 1989):
//! the **hash-division** algorithm, together with the three known
//! strategies it is compared against.
//!
//! Relational division `R ÷ S` expresses universal quantification: with
//! dividend `R(q, d)` and divisor `S(d)`, the quotient contains each `q`
//! that appears in `R` paired with *every* tuple of `S`. The paper's
//! running example: students (`q`) who have taken *all* courses (`d`).
//!
//! ## The four algorithms
//!
//! | module | algorithm | paper section |
//! |---|---|---|
//! | [`naive`] | naive division over sorted inputs (Smith 1975) | 2.1 |
//! | [`sort_agg`] | division by sort-based aggregation (count per group == divisor count), with or without a preceding merge semi-join | 2.2.1 |
//! | [`hash_agg`] | division by hash-based aggregation, with or without a preceding hash semi-join | 2.2.2 |
//! | [`hash_division`] | **hash-division**: a divisor table assigning divisor numbers and a quotient table of candidates with bit maps | 3 |
//!
//! Supporting modules:
//!
//! * [`bitmap`] — the word-at-a-time bit maps hash-division keeps per
//!   quotient candidate,
//! * [`spec`] — [`DivisionSpec`], naming which dividend columns are
//!   divisor attributes and which are quotient attributes,
//! * [`overflow`] — hash-table overflow handling by quotient partitioning
//!   and divisor partitioning, including the collection phase (Section
//!   3.4),
//! * [`batch_div`] — the vectorized (batch-at-a-time) hash-division
//!   operator, byte-identical to the tuple path and selected with
//!   [`DivisionConfig::exec`](api::DivisionConfig),
//! * [`contains`] — the "contains clause" the paper's conclusion calls
//!   for: a declarative for-all query builder with cost-based algorithm
//!   choice,
//! * [`mem`] — a self-contained generic in-memory API
//!   ([`mem::hash_divide`]) for callers who just want to divide Rust
//!   collections,
//! * [`api`] — the engine-level entry point [`api::divide`] running any
//!   algorithm over relations stored in record files.
//!
//! ## Semantics
//!
//! * Inputs are bags. Hash-division ignores duplicates in the dividend and
//!   eliminates divisor duplicates on the fly; the other algorithms
//!   require duplicate-free inputs, so their plan builders insert the
//!   necessary duplicate-elimination steps unless told the inputs are
//!   unique (`assume_unique`).
//! * An empty divisor yields the *distinct quotient-attribute projection
//!   of the dividend* (universal quantification over the empty set is
//!   vacuously true — the relational-algebra identity
//!   `R ÷ S = π_q(R) − π_q((π_q(R) × S) − R)` gives the same). Every
//!   algorithm implements this convention, and it is property-tested.

#![deny(missing_docs)]

pub mod api;
pub mod batch_div;
pub mod bitmap;
pub mod contains;
pub mod hash_agg;
pub mod hash_division;
pub mod hybrid;
pub mod mem;
pub mod naive;
pub mod overflow;
pub mod report;
pub mod sort_agg;
pub mod spec;

pub use api::{
    divide, divide_profiled, divide_relations, divide_with_report, Algorithm, DivisionConfig,
};
pub use batch_div::BatchHashDivision;
pub use bitmap::Bitmap;
pub use contains::Contains;
pub use hash_division::{HashDivision, HashDivisionMode};
pub use reldiv_exec::batch::ExecMode;
pub use reldiv_exec::profile::{ProfileNode, ProfileSink, QueryProfile, SpanKind};
pub use report::DegradationReport;
pub use spec::DivisionSpec;

/// Result alias; core reuses the execution engine's error type.
pub type Result<T> = reldiv_exec::Result<T>;
pub use reldiv_exec::ExecError;
