//! The `contains` clause — universal quantification as a language
//! construct.
//!
//! The paper's Section 5.2: "it is much easier to implement a query
//! optimizer that rewrites a division operator into an aggregation
//! operator than vice versa, universal quantification should be included
//! as a language construct in database query languages, e.g., as a
//! 'contains' clause." This module is that construct for `reldiv`: a
//! declarative builder that states the for-all condition and lets the
//! cost-based planner pick the algorithm.
//!
//! ```
//! use reldiv_core::contains::Contains;
//! use reldiv_rel::{Relation, Schema, schema::Field, tuple::ints};
//!
//! let transcript = Relation::from_tuples(
//!     Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
//!     vec![ints(&[1, 10]), ints(&[1, 20]), ints(&[2, 10])],
//! ).unwrap();
//! let courses = Relation::from_tuples(
//!     Schema::new(vec![Field::int("course-no")]),
//!     vec![ints(&[10]), ints(&[20])],
//! ).unwrap();
//!
//! // "students whose transcripts CONTAIN all courses"
//! let q = Contains::new(&transcript, &courses).run().unwrap();
//! assert_eq!(q.cardinality(), 1);
//! ```

use reldiv_rel::Relation;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::StorageManager;

use crate::api::{divide, Algorithm, DivisionConfig, Source};
use crate::spec::DivisionSpec;
use crate::Result;

/// A declarative for-all query: which groups of the dividend contain
/// every tuple of the divisor?
pub struct Contains<'a> {
    dividend: &'a Relation,
    divisor: &'a Relation,
    spec: Option<DivisionSpec>,
    restricted_divisor: bool,
    duplicate_free: bool,
    algorithm: Option<Algorithm>,
}

impl<'a> Contains<'a> {
    /// Starts a contains query with the trailing-divisor column
    /// convention (the divisor's columns are matched against the
    /// dividend's trailing columns).
    ///
    /// Defaults are conservative: the divisor is assumed restricted (it
    /// may have come from a selection) and the inputs may contain
    /// duplicates — with those assumptions, the planner picks
    /// hash-division, which is always safe.
    pub fn new(dividend: &'a Relation, divisor: &'a Relation) -> Self {
        Contains {
            dividend,
            divisor,
            spec: None,
            restricted_divisor: true,
            duplicate_free: false,
            algorithm: None,
        }
    }

    /// Uses an explicit [`DivisionSpec`] instead of the trailing-divisor
    /// convention (for interleaved column layouts).
    pub fn with_spec(mut self, spec: DivisionSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Declares that every dividend tuple's divisor attributes appear in
    /// the divisor (the divisor is unrestricted — the paper's first
    /// example), enabling the cheaper no-join aggregation plans.
    pub fn unrestricted_divisor(mut self) -> Self {
        self.restricted_divisor = false;
        self
    }

    /// Declares both inputs duplicate-free (projections on keys),
    /// enabling hash aggregation and skipping duplicate elimination.
    pub fn duplicate_free(mut self) -> Self {
        self.duplicate_free = true;
        self
    }

    /// Overrides the planner with a specific algorithm.
    pub fn using(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// The algorithm the query will run with (planner choice unless
    /// overridden) — exposed for EXPLAIN-style introspection.
    pub fn plan(&self) -> Result<(DivisionSpec, Algorithm)> {
        let spec = match &self.spec {
            Some(s) => s.clone(),
            None => DivisionSpec::trailing_divisor(self.dividend.schema(), self.divisor.schema())?,
        };
        let algorithm = self.algorithm.unwrap_or_else(|| {
            // Cardinality estimates come straight from the inputs here;
            // a real optimizer would use catalog statistics.
            let divisor_size = self.divisor.cardinality() as u64;
            let dividend_size = self.dividend.cardinality() as u64;
            let quotient_estimate = dividend_size
                .checked_div(divisor_size)
                .unwrap_or(dividend_size)
                .max(1);
            Algorithm::recommend(
                divisor_size.max(1),
                quotient_estimate,
                Some(dividend_size.max(1)),
                self.restricted_divisor,
                self.duplicate_free,
            )
        });
        Ok((spec, algorithm))
    }

    /// Executes the query on a private storage manager.
    pub fn run(self) -> Result<Relation> {
        let storage = StorageManager::shared(StorageConfig::large());
        let (spec, algorithm) = self.plan()?;
        divide(
            &storage,
            &Source::from_relation(self.dividend),
            &Source::from_relation(self.divisor),
            &spec,
            algorithm,
            &DivisionConfig {
                assume_unique: self.duplicate_free,
                ..DivisionConfig::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_division::HashDivisionMode;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Schema;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(
            Schema::new(vec![Field::int("sid"), Field::int("cno")]),
            rows.iter().map(|r| ints(r)).collect(),
        )
        .unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        Relation::from_tuples(
            Schema::new(vec![Field::int("cno")]),
            nos.iter().map(|&n| ints(&[n])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn default_contains_is_safe_on_messy_inputs() {
        // Duplicates + noise: the conservative defaults must be correct.
        let t = transcript(&[[1, 10], [1, 10], [1, 20], [2, 10], [3, 99]]);
        let c = courses(&[10, 20, 10]);
        let q = Contains::new(&t, &c).run().unwrap();
        assert_eq!(q.cardinality(), 1);
        assert_eq!(q.tuples()[0], ints(&[1]));
    }

    #[test]
    fn plan_is_inspectable_and_respects_declarations() {
        // Sizes large enough that the model's discrimination matters (at a
        // handful of tuples the sort-based plans cost nothing and any
        // choice is fine).
        let rows: Vec<[i64; 2]> = (0..200)
            .flat_map(|q| (0..20).map(move |c| [q, c]))
            .collect();
        let t = transcript(&rows);
        let c = courses(&(0..20).collect::<Vec<_>>());
        let (_, alg) = Contains::new(&t, &c).plan().unwrap();
        assert!(
            matches!(alg, Algorithm::HashDivision { .. }),
            "conservative default: {alg:?}"
        );
        let (_, alg) = Contains::new(&t, &c)
            .unrestricted_divisor()
            .duplicate_free()
            .plan()
            .unwrap();
        assert_eq!(alg, Algorithm::HashAggregation { join: false });
    }

    #[test]
    fn using_overrides_the_planner() {
        let t = transcript(&[[1, 10], [1, 20]]);
        let c = courses(&[10, 20]);
        let q = Contains::new(&t, &c).using(Algorithm::Naive).run().unwrap();
        assert_eq!(q.cardinality(), 1);
        let (_, alg) = Contains::new(&t, &c)
            .using(Algorithm::Naive)
            .plan()
            .unwrap();
        assert_eq!(alg, Algorithm::Naive);
    }

    #[test]
    fn with_spec_supports_interleaved_layouts() {
        // Dividend (d, q) with the divisor column leading.
        let dividend = Relation::from_tuples(
            Schema::new(vec![Field::int("d"), Field::int("q")]),
            vec![ints(&[5, 1]), ints(&[6, 1]), ints(&[5, 2])],
        )
        .unwrap();
        let divisor = Relation::from_tuples(
            Schema::new(vec![Field::int("d")]),
            vec![ints(&[5]), ints(&[6])],
        )
        .unwrap();
        let spec =
            DivisionSpec::new(dividend.schema(), divisor.schema(), vec![0], vec![1]).unwrap();
        let q = Contains::new(&dividend, &divisor)
            .with_spec(spec)
            .run()
            .unwrap();
        assert_eq!(q.cardinality(), 1);
        assert_eq!(q.tuples()[0], ints(&[1]));
    }

    #[test]
    fn empty_divisor_is_vacuous_through_contains() {
        let t = transcript(&[[1, 10], [2, 20]]);
        let c = courses(&[]);
        let q = Contains::new(&t, &c).run().unwrap();
        assert_eq!(q.cardinality(), 2);
    }

    #[test]
    fn every_explicit_algorithm_runs_through_contains() {
        let t = transcript(&[[1, 10], [1, 20], [2, 10], [3, 20], [3, 10]]);
        let c = courses(&[10, 20]);
        for alg in [
            Algorithm::Naive,
            Algorithm::SortAggregation { join: true },
            Algorithm::HashAggregation { join: true },
            Algorithm::HashDivision {
                mode: HashDivisionMode::EarlyOut,
            },
        ] {
            let q = Contains::new(&t, &c).using(alg).run().unwrap();
            assert_eq!(q.cardinality(), 2, "{alg:?}");
        }
    }
}
