//! Division by hash-based aggregation (Section 2.2.2).
//!
//! "Hash-based aggregate functions keep the tuples of the output relation
//! in a main memory hash-table. ... If the aggregate function is preceded
//! by a join as in the second example, the join can also be implemented
//! using hashing. The hash table used for the join is a different one than
//! the one used for aggregation."
//!
//! The same two plan shapes as [`crate::sort_agg`]:
//! * **Without join** — valid only when the dividend's divisor attributes
//!   are all drawn from the divisor,
//! * **With join** — a hash semi-join (build on the divisor, probe with
//!   the dividend) restricts the dividend first.
//!
//! The aggregation table spills to group-hash cluster files when it
//! outgrows the memory pool (GAMMA-style partitioned aggregation), so
//! this plan degrades gracefully like hash-division does.
//!
//! Duplicate handling is the weak point the paper highlights: hash
//! aggregation counts duplicates and "cannot include duplicate
//! elimination, since only one tuple is kept in the hash table for each
//! group". When the inputs are not declared unique, the plan inserts a
//! hash-based duplicate elimination ([`reldiv_exec::agg::HashDistinct`])
//! that must hold the whole dividend in memory — exactly the cost
//! hash-division avoids.

use reldiv_exec::agg::{HashCountAggregate, HashDistinct, HavingCount, ScalarCount};
use reldiv_exec::hash_join::HashJoin;
use reldiv_exec::merge_join::JoinMode;
use reldiv_exec::op::{collect, BoxedOp};
use reldiv_exec::profile::{maybe_profile, SpanKind, SpanScope};
use reldiv_rel::Relation;
use reldiv_storage::StorageRef;

use crate::api::{DivisionConfig, Source};
use crate::spec::DivisionSpec;
use crate::Result;

/// Counts the distinct divisor tuples (hash-flavored scalar aggregate).
pub(crate) fn divisor_count_hashed(
    storage: &StorageRef,
    divisor: &Source,
    config: &DivisionConfig,
) -> Result<i64> {
    let p = config.profile.as_ref();
    let scan = maybe_profile(
        divisor.scan(storage),
        p,
        "scan divisor",
        SpanKind::Scan,
        Some(storage),
    );
    let count: BoxedOp = Box::new(ScalarCount::new(scan, !config.assume_unique));
    let count = maybe_profile(
        count,
        p,
        "scalar count (divisor, hashed distinct)",
        SpanKind::Aggregation,
        Some(storage),
    );
    let counted = collect(count)?;
    Ok(counted.tuples()[0].value(0).as_int().expect("count is Int"))
}

/// The vacuous empty-divisor case, hash-flavored: group the dividend on
/// the quotient attributes and keep one tuple per group.
pub(crate) fn distinct_quotient_projection_hashed(
    storage: &StorageRef,
    dividend: &Source,
    spec: &DivisionSpec,
) -> Result<Relation> {
    let pool = storage.borrow().memory();
    let agg = HashCountAggregate::new(dividend.scan(storage), spec.quotient_keys.clone(), pool)?
        .with_spill(storage.clone());
    // Keep the groups, drop the counts: HAVING count = anything is wrong
    // here; instead project the count column away on collection.
    let rel = collect(Box::new(agg))?;
    let qcols: Vec<usize> = (0..spec.quotient_keys.len()).collect();
    rel.project(&qcols).map_err(crate::ExecError::from)
}

/// Runs division by hash-based aggregation.
pub fn hash_agg_division(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    with_join: bool,
    config: &DivisionConfig,
) -> Result<Relation> {
    let pool = storage.borrow().memory();

    // Step 1: scalar aggregate — count the (distinct) divisor.
    let target = divisor_count_hashed(storage, divisor, config)?;
    if target == 0 {
        return distinct_quotient_projection_hashed(storage, dividend, spec);
    }

    // Optional duplicate elimination on the dividend (expensive: holds the
    // entire input in the memory pool — the paper's argument for
    // hash-division's built-in duplicate insensitivity).
    let p = config.profile.as_ref();
    let dividend_scan = maybe_profile(
        dividend.scan(storage),
        p,
        "scan dividend",
        SpanKind::Scan,
        Some(storage),
    );
    let dividend_input: BoxedOp = if config.assume_unique {
        dividend_scan
    } else {
        let distinct: BoxedOp = Box::new(HashDistinct::new(dividend_scan, pool.clone()));
        maybe_profile(
            distinct,
            p,
            "hash distinct (dividend)",
            SpanKind::Aggregation,
            Some(storage),
        )
    };

    // Step 2: count per group, optionally after a hash semi-join. The
    // semi-join builds its own hash table on the divisor — "a different
    // one than the one used for aggregation" — and its output is
    // materialized before aggregation: the paper's cost model charges the
    // dividend scan in both the semi-join and the aggregation terms.
    let (agg_input, intermediate): (BoxedOp, Option<reldiv_storage::FileId>) = if with_join {
        let join = HashJoin::new(
            dividend_input,
            divisor.scan(storage),
            spec.divisor_keys.clone(),
            spec.divisor_all_columns(),
            JoinMode::LeftSemi,
        )?;
        let join = maybe_profile(
            Box::new(join.with_pool(pool.clone())),
            p,
            "hash semi-join",
            SpanKind::HashJoin,
            Some(storage),
        );
        let scope = p.map(|sink| {
            SpanScope::enter(
                sink,
                "materialize semi-join output",
                SpanKind::Materialize,
                Some(storage.clone()),
            )
        });
        let (file, schema) = crate::api::materialize(storage, join)?;
        if let Some(scope) = scope {
            scope.finish();
        }
        let scan: BoxedOp = Box::new(reldiv_exec::scan::FileScan::new(
            storage.clone(),
            file,
            schema,
        ));
        let scan = maybe_profile(
            scan,
            p,
            "scan materialized intermediate",
            SpanKind::Scan,
            Some(storage),
        );
        (scan, Some(file))
    } else {
        (dividend_input, None)
    };
    let agg: BoxedOp = Box::new(
        HashCountAggregate::new(agg_input, spec.quotient_keys.clone(), pool)?
            .with_spill(storage.clone()),
    );
    let agg = maybe_profile(
        agg,
        p,
        "hash count aggregate",
        SpanKind::Aggregation,
        Some(storage),
    );

    // Step 3: select the groups whose count equals the divisor count.
    let having: BoxedOp = Box::new(HavingCount::new(agg, target)?);
    let result = collect(maybe_profile(
        having,
        p,
        "having count = |divisor|",
        SpanKind::Other,
        Some(storage),
    ));
    if let Some(file) = intermediate {
        storage.borrow_mut().delete_file(file)?;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::{Field, Schema};
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn run(
        dividend: Relation,
        divisor: Relation,
        with_join: bool,
        assume_unique: bool,
    ) -> Vec<i64> {
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = DivisionConfig {
            assume_unique,
            ..DivisionConfig::default()
        };
        let rel = hash_agg_division(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            with_join,
            &config,
        )
        .unwrap();
        let mut out: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn no_join_works_when_dividend_is_restricted() {
        let rows = [[1, 10], [1, 20], [2, 10], [3, 10], [3, 20]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), false, true),
            vec![1, 3]
        );
    }

    #[test]
    fn with_join_handles_restricted_divisors() {
        let rows = [[1, 10], [1, 20], [2, 10], [2, 99]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), true, true),
            vec![1]
        );
    }

    #[test]
    fn duplicates_require_explicit_elimination() {
        let rows = [[1, 10], [1, 10], [1, 20], [2, 10], [2, 10]];
        // With preprocessing (assume_unique = false) the answer is right.
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), true, false),
            vec![1]
        );
        // Blindly trusting uniqueness, counts are corrupted: student 1
        // overcounts to 3 ≠ 2 (excluded!), while student 2's duplicate
        // rows count as two distinct courses (wrongly included).
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), true, true),
            vec![2],
            "hash aggregation is fooled by duplicates without dup-elim"
        );
    }

    #[test]
    fn empty_divisor_yields_distinct_projection() {
        let rows = [[7, 10], [8, 20], [7, 30]];
        for with_join in [false, true] {
            assert_eq!(
                run(transcript(&rows), courses(&[]), with_join, false),
                vec![7, 8]
            );
        }
    }

    #[test]
    fn empty_dividend_yields_empty() {
        for with_join in [false, true] {
            assert_eq!(
                run(transcript(&[]), courses(&[10]), with_join, true),
                Vec::<i64>::new()
            );
        }
    }

    #[test]
    fn divisor_count_hashed_distinct_counts() {
        let storage = StorageManager::shared(StorageConfig::large());
        let divisor = courses(&[1, 1, 2]);
        let c = divisor_count_hashed(
            &storage,
            &Source::from_relation(&divisor),
            &DivisionConfig::default(),
        )
        .unwrap();
        assert_eq!(c, 2);
    }
}
