//! A self-contained, generic, in-memory hash-division API.
//!
//! For callers who want the paper's algorithm over ordinary Rust
//! collections, without schemas, storage managers, or operators:
//!
//! ```
//! use reldiv_core::mem::hash_divide;
//!
//! // Which students took ALL the listed courses?
//! let transcript = [
//!     ("Ann", "Database1"),
//!     ("Barb", "Database2"),
//!     ("Ann", "Database2"),
//!     ("Barb", "Optics"),
//! ];
//! let courses = ["Database1", "Database2"];
//! let q = hash_divide(transcript, courses);
//! assert_eq!(q, vec!["Ann"]);
//! ```
//!
//! The implementation is the Figure 1 algorithm verbatim: a divisor map
//! assigning divisor numbers, a quotient map holding one bit map per
//! candidate, and a final completeness scan. It inherits hash-division's
//! semantics: duplicates in either input are harmless, and an empty
//! divisor yields the distinct quotient values of the dividend.

use std::collections::HashMap;
use std::hash::Hash;

/// Divides a dividend of `(quotient, divisor)` pairs by a divisor set.
///
/// Returns each quotient value `q` such that for *every* divisor value
/// `d`, the pair `(q, d)` appears in the dividend. Output order follows
/// first appearance of each qualifying quotient value in the dividend.
pub fn hash_divide<Q, D>(
    dividend: impl IntoIterator<Item = (Q, D)>,
    divisor: impl IntoIterator<Item = D>,
) -> Vec<Q>
where
    Q: Eq + Hash + Clone,
    D: Eq + Hash,
{
    // Step 1: divisor table with divisor numbers (duplicates collapse).
    let mut divisor_numbers: HashMap<D, usize> = HashMap::new();
    for d in divisor {
        let n = divisor_numbers.len();
        divisor_numbers.entry(d).or_insert(n);
    }
    let divisor_count = divisor_numbers.len();
    let words = divisor_count.div_ceil(64);

    // Step 2: quotient table with bit maps; insertion order retained so
    // output is deterministic.
    let mut quotient_order: Vec<Q> = Vec::new();
    let mut quotient_table: HashMap<Q, Vec<u64>> = HashMap::new();
    for (q, d) in dividend {
        let number = if divisor_count == 0 {
            None // vacuous: candidate is complete with an empty bit map
        } else {
            match divisor_numbers.get(&d) {
                Some(&n) => Some(n),
                None => continue, // no matching divisor tuple: discard
            }
        };
        let bitmap = quotient_table.entry(q.clone()).or_insert_with(|| {
            quotient_order.push(q.clone());
            vec![0u64; words]
        });
        if let Some(n) = number {
            bitmap[n / 64] |= 1 << (n % 64);
        }
    }

    // Step 3: emit candidates whose bit map has no zero.
    quotient_order
        .into_iter()
        .filter(|q| {
            let bitmap = &quotient_table[q];
            (0..divisor_count).all(|i| bitmap[i / 64] & (1 << (i % 64)) != 0)
        })
        .collect()
}

/// Divides using counters instead of bit maps (the Section 3.3 variant for
/// duplicate-free dividends). Exposed chiefly so benchmarks can measure
/// the bit-map overhead; prefer [`hash_divide`] unless the dividend is
/// certainly duplicate-free.
pub fn hash_divide_counting<Q, D>(
    dividend: impl IntoIterator<Item = (Q, D)>,
    divisor: impl IntoIterator<Item = D>,
) -> Vec<Q>
where
    Q: Eq + Hash + Clone,
    D: Eq + Hash,
{
    let mut divisor_set: std::collections::HashSet<D> = std::collections::HashSet::new();
    for d in divisor {
        divisor_set.insert(d);
    }
    let divisor_count = divisor_set.len();
    let mut order: Vec<Q> = Vec::new();
    let mut counts: HashMap<Q, usize> = HashMap::new();
    for (q, d) in dividend {
        let matched = divisor_count == 0 || divisor_set.contains(&d);
        if !matched {
            continue;
        }
        let c = counts.entry(q.clone()).or_insert_with(|| {
            order.push(q.clone());
            0
        });
        if divisor_count > 0 {
            *c += 1;
        }
    }
    order
        .into_iter()
        .filter(|q| counts[q] == divisor_count)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_divides_to_ann() {
        let transcript = [
            ("Ann", "Database1"),
            ("Barb", "Database2"),
            ("Ann", "Database2"),
            ("Barb", "Optics"),
        ];
        assert_eq!(
            hash_divide(transcript, ["Database1", "Database2"]),
            vec!["Ann"]
        );
    }

    #[test]
    fn output_order_is_first_appearance() {
        let pairs = [(3, 'a'), (1, 'a'), (2, 'a')];
        assert_eq!(hash_divide(pairs, ['a']), vec![3, 1, 2]);
    }

    #[test]
    fn integer_payloads_work() {
        let pairs: Vec<(i32, i32)> = (0..10).flat_map(|q| (0..5).map(move |d| (q, d))).collect();
        let q = hash_divide(pairs, 0..5);
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn duplicates_everywhere_are_harmless() {
        let pairs = [(1, 'x'), (1, 'x'), (1, 'y'), (2, 'x'), (2, 'x')];
        assert_eq!(hash_divide(pairs, ['x', 'y', 'x', 'y']), vec![1]);
    }

    #[test]
    fn empty_divisor_is_vacuous() {
        let pairs = [(1, 'x'), (2, 'y'), (1, 'z')];
        assert_eq!(hash_divide(pairs, []), vec![1, 2]);
    }

    #[test]
    fn empty_dividend_is_empty() {
        assert_eq!(hash_divide::<i32, i32>([], [1, 2]), Vec::<i32>::new());
    }

    #[test]
    fn large_divisor_crosses_word_boundaries() {
        // 130 divisor values exercise 3-word bit maps.
        let divisor: Vec<u32> = (0..130).collect();
        let full: Vec<(u8, u32)> = divisor.iter().map(|&d| (1u8, d)).collect();
        let mut partial = full.clone();
        partial.retain(|&(_, d)| d != 64); // drop exactly the boundary bit
        let partial: Vec<(u8, u32)> = partial.into_iter().map(|(_, d)| (2u8, d)).collect();
        let pairs: Vec<(u8, u32)> = full.into_iter().chain(partial).collect();
        assert_eq!(hash_divide(pairs, divisor), vec![1]);
    }

    #[test]
    fn counting_variant_agrees_on_duplicate_free_input() {
        let pairs: Vec<(i32, i32)> = vec![(1, 10), (1, 20), (2, 10), (3, 20), (3, 10)];
        let a = hash_divide(pairs.clone(), [10, 20]);
        let b = hash_divide_counting(pairs, [10, 20]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 3]);
    }

    #[test]
    fn counting_variant_empty_divisor() {
        let pairs = [(1, 'x'), (2, 'q'), (1, 'x')];
        assert_eq!(hash_divide_counting(pairs, []), vec![1, 2]);
    }

    #[test]
    fn string_keys_with_owned_data() {
        let pairs = vec![
            ("s1".to_string(), "p1".to_string()),
            ("s1".to_string(), "p2".to_string()),
            ("s2".to_string(), "p1".to_string()),
        ];
        let q = hash_divide(pairs, vec!["p1".to_string(), "p2".to_string()]);
        assert_eq!(q, vec!["s1".to_string()]);
    }
}
