//! Degradation reporting: what a division had to do to survive.
//!
//! When hash-division hits memory pressure mid-build, the `Auto` overflow
//! policy walks the Section 3.4 ladder — in-memory, quotient-partitioned,
//! divisor-partitioned, combined — until a rung fits. The
//! [`DegradationReport`] returned alongside the quotient records that
//! walk: which phases ran, how many rungs were abandoned, and how many
//! bytes were spooled to temporary cluster files. A report with
//! `degraded == false` and an empty phase list is the fast path.

/// How a division degraded (or didn't) to produce its result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Whether any fallback beyond the first attempt was needed.
    pub degraded: bool,
    /// Human-readable phases attempted, in order (e.g. `"in-memory:
    /// memory exhausted"`, `"quotient-partitioned k=4"`). The last entry
    /// is the phase that produced the result.
    pub phases: Vec<String>,
    /// Bytes spooled to temporary cluster/collection files by the
    /// partitioned phases, counting each byte the first time it leaves
    /// memory. Bytes re-clustered from a file that was already a spill
    /// (combined partitioning's inner phases, hybrid recursion) are in
    /// [`respool_bytes`](Self::respool_bytes) instead.
    pub spill_bytes: u64,
    /// Bytes re-spooled from one temporary cluster file into another —
    /// already-spilled data partitioned again. Kept apart from
    /// `spill_bytes` so nested phases never double-count first-time
    /// spills.
    pub respool_bytes: u64,
    /// Fallback retries: attempts abandoned before the one that
    /// succeeded (or before giving up).
    pub retries: u32,
    /// Adaptive hybrid: partitions evicted from memory mid-build.
    pub partitions_spilled: u32,
    /// Adaptive hybrid: spilled partitions re-admitted to memory after
    /// the pool freed up.
    pub partitions_revived: u32,
    /// Adaptive hybrid: deepest re-partitioning recursion level needed
    /// (0 when every partition fit after the first pass).
    pub recursion_depth: u32,
}

impl DegradationReport {
    /// A fresh, non-degraded report.
    pub fn new() -> DegradationReport {
        DegradationReport::default()
    }

    /// Records a phase that ran (or was attempted).
    pub fn note_phase(&mut self, phase: impl Into<String>) {
        self.phases.push(phase.into());
    }

    /// Records that the previous phase was abandoned and another will be
    /// attempted.
    pub fn note_retry(&mut self) {
        self.retries += 1;
        self.degraded = true;
    }

    /// The phase that produced the result, if any phase was recorded.
    pub fn final_phase(&self) -> Option<&str> {
        self.phases.last().map(String::as_str)
    }

    /// Records an adaptive-hybrid partition spill.
    pub fn note_spill(&mut self, bytes: u64) {
        self.partitions_spilled += 1;
        self.spill_bytes += bytes;
        self.degraded = true;
    }

    /// Records an adaptive-hybrid partition revive.
    pub fn note_revive(&mut self) {
        self.partitions_revived += 1;
    }

    /// Records that re-partitioning recursion reached `depth`.
    pub fn note_recursion(&mut self, depth: u32) {
        self.recursion_depth = self.recursion_depth.max(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_report_is_clean() {
        let r = DegradationReport::new();
        assert!(!r.degraded);
        assert!(r.phases.is_empty());
        assert_eq!(r.spill_bytes, 0);
        assert_eq!(r.respool_bytes, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.partitions_spilled, 0);
        assert_eq!(r.partitions_revived, 0);
        assert_eq!(r.recursion_depth, 0);
        assert_eq!(r.final_phase(), None);
    }

    #[test]
    fn hybrid_counters_accumulate() {
        let mut r = DegradationReport::new();
        r.note_spill(100);
        r.note_spill(50);
        r.note_revive();
        r.note_recursion(2);
        r.note_recursion(1);
        assert!(r.degraded);
        assert_eq!(r.partitions_spilled, 2);
        assert_eq!(r.spill_bytes, 150);
        assert_eq!(r.partitions_revived, 1);
        assert_eq!(r.recursion_depth, 2);
    }

    #[test]
    fn retries_mark_degradation() {
        let mut r = DegradationReport::new();
        r.note_phase("in-memory: memory exhausted");
        r.note_retry();
        r.note_phase("quotient-partitioned k=2");
        assert!(r.degraded);
        assert_eq!(r.retries, 1);
        assert_eq!(r.final_phase(), Some("quotient-partitioned k=2"));
    }
}
