//! The engine-level division API.
//!
//! [`divide`] runs any of the four algorithms over [`Source`]s — relations
//! stored in record files of a [`StorageManager`] or held in memory — and
//! returns the quotient relation. [`divide_relations`] is the convenience
//! wrapper used by examples and tests: it provisions a private storage
//! manager with the paper's configuration.

use std::rc::Rc;

use reldiv_exec::batch::profile::maybe_profile_batch;
use reldiv_exec::batch::scan::BatchMemScan;
use reldiv_exec::batch::{collect_batches, BoxedBatchOp, ExecMode, TupleToBatch};
use reldiv_exec::cancel::CancelToken;
use reldiv_exec::op::BoxedOp;
use reldiv_exec::profile::{maybe_profile, ProfileSink, QueryProfile, SpanKind, SpanScope};
use reldiv_exec::scan::{FileScan, MemScan};
use reldiv_exec::sort::SortConfig;
use reldiv_rel::{Relation, Schema, Tuple};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{FileId, StorageManager, StorageRef};

use crate::batch_div::BatchHashDivision;
use crate::hash_division::{HashDivision, HashDivisionMode};
use crate::hybrid;
use crate::naive::naive_division_plan_profiled;
use crate::overflow;
use crate::report::DegradationReport;
use crate::spec::DivisionSpec;
use crate::{ExecError, Result};

/// A re-scannable relation source: algorithms that need to read an input
/// more than once (aggregation plans read the divisor for both the scalar
/// count and the join; overflow retries re-read everything) open fresh
/// scans from the source.
#[derive(Clone)]
pub enum Source {
    /// A record file in the storage manager.
    File {
        /// The file holding the relation's records.
        file: FileId,
        /// Schema for decoding the records.
        schema: Schema,
    },
    /// An in-memory relation (shared, so re-scans are cheap).
    Mem {
        /// The relation's schema.
        schema: Schema,
        /// The tuples, shared among scans.
        tuples: Rc<Vec<Tuple>>,
    },
}

impl Source {
    /// Wraps an in-memory relation.
    pub fn from_relation(relation: &Relation) -> Source {
        Source::Mem {
            schema: relation.schema().clone(),
            tuples: Rc::new(relation.tuples().to_vec()),
        }
    }

    /// Wraps a record file.
    pub fn from_file(file: FileId, schema: Schema) -> Source {
        Source::File { file, schema }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        match self {
            Source::File { schema, .. } | Source::Mem { schema, .. } => schema,
        }
    }

    /// Opens a fresh scan over the relation.
    pub fn scan(&self, storage: &StorageRef) -> BoxedOp {
        match self {
            Source::File { file, schema } => {
                Box::new(FileScan::new(storage.clone(), *file, schema.clone()))
            }
            Source::Mem { schema, tuples } => {
                Box::new(MemScan::shared(schema.clone(), tuples.clone()))
            }
        }
    }

    /// Opens a fresh batch scan over the relation: columnar for in-memory
    /// sources, a bridged record-file scan (with its real I/O profile)
    /// otherwise.
    pub fn scan_batches(&self, storage: &StorageRef) -> BoxedBatchOp {
        match self {
            Source::File { .. } => Box::new(TupleToBatch::new(self.scan(storage))),
            Source::Mem { schema, tuples } => {
                Box::new(BatchMemScan::shared(schema.clone(), tuples.clone()))
            }
        }
    }
}

/// Algorithm selection — the four algorithms of the paper's title.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Naive sorted-merge division (Section 2.1).
    Naive,
    /// Division by sort-based aggregation (Section 2.2.1); `join` adds the
    /// merge semi-join that restricts counting to valid divisor values.
    SortAggregation {
        /// Whether a semi-join precedes the aggregation.
        join: bool,
    },
    /// Division by hash-based aggregation (Section 2.2.2); `join` adds the
    /// hash semi-join.
    HashAggregation {
        /// Whether a semi-join precedes the aggregation.
        join: bool,
    },
    /// Hash-division (Section 3).
    HashDivision {
        /// Variant selection.
        mode: HashDivisionMode,
    },
}

impl From<reldiv_costmodel::PlannedAlgorithm> for Algorithm {
    fn from(p: reldiv_costmodel::PlannedAlgorithm) -> Algorithm {
        use reldiv_costmodel::PlannedAlgorithm as P;
        match p {
            P::Naive => Algorithm::Naive,
            P::SortAggregation { join } => Algorithm::SortAggregation { join },
            P::HashAggregation { join } => Algorithm::HashAggregation { join },
            P::HashDivision => Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        }
    }
}

impl Algorithm {
    /// Cost-based algorithm choice (Section 5.2: "the possible error in
    /// the selectivity estimate makes it imperative to choose the
    /// division algorithm very carefully").
    ///
    /// * `restricted_divisor`: the dividend may contain tuples whose
    ///   divisor attributes are not in the divisor (divisor produced by a
    ///   selection), forcing the aggregation plans to join;
    /// * `duplicate_free`: both inputs are projections on keys, so no
    ///   duplicate elimination is needed.
    pub fn recommend(
        divisor_size: u64,
        quotient_size: u64,
        dividend_size: Option<u64>,
        restricted_divisor: bool,
        duplicate_free: bool,
    ) -> Algorithm {
        reldiv_costmodel::recommend(&reldiv_costmodel::PlannerInput {
            divisor_size,
            quotient_size,
            dividend_size,
            restricted_divisor,
            duplicate_free,
        })
        .into()
    }

    /// The six columns of the paper's Tables 2 and 4, in column order.
    pub fn table_columns() -> [Algorithm; 6] {
        [
            Algorithm::Naive,
            Algorithm::SortAggregation { join: false },
            Algorithm::SortAggregation { join: true },
            Algorithm::HashAggregation { join: false },
            Algorithm::HashAggregation { join: true },
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        ]
    }

    /// Short label, matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Naive => "Naive Div.",
            Algorithm::SortAggregation { join: false } => "Sort-Agg (no join)",
            Algorithm::SortAggregation { join: true } => "Sort-Agg (with join)",
            Algorithm::HashAggregation { join: false } => "Hash-Agg (no join)",
            Algorithm::HashAggregation { join: true } => "Hash-Agg (with join)",
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            } => "Hash-Div.",
            Algorithm::HashDivision {
                mode: HashDivisionMode::EarlyOut,
            } => "Hash-Div. (early)",
            Algorithm::HashDivision {
                mode: HashDivisionMode::CounterOnly,
            } => "Hash-Div. (counter)",
        }
    }
}

/// What to do when hash-division's tables exceed the memory pool
/// (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Surface `MemoryExhausted` to the caller.
    Fail,
    /// Partition the dividend on the quotient attributes into this many
    /// clusters; the divisor table stays resident across all phases.
    QuotientPartition {
        /// Number of clusters.
        partitions: usize,
    },
    /// Partition both inputs on the divisor attributes; a collection phase
    /// divides the union of the quotient clusters by the phase numbers.
    DivisorPartition {
        /// Number of clusters.
        partitions: usize,
    },
    /// Combined partitioning (Section 3.4's "combinations of the
    /// techniques"): divisor partitioning whose phases are themselves
    /// quotient-partitioned — for inputs where both the divisor and the
    /// quotient exceed memory.
    CombinedPartition {
        /// Number of divisor-attribute clusters.
        divisor_partitions: usize,
        /// Number of quotient-attribute clusters per phase.
        quotient_partitions: usize,
    },
    /// Memory-adaptive hybrid hash-division: all quotient partitions start
    /// memory-resident, victims spill incrementally under pressure and
    /// revive when memory frees up, skewed groups get a hot-group
    /// accumulator, and oversized partitions re-partition recursively (see
    /// [`crate::hybrid`]). Unlike the static rungs, nothing restarts: one
    /// pass over the dividend, spilling only what the actual input needs.
    Adaptive {
        /// Number of quotient-hash partitions (at least 2).
        fanout: usize,
    },
    /// Adaptive hybrid first (its optimistic phase *is* the in-memory
    /// attempt); if the divisor table itself does not fit — the one
    /// pressure quotient-side spilling cannot relieve — divisor
    /// partitioning with the cluster count doubling 2 → 256, then combined
    /// partitioning 4 → 256.
    #[default]
    Auto,
}

/// Execution knobs shared by all algorithms.
#[derive(Debug, Clone)]
pub struct DivisionConfig {
    /// Declare the inputs duplicate-free, skipping the duplicate
    /// elimination steps the aggregate-based algorithms otherwise need.
    /// (Hash-division never needs them.) The Table 4 experiments set this,
    /// matching the paper's duplicate-free workloads.
    pub assume_unique: bool,
    /// Sort memory and fan-in for the sort-based algorithms.
    pub sort: SortConfig,
    /// Hash-table overflow handling for hash-division.
    pub overflow: OverflowPolicy,
    /// Cooperative cancellation token, polled in the per-tuple loops. The
    /// default token never cancels.
    pub cancel: CancelToken,
    /// Per-operator profiling sink (`EXPLAIN ANALYZE`). `None` — the
    /// default — builds exactly the unprofiled plan: no wrapper operators,
    /// no dormant branches in per-tuple loops, zero cost.
    pub profile: Option<ProfileSink>,
    /// Per-query memory budget in bytes for hash-division. `Some(b)` runs
    /// the division against a child pool capped at `b` that still charges
    /// the storage manager's shared pool, so concurrent queries contend
    /// for the global budget while each respects its own. `None` uses the
    /// shared pool directly.
    pub mem_budget: Option<usize>,
    /// Execution path for hash-division's in-memory case.
    /// [`ExecMode::Batch`] runs the vectorized operator
    /// ([`crate::batch_div::BatchHashDivision`]) — byte-identical
    /// quotients and memory accounting, amortized per-tuple overheads.
    /// The spilling overflow rungs always run tuple-at-a-time. The
    /// default is [`ExecMode::Tuple`], the classic path.
    pub exec: ExecMode,
}

impl Default for DivisionConfig {
    fn default() -> Self {
        DivisionConfig {
            assume_unique: false,
            sort: SortConfig::default(),
            overflow: OverflowPolicy::Auto,
            cancel: CancelToken::none(),
            profile: None,
            mem_budget: None,
            exec: ExecMode::Tuple,
        }
    }
}

/// Drains an operator into a relation, polling `cancel` between tuples.
///
/// `close` runs on **every** exit, including mid-drain errors and
/// cancellation, so operator resources (pinned pages, run files, pool
/// reservations) are never leaked; the drain's error takes precedence
/// over any close error.
fn collect_cancel(mut op: BoxedOp, cancel: CancelToken) -> Result<Relation> {
    fn drain(op: &mut BoxedOp, cancel: CancelToken) -> Result<Relation> {
        op.open()?;
        let mut rel = Relation::empty(op.schema().clone());
        let mut budget = 0u32;
        while let Some(t) = op.next()? {
            cancel.checkpoint(&mut budget)?;
            rel.push(t).map_err(ExecError::from)?;
        }
        Ok(rel)
    }
    let result = drain(&mut op, cancel);
    let closed = op.close();
    let rel = result?;
    closed?;
    Ok(rel)
}

/// Runs `dividend ÷ divisor` with the chosen algorithm over the given
/// storage manager. The quotient tuple order is algorithm-dependent (a
/// bag-equality comparison is the right way to check results).
pub fn divide(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    algorithm: Algorithm,
    config: &DivisionConfig,
) -> Result<Relation> {
    divide_with_report(storage, dividend, divisor, spec, algorithm, config).map(|(rel, _)| rel)
}

/// [`divide`], additionally returning a [`DegradationReport`] describing
/// any graceful degradation the division needed — overflow phases walked,
/// bytes spilled to cluster files, fallback retries. For algorithms other
/// than hash-division and for divisions that fit in memory the report is
/// clean (`degraded == false`).
pub fn divide_with_report(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    algorithm: Algorithm,
    config: &DivisionConfig,
) -> Result<(Relation, DegradationReport)> {
    spec.validate(dividend.schema(), divisor.schema())?;
    let mut report = DegradationReport::new();
    // The root span covers the whole division, including plan construction;
    // operator spans created while it is active become its children.
    let root = config.profile.as_ref().map(|sink| {
        SpanScope::enter(
            sink,
            format!("divide [{}]", algorithm.label()),
            SpanKind::Query,
            Some(storage.clone()),
        )
    });
    let rel = match algorithm {
        Algorithm::Naive => {
            let plan = naive_division_plan_profiled(
                storage.clone(),
                dividend.scan(storage),
                divisor.scan(storage),
                spec.clone(),
                config.sort,
                config.profile.as_ref(),
            )?;
            collect_cancel(plan, config.cancel)?
        }
        Algorithm::SortAggregation { join } => {
            crate::sort_agg::sort_agg_division(storage, dividend, divisor, spec, join, config)?
        }
        Algorithm::HashAggregation { join } => {
            crate::hash_agg::hash_agg_division(storage, dividend, divisor, spec, join, config)?
        }
        Algorithm::HashDivision { mode } => hash_division_with_overflow(
            storage,
            dividend,
            divisor,
            spec,
            mode,
            config,
            &mut report,
        )?,
    };
    if let (Some(root), Some(sink)) = (root, config.profile.as_ref()) {
        // Fold the degradation story into the root span: every ladder rung
        // walked and the bytes spilled to cluster files along the way.
        for phase in &report.phases {
            root.note_phase(phase.clone());
        }
        sink.add_spill(root.id(), report.spill_bytes);
        root.finish();
    }
    Ok((rel, report))
}

/// [`divide_with_report`], with profiling forced on: runs the division
/// with a fresh [`ProfileSink`] (any sink already present in `config` is
/// replaced) and returns the finished per-operator [`QueryProfile`]
/// alongside the quotient and the degradation report.
pub fn divide_profiled(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    algorithm: Algorithm,
    config: &DivisionConfig,
) -> Result<(Relation, DegradationReport, QueryProfile)> {
    let sink = ProfileSink::new();
    let config = DivisionConfig {
        profile: Some(sink.clone()),
        ..config.clone()
    };
    let (rel, report) = divide_with_report(storage, dividend, divisor, spec, algorithm, &config)?;
    Ok((rel, report, sink.finish()))
}

/// Appends a failure marker to the most recent phase in `report`.
fn mark_exhausted(report: &mut DegradationReport) {
    if let Some(last) = report.phases.last_mut() {
        last.push_str(": memory exhausted");
    }
}

/// Appends the adaptive path's failure reason to its last phase.
fn mark_failed(report: &mut DegradationReport, e: &ExecError) {
    if let Some(last) = report.phases.last_mut() {
        if e.is_recursion_limit() {
            last.push_str(": recursion limit");
        } else {
            last.push_str(": memory exhausted");
        }
    }
}

/// Hash-division with the configured overflow policy.
///
/// Under `Auto` this degrades at runtime: the memory-adaptive hybrid
/// first — its optimistic phase is the in-memory fast path, and quotient
/// pressure is absorbed by incremental spilling — then, if the divisor
/// table itself does not fit (or a quotient group defeats re-partitioning,
/// the recursion limit), divisor partitioning with the cluster count
/// doubling 2 → 256, and finally combined partitioning 4 → 256. Every
/// phase is recorded in `report`.
fn hash_division_with_overflow(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    config: &DivisionConfig,
    report: &mut DegradationReport,
) -> Result<Relation> {
    let base_pool = storage.borrow().memory();
    // A per-query budget is a child pool: capped at the budget, still
    // charging the shared pool so concurrent queries contend.
    let pool = match config.mem_budget {
        Some(budget) => base_pool.child(budget),
        None => base_pool,
    };
    let cancel = config.cancel;
    let profile = config.profile.clone();
    let in_memory = |report: &mut DegradationReport| -> Result<Relation> {
        report.note_phase("in-memory");
        if config.exec == ExecMode::Batch {
            // The vectorized path: same span labels, same hash-table
            // layout, same memory accounting — byte-identical output.
            let dividend_scan = maybe_profile_batch(
                dividend.scan_batches(storage),
                profile.as_ref(),
                "scan dividend",
                SpanKind::Scan,
                Some(storage),
            );
            let divisor_scan = maybe_profile_batch(
                divisor.scan_batches(storage),
                profile.as_ref(),
                "scan divisor",
                SpanKind::Scan,
                Some(storage),
            );
            let mut op = BatchHashDivision::new(
                dividend_scan,
                divisor_scan,
                spec.clone(),
                mode,
                pool.clone(),
            )?;
            op.set_cancel(cancel);
            let op = maybe_profile_batch(
                Box::new(op),
                profile.as_ref(),
                "hash-division (in-memory)",
                SpanKind::HashDivision,
                Some(storage),
            );
            return collect_batches(op, cancel);
        }
        let dividend_scan = maybe_profile(
            dividend.scan(storage),
            profile.as_ref(),
            "scan dividend",
            SpanKind::Scan,
            Some(storage),
        );
        let divisor_scan = maybe_profile(
            divisor.scan(storage),
            profile.as_ref(),
            "scan divisor",
            SpanKind::Scan,
            Some(storage),
        );
        let mut op = HashDivision::new(
            dividend_scan,
            divisor_scan,
            spec.clone(),
            mode,
            pool.clone(),
        )?;
        op.set_cancel(cancel);
        let op = maybe_profile(
            Box::new(op),
            profile.as_ref(),
            "hash-division (in-memory)",
            SpanKind::HashDivision,
            Some(storage),
        );
        collect_cancel(op, cancel)
    };
    // Each overflow rung gets its own Partition span: the partitioned
    // executions run entirely inside overflow.rs, so the span measures the
    // whole rung (partitioning, phases, collection) as one region.
    let rung = |label: &str| -> Option<SpanScope> {
        config
            .profile
            .as_ref()
            .map(|sink| SpanScope::enter(sink, label, SpanKind::Partition, Some(storage.clone())))
    };
    // The adaptive hybrid: profiled scans feed `hybrid`, which opens its
    // own "hash-division (adaptive)" span and records spills/revives.
    let adaptive = |fanout: usize, report: &mut DegradationReport| -> Result<Relation> {
        let dividend_scan = maybe_profile(
            dividend.scan(storage),
            profile.as_ref(),
            "scan dividend",
            SpanKind::Scan,
            Some(storage),
        );
        let divisor_scan = maybe_profile(
            divisor.scan(storage),
            profile.as_ref(),
            "scan divisor",
            SpanKind::Scan,
            Some(storage),
        );
        hybrid::adaptive_hybrid_report(
            storage,
            &pool,
            dividend_scan,
            divisor_scan,
            spec,
            mode,
            fanout,
            cancel,
            profile.as_ref(),
            report,
        )
    };
    match config.overflow {
        OverflowPolicy::Fail => in_memory(report),
        OverflowPolicy::Adaptive { fanout } => adaptive(fanout, report),
        OverflowPolicy::QuotientPartition { partitions } => {
            report.note_phase(format!("quotient-partitioned k={partitions}"));
            let _rung = rung(&format!("quotient-partitioned k={partitions}"));
            overflow::quotient_partitioned_report(
                storage,
                &pool,
                dividend.scan(storage),
                divisor.scan(storage),
                spec,
                mode,
                partitions,
                cancel,
                report,
            )
        }
        OverflowPolicy::DivisorPartition { partitions } => {
            report.note_phase(format!("divisor-partitioned k={partitions}"));
            let _rung = rung(&format!("divisor-partitioned k={partitions}"));
            overflow::divisor_partitioned_report(
                storage,
                &pool,
                dividend.scan(storage),
                divisor.scan(storage),
                spec,
                partitions,
                cancel,
                report,
            )
        }
        OverflowPolicy::CombinedPartition {
            divisor_partitions,
            quotient_partitions,
        } => {
            report.note_phase(format!(
                "combined-partitioned dk={divisor_partitions} qk={quotient_partitions}"
            ));
            let _rung = rung(&format!(
                "combined-partitioned dk={divisor_partitions} qk={quotient_partitions}"
            ));
            overflow::combined_partitioned_report(
                storage,
                &pool,
                dividend.scan(storage),
                divisor.scan(storage),
                spec,
                divisor_partitions,
                quotient_partitions,
                cancel,
                report,
            )
        }
        OverflowPolicy::Auto => {
            // Rung 0, batch mode only: the vectorized in-memory attempt.
            // Its row-entry kernels share the tuple path's tables and
            // memory accounting, so exhaustion fires at the same tuple
            // and the ladder below is unchanged.
            if config.exec == ExecMode::Batch {
                match in_memory(report) {
                    Ok(rel) => return Ok(rel),
                    Err(e) if e.is_memory_exhausted() => {
                        mark_exhausted(report);
                        report.note_retry();
                    }
                    Err(e) => return Err(e),
                }
            }
            // Rung 1: the adaptive hybrid. Its optimistic phase is the
            // in-memory attempt; quotient-table pressure is absorbed by
            // incremental spilling, so it only fails when the divisor
            // table itself does not fit or a single quotient group defeats
            // re-partitioning (the recursion limit).
            let mut last = match adaptive(hybrid::DEFAULT_FANOUT, report) {
                Ok(rel) => return Ok(rel),
                Err(e) if e.is_memory_exhausted() || e.is_recursion_limit() => {
                    mark_failed(report, &e);
                    e
                }
                Err(e) => return Err(e),
            };
            // Rung 2: the divisor table does not fit — partition it.
            let mut k = 2usize;
            while k <= 256 {
                report.note_retry();
                report.note_phase(format!("divisor-partitioned k={k}"));
                let attempt = {
                    let _rung = rung(&format!("divisor-partitioned k={k}"));
                    overflow::divisor_partitioned_report(
                        storage,
                        &pool,
                        dividend.scan(storage),
                        divisor.scan(storage),
                        spec,
                        k,
                        cancel,
                        report,
                    )
                };
                match attempt {
                    Ok(rel) => return Ok(rel),
                    Err(e) if e.is_memory_exhausted() => {
                        mark_exhausted(report);
                        last = e;
                        k *= 2;
                    }
                    Err(e) => return Err(e),
                }
            }
            // Rung 3: both tables are too large — combine the strategies.
            let mut k = 4usize;
            while k <= 256 {
                report.note_retry();
                report.note_phase(format!("combined-partitioned dk={k} qk={k}"));
                let attempt = {
                    let _rung = rung(&format!("combined-partitioned dk={k} qk={k}"));
                    overflow::combined_partitioned_report(
                        storage,
                        &pool,
                        dividend.scan(storage),
                        divisor.scan(storage),
                        spec,
                        k,
                        k,
                        cancel,
                        report,
                    )
                };
                match attempt {
                    Ok(rel) => return Ok(rel),
                    Err(e) if e.is_memory_exhausted() => {
                        mark_exhausted(report);
                        last = e;
                        k *= 2;
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(last)
        }
    }
}

/// Convenience: divides two in-memory relations with a private storage
/// manager (the paper's configuration, but an ample memory pool).
///
/// The divisor columns are matched positionally against the *trailing*
/// dividend columns, as in `Transcript(student-id, course-no) ÷
/// Courses(course-no)`; use [`divide`] with an explicit [`DivisionSpec`]
/// for other layouts.
pub fn divide_relations(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: Algorithm,
) -> Result<Relation> {
    let storage = StorageManager::shared(StorageConfig::large());
    let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema())?;
    divide(
        &storage,
        &Source::from_relation(dividend),
        &Source::from_relation(divisor),
        &spec,
        algorithm,
        &DivisionConfig::default(),
    )
}

/// Loads a relation into a record file and returns it as a source.
pub fn load_source(storage: &StorageRef, relation: &Relation) -> Result<Source> {
    let file = reldiv_exec::scan::load_relation(storage, relation)?;
    Ok(Source::from_file(file, relation.schema().clone()))
}

/// Materializes an operator's output into a temporary record file,
/// returning its file id and schema.
///
/// The aggregate-with-join plans use this between the semi-join and the
/// aggregation: the paper's cost model charges the dividend scan twice in
/// those plans (`r·SIO` appears in both the semi-join and the aggregation
/// terms), which corresponds to a materialized intermediate. Small
/// intermediates stay in the buffer pool and cost no transfers.
///
/// The caller owns the file and must `delete_file` it when done.
pub fn materialize(storage: &StorageRef, mut op: BoxedOp) -> Result<(FileId, Schema)> {
    let schema = op.schema().clone();
    let codec = reldiv_rel::RecordCodec::new(schema.clone());
    let file = storage.borrow_mut().create_file(StorageManager::DATA_DISK);
    // `close` runs on every exit — a mid-drain encode or append failure
    // must not leak what the plan holds (pinned pages, run files).
    fn drain(
        storage: &StorageRef,
        op: &mut BoxedOp,
        codec: &reldiv_rel::RecordCodec,
        file: FileId,
    ) -> Result<()> {
        op.open()?;
        let mut buf = Vec::with_capacity(codec.record_width());
        while let Some(t) = op.next()? {
            buf.clear();
            codec.encode_into(&t, &mut buf).map_err(ExecError::from)?;
            storage.borrow_mut().append(file, &buf)?;
        }
        Ok(())
    }
    let result = drain(storage, &mut op, &codec, file);
    let closed = op.close();
    result?;
    closed?;
    Ok((file, schema))
}

/// Guard for misuse: algorithms that cannot run meaningfully.
pub fn validate_algorithm_for_inputs(algorithm: Algorithm, assume_unique: bool) -> Result<()> {
    if let Algorithm::HashDivision {
        mode: HashDivisionMode::CounterOnly,
    } = algorithm
    {
        if !assume_unique {
            return Err(ExecError::Plan(
                "CounterOnly hash-division requires duplicate-free inputs \
                 (set assume_unique or use the Standard mode)"
                    .into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn all_algorithms() -> Vec<Algorithm> {
        let mut v = Algorithm::table_columns().to_vec();
        v.push(Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        });
        v
    }

    #[test]
    fn every_algorithm_agrees_on_the_running_example() {
        let rows = [[1, 10], [1, 20], [2, 10], [3, 20], [3, 10], [4, 99]];
        let dividend = transcript(&rows);
        let divisor = courses(&[10, 20]);
        for alg in all_algorithms() {
            let q = divide_relations(&dividend, &divisor, alg).unwrap();
            let mut sids: Vec<i64> = q
                .tuples()
                .iter()
                .map(|t| t.value(0).as_int().unwrap())
                .collect();
            sids.sort_unstable();
            assert_eq!(sids, vec![1, 3], "{alg:?}");
        }
    }

    #[test]
    fn every_algorithm_agrees_on_empty_divisor() {
        let dividend = transcript(&[[5, 10], [6, 20], [5, 30]]);
        let divisor = courses(&[]);
        for alg in all_algorithms() {
            let q = divide_relations(&dividend, &divisor, alg).unwrap();
            let mut sids: Vec<i64> = q
                .tuples()
                .iter()
                .map(|t| t.value(0).as_int().unwrap())
                .collect();
            sids.sort_unstable();
            assert_eq!(sids, vec![5, 6], "{alg:?}");
        }
    }

    #[test]
    fn file_sources_match_memory_sources() {
        let dividend = transcript(&[[1, 10], [1, 20], [2, 10]]);
        let divisor = courses(&[10, 20]);
        let storage = StorageManager::shared(StorageConfig::large());
        let d_src = load_source(&storage, &dividend).unwrap();
        let s_src = load_source(&storage, &divisor).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for alg in all_algorithms() {
            let q = divide(
                &storage,
                &d_src,
                &s_src,
                &spec,
                alg,
                &DivisionConfig::default(),
            )
            .unwrap();
            assert_eq!(q.cardinality(), 1, "{alg:?}");
            assert_eq!(q.tuples()[0], ints(&[1]), "{alg:?}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            all_algorithms().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), all_algorithms().len());
    }

    #[test]
    fn counter_mode_requires_unique_declaration() {
        assert!(validate_algorithm_for_inputs(
            Algorithm::HashDivision {
                mode: HashDivisionMode::CounterOnly
            },
            false
        )
        .is_err());
        assert!(validate_algorithm_for_inputs(
            Algorithm::HashDivision {
                mode: HashDivisionMode::CounterOnly
            },
            true
        )
        .is_ok());
    }

    #[test]
    fn auto_overflow_recovers_from_small_pool() {
        // A pool too small for the quotient table: Auto's adaptive hybrid
        // spills partitions incrementally and still produces the right
        // answer, without restarting the division.
        let mut rows = Vec::new();
        for q in 0..2000 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig {
            data_page_size: 8192,
            run_page_size: 1024,
            buffer_bytes: 1 << 22,
            work_memory_bytes: 64 * 1024,
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig::default(),
        )
        .unwrap();
        assert_eq!(q.cardinality(), 2000);
        // The runtime degradation is visible in the report: the optimistic
        // phase hit the pool limit and the adaptive phase won.
        assert!(report.degraded);
        assert!(report.retries >= 1);
        assert_eq!(report.phases[0], "in-memory: memory exhausted");
        let winner = report.final_phase().unwrap();
        assert!(winner.starts_with("adaptive-hybrid"), "{winner}");
        assert!(report.partitions_spilled > 0, "victims were evicted");
        assert!(report.spill_bytes > 0, "spilled partitions hit disk");
    }

    /// A workload with duplicates, noise rows, and a mix of complete and
    /// incomplete candidates — enough structure to notice any divergence
    /// between the execution paths.
    fn noisy_workload() -> (Relation, Relation) {
        let mut rows = Vec::new();
        for sid in 0..200 {
            for cno in 0..(sid % 5) + 1 {
                rows.push([sid, cno]);
            }
            rows.push([sid, 900 + sid]); // no divisor match
            rows.push([sid, 0]); // duplicate
        }
        (transcript(&rows), courses(&[0, 1, 2, 3]))
    }

    #[test]
    fn batch_exec_matches_tuple_exec_byte_for_byte() {
        let (dividend, divisor) = noisy_workload();
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for mode in [HashDivisionMode::Standard, HashDivisionMode::EarlyOut] {
            for overflow in [OverflowPolicy::Fail, OverflowPolicy::Auto] {
                let run = |exec| {
                    divide(
                        &storage,
                        &Source::from_relation(&dividend),
                        &Source::from_relation(&divisor),
                        &spec,
                        Algorithm::HashDivision { mode },
                        &DivisionConfig {
                            overflow,
                            exec,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                };
                let tuple = run(ExecMode::Tuple);
                let batch = run(ExecMode::Batch);
                if overflow == OverflowPolicy::Fail {
                    // Both paths run the in-memory operator: identical
                    // hash kernels give identical insertion order, so
                    // ordered equality, not just bag equality.
                    assert_eq!(tuple, batch, "{mode:?} {overflow:?}");
                } else {
                    // Under Auto the tuple path's first rung is the
                    // adaptive hybrid, whose partitioned emission order
                    // legitimately differs; `divide` documents quotient
                    // order as algorithm-dependent.
                    assert_eq!(
                        tuple.bag_counts(),
                        batch.bag_counts(),
                        "{mode:?} {overflow:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_auto_overflow_falls_down_the_ladder() {
        // Same undersized pool as the tuple-path test above: the batch
        // rung exhausts at the same tuple (shared memory accounting), and
        // the unchanged tuple-path ladder finishes the job.
        let mut rows = Vec::new();
        for q in 0..2000 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig {
            data_page_size: 8192,
            run_page_size: 1024,
            buffer_bytes: 1 << 22,
            work_memory_bytes: 64 * 1024,
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                exec: ExecMode::Batch,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(q.cardinality(), 2000);
        assert!(report.degraded);
        assert!(report.retries >= 1);
        assert_eq!(report.phases[0], "in-memory: memory exhausted");
        let winner = report.final_phase().unwrap();
        assert!(winner.starts_with("adaptive-hybrid"), "{winner}");
    }

    #[test]
    fn batch_clean_division_reports_in_memory() {
        let (dividend, divisor) = noisy_workload();
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (_, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                exec: ExecMode::Batch,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.degraded);
        assert_eq!(report.final_phase().unwrap(), "in-memory");
    }

    #[test]
    fn batch_profiled_run_keeps_the_span_labels() {
        let (dividend, divisor) = noisy_workload();
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, _, profile) = divide_profiled(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                exec: ExecMode::Batch,
                ..Default::default()
            },
        )
        .unwrap();
        let root = &profile.root;
        assert_eq!(root.phases, vec!["in-memory".to_string()]);
        let labels: Vec<&str> = root.children.iter().map(|c| c.label.as_str()).collect();
        assert!(
            labels.contains(&"hash-division (in-memory)"),
            "spans: {labels:?}"
        );
        let div = root
            .children
            .iter()
            .find(|c| c.label == "hash-division (in-memory)")
            .unwrap();
        assert_eq!(div.tuples_out, q.cardinality() as u64);
        let scan_labels: Vec<&str> = div.children.iter().map(|c| c.label.as_str()).collect();
        assert!(scan_labels.contains(&"scan dividend"), "{scan_labels:?}");
        assert!(scan_labels.contains(&"scan divisor"), "{scan_labels:?}");
    }

    #[test]
    fn explicit_adaptive_policy_runs_through_divide() {
        let mut rows = Vec::new();
        for q in 0..500 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                overflow: OverflowPolicy::Adaptive { fanout: 8 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(q.cardinality(), 500);
        assert!(!report.degraded, "ample memory: clean adaptive run");
        assert_eq!(report.final_phase(), Some("in-memory"));
    }

    #[test]
    fn mem_budget_degrades_division_without_touching_shared_pool_config() {
        // The same workload fits the shared pool but not the per-query
        // budget: the budget alone must force (and survive) degradation.
        let mut rows = Vec::new();
        for q in 0..2000 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                mem_budget: Some(48 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(q.cardinality(), 2000);
        assert!(report.degraded, "the 48 KB budget must bite");
        assert!(report.partitions_spilled > 0);
        // And without the budget the identical division is clean.
        let (_, clean) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig::default(),
        )
        .unwrap();
        assert!(!clean.degraded);
    }

    #[test]
    fn clean_division_reports_no_degradation() {
        let dividend = transcript(&[[1, 1], [1, 2], [2, 1]]);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report) = divide_with_report(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig::default(),
        )
        .unwrap();
        assert_eq!(q.cardinality(), 1);
        assert!(!report.degraded);
        assert_eq!(report.retries, 0);
        assert_eq!(report.final_phase(), Some("in-memory"));
        assert_eq!(report.spill_bytes, 0);
    }

    #[test]
    fn divide_profiled_builds_a_span_tree_for_every_algorithm() {
        let rows = [[1, 10], [1, 20], [2, 10], [3, 20], [3, 10], [4, 99]];
        let dividend = transcript(&rows);
        let divisor = courses(&[10, 20]);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        for alg in all_algorithms() {
            let (q, _report, profile) = divide_profiled(
                &storage,
                &Source::from_relation(&dividend),
                &Source::from_relation(&divisor),
                &spec,
                alg,
                &DivisionConfig::default(),
            )
            .unwrap();
            assert_eq!(q.cardinality(), 2, "{alg:?}");
            // Root is the query span; the plan's operators hang below it.
            assert!(
                profile.root.label.starts_with("divide ["),
                "{alg:?}: {}",
                profile.root.label
            );
            assert!(
                profile.root.node_count() >= 3,
                "{alg:?}: want operator spans, got\n{}",
                profile.render()
            );
            // The in-memory path reports its phase on the root span.
            if matches!(alg, Algorithm::HashDivision { .. }) {
                assert_eq!(profile.root.phases, vec!["in-memory".to_owned()]);
            }
        }
    }

    #[test]
    fn profiled_adaptive_overflow_gets_spill_spans() {
        let mut rows = Vec::new();
        for q in 0..2000 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig {
            data_page_size: 8192,
            run_page_size: 1024,
            buffer_bytes: 1 << 22,
            work_memory_bytes: 64 * 1024,
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let (q, report, profile) = divide_profiled(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig::default(),
        )
        .unwrap();
        assert_eq!(q.cardinality(), 2000);
        assert!(report.degraded);
        // The adaptive hybrid appears as a HashDivision span under the
        // root, its incremental evictions as nested Spill spans, and the
        // spill bytes land on the root span.
        let hybrid = profile
            .root
            .children
            .iter()
            .find(|c| c.label == "hash-division (adaptive)")
            .expect("adaptive span");
        assert_eq!(hybrid.kind, reldiv_exec::profile::SpanKind::HashDivision);
        fn count_kind(
            n: &reldiv_exec::profile::ProfileNode,
            kind: reldiv_exec::profile::SpanKind,
        ) -> usize {
            usize::from(n.kind == kind)
                + n.children
                    .iter()
                    .map(|c| count_kind(c, kind))
                    .sum::<usize>()
        }
        let spills = count_kind(hybrid, reldiv_exec::profile::SpanKind::Spill);
        assert!(spills > 0, "evictions must be profiled");
        assert_eq!(spills, report.partitions_spilled as usize);
        assert_eq!(profile.root.spill_bytes, report.spill_bytes);
        assert_eq!(profile.root.phases.len(), report.phases.len());
    }

    #[test]
    fn expired_deadline_cancels_division() {
        let dividend = transcript(&[[1, 1], [1, 2], [2, 1]]);
        let divisor = courses(&[1, 2]);
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = DivisionConfig {
            cancel: CancelToken::after(std::time::Duration::ZERO),
            ..Default::default()
        };
        for algorithm in [
            Algorithm::Naive,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
        ] {
            let err = divide(
                &storage,
                &Source::from_relation(&dividend),
                &Source::from_relation(&divisor),
                &spec,
                algorithm,
                &config,
            )
            .unwrap_err();
            assert!(err.is_cancelled(), "{algorithm:?}: {err}");
        }
    }
}

#[cfg(test)]
mod planner_tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    #[test]
    fn recommend_maps_planner_choices_onto_algorithms() {
        // Unrestricted, duplicate-free: hash aggregation without join.
        assert_eq!(
            Algorithm::recommend(100, 100, None, false, true),
            Algorithm::HashAggregation { join: false }
        );
        // Restricted divisor: hash-division.
        assert_eq!(
            Algorithm::recommend(100, 100, None, true, true),
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard
            }
        );
        // Possible duplicates: hash-division ("fast and general").
        assert_eq!(
            Algorithm::recommend(100, 100, None, false, false),
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard
            }
        );
    }

    #[test]
    fn recommended_algorithm_actually_divides() {
        let dividend = Relation::from_tuples(
            Schema::new(vec![Field::int("q"), Field::int("d")]),
            vec![ints(&[1, 5]), ints(&[1, 6]), ints(&[2, 5])],
        )
        .unwrap();
        let divisor = Relation::from_tuples(
            Schema::new(vec![Field::int("d")]),
            vec![ints(&[5]), ints(&[6])],
        )
        .unwrap();
        let alg = Algorithm::recommend(2, 2, Some(3), true, false);
        let q = divide_relations(&dividend, &divisor, alg).unwrap();
        assert_eq!(q.cardinality(), 1);
    }

    #[test]
    fn combined_partition_policy_runs_through_divide() {
        let dividend = Relation::from_tuples(
            Schema::new(vec![Field::int("q"), Field::int("d")]),
            (0..200)
                .flat_map(|q| (0..4).map(move |d| ints(&[q, d])))
                .collect(),
        )
        .unwrap();
        let divisor = Relation::from_tuples(
            Schema::new(vec![Field::int("d")]),
            (0..4).map(|d| ints(&[d])).collect(),
        )
        .unwrap();
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let q = divide(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            &DivisionConfig {
                overflow: OverflowPolicy::CombinedPartition {
                    divisor_partitions: 3,
                    quotient_partitions: 4,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(q.cardinality(), 200);
    }
}
