//! Division by sort-based aggregation (Section 2.2.1).
//!
//! "First, the courses offered by the university are counted using a
//! scalar aggregate operator. Second, for each student, the courses taken
//! are counted using an aggregate function operator. Third, only those
//! students whose number of courses taken is equal to the number of
//! courses offered are selected to be included in the quotient."
//!
//! Two plan shapes:
//!
//! * **Without join** — valid only when every dividend tuple's divisor
//!   attributes appear in the divisor (the paper's first example, where
//!   the divisor is *all* courses). Counting then equals matching.
//! * **With join** — the general shape (the paper's second example, where
//!   the divisor is restricted by a selection): a merge semi-join
//!   restricts the dividend to valid divisor values before counting,
//!   which costs an additional sort of the dividend on *different*
//!   attributes ("it must be sorted first on course-no's for the join and
//!   then on student-id's for aggregation").

use reldiv_exec::agg::{HavingCount, ScalarCount, SortCountAggregate};
use reldiv_exec::merge_join::{JoinMode, MergeJoin};
use reldiv_exec::op::{collect, BoxedOp};
use reldiv_exec::profile::{maybe_profile, SpanKind};
use reldiv_exec::sort::{Sort, SortMode};
use reldiv_rel::Relation;
use reldiv_storage::StorageRef;

use crate::api::{DivisionConfig, Source};
use crate::spec::DivisionSpec;
use crate::{ExecError, Result};

/// Counts the distinct divisor tuples with a scalar aggregate.
///
/// Under `assume_unique` this is a plain counting scan; otherwise a
/// distinct sort feeds it (the paper's footnote: "a duplicate elimination
/// step is explicitly requested and inserted into the query evaluation
/// plan").
pub(crate) fn divisor_count_sorted(
    storage: &StorageRef,
    divisor: &Source,
    config: &DivisionConfig,
) -> Result<i64> {
    let p = config.profile.as_ref();
    let scan = maybe_profile(
        divisor.scan(storage),
        p,
        "scan divisor",
        SpanKind::Scan,
        Some(storage),
    );
    let input: BoxedOp = if config.assume_unique {
        scan
    } else {
        let all: Vec<usize> = (0..divisor.schema().arity()).collect();
        let sort: BoxedOp = Box::new(Sort::new(
            storage.clone(),
            scan,
            all,
            SortMode::Distinct,
            config.sort,
        )?);
        maybe_profile(
            sort,
            p,
            "sort divisor (distinct)",
            SpanKind::Sort,
            Some(storage),
        )
    };
    let count: BoxedOp = Box::new(ScalarCount::new(input, false));
    let count = maybe_profile(
        count,
        p,
        "scalar count (divisor)",
        SpanKind::Aggregation,
        Some(storage),
    );
    let counted = collect(count)?;
    Ok(counted.tuples()[0].value(0).as_int().expect("count is Int"))
}

/// The vacuous case shared by the aggregate plans: an empty divisor means
/// the quotient is the distinct quotient-attribute projection of the
/// dividend. Aggregation alone cannot express this (no group ever counts
/// to zero), so it is a separate plan.
pub(crate) fn distinct_quotient_projection_sorted(
    storage: &StorageRef,
    dividend: &Source,
    spec: &DivisionSpec,
    config: &DivisionConfig,
) -> Result<Relation> {
    let projected =
        reldiv_exec::project::Project::new(dividend.scan(storage), spec.quotient_keys.clone())?;
    let arity = spec.quotient_keys.len();
    let sorted: BoxedOp = Box::new(Sort::new(
        storage.clone(),
        Box::new(projected),
        (0..arity).collect(),
        SortMode::Distinct,
        config.sort,
    )?);
    collect(maybe_profile(
        sorted,
        config.profile.as_ref(),
        "sort distinct quotient projection",
        SpanKind::Sort,
        Some(storage),
    ))
}

/// Runs division by sort-based aggregation.
pub fn sort_agg_division(
    storage: &StorageRef,
    dividend: &Source,
    divisor: &Source,
    spec: &DivisionSpec,
    with_join: bool,
    config: &DivisionConfig,
) -> Result<Relation> {
    // Step 1: scalar aggregate — count the (distinct) divisor.
    let target = divisor_count_sorted(storage, divisor, config)?;
    if target == 0 {
        return distinct_quotient_projection_sorted(storage, dividend, spec, config);
    }

    // Step 2: count per group, optionally after a merge semi-join.
    let p = config.profile.as_ref();
    let agg_input: BoxedOp = if with_join {
        // Sort the dividend on the divisor attributes for the join (minor
        // keys: the quotient attributes, so Distinct mode deduplicates
        // whole tuples), and the divisor on all its attributes.
        let mut join_sort_keys = spec.divisor_keys.clone();
        join_sort_keys.extend_from_slice(&spec.quotient_keys);
        let dividend_mode = if config.assume_unique {
            SortMode::Plain
        } else {
            SortMode::Distinct
        };
        let sorted_dividend: BoxedOp = Box::new(Sort::new(
            storage.clone(),
            dividend.scan(storage),
            join_sort_keys,
            dividend_mode,
            config.sort,
        )?);
        let sorted_dividend = maybe_profile(
            sorted_dividend,
            p,
            "sort dividend (divisor+quotient keys)",
            SpanKind::Sort,
            Some(storage),
        );
        let sorted_divisor: BoxedOp = Box::new(Sort::new(
            storage.clone(),
            divisor.scan(storage),
            spec.divisor_all_columns(),
            SortMode::Distinct,
            config.sort,
        )?);
        let sorted_divisor = maybe_profile(
            sorted_divisor,
            p,
            "sort divisor (distinct)",
            SpanKind::Sort,
            Some(storage),
        );
        let join: BoxedOp = Box::new(MergeJoin::new(
            sorted_dividend,
            sorted_divisor,
            spec.divisor_keys.clone(),
            spec.divisor_all_columns(),
            JoinMode::LeftSemi,
        )?);
        maybe_profile(
            join,
            p,
            "merge semi-join",
            SpanKind::MergeJoin,
            Some(storage),
        )
    } else {
        maybe_profile(
            dividend.scan(storage),
            p,
            "scan dividend",
            SpanKind::Scan,
            Some(storage),
        )
    };

    // The aggregate function: count (distinct) dividend tuples per group.
    // After a semi-join over a deduplicated dividend the input is unique;
    // without the join, uniqueness must be requested explicitly.
    let need_distinct = !config.assume_unique && !with_join;
    let agg: BoxedOp = Box::new(SortCountAggregate::new(
        storage.clone(),
        agg_input,
        spec.quotient_keys.clone(),
        need_distinct,
        config.sort,
    )?);
    let agg = maybe_profile(
        agg,
        p,
        "sort-based count aggregate",
        SpanKind::Aggregation,
        Some(storage),
    );

    // Step 3: select the groups whose count equals the divisor count.
    let having: BoxedOp = Box::new(HavingCount::new(agg, target).map_err(|e| match e {
        ExecError::Plan(m) => ExecError::Plan(format!("sort-agg division: {m}")),
        other => other,
    })?);
    collect(maybe_profile(
        having,
        p,
        "having count = |divisor|",
        SpanKind::Other,
        Some(storage),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::{Field, Schema};
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn run(
        dividend: Relation,
        divisor: Relation,
        with_join: bool,
        assume_unique: bool,
    ) -> Vec<i64> {
        let storage = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let config = DivisionConfig {
            assume_unique,
            ..DivisionConfig::default()
        };
        let rel = sort_agg_division(
            &storage,
            &Source::from_relation(&dividend),
            &Source::from_relation(&divisor),
            &spec,
            with_join,
            &config,
        )
        .unwrap();
        let mut out: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn no_join_works_when_dividend_is_restricted_to_divisor() {
        // Example 1: the divisor is all courses appearing anywhere.
        let rows = [[1, 10], [1, 20], [2, 10], [3, 10], [3, 20]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), false, true),
            vec![1, 3]
        );
    }

    #[test]
    fn with_join_handles_restricted_divisors() {
        // Example 2: course 99 (physics) is not in the divisor. Without
        // the join, student 2's physics tuple would inflate the count.
        let rows = [[1, 10], [1, 20], [2, 10], [2, 99]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), true, true),
            vec![1]
        );
    }

    #[test]
    fn no_join_overcounts_without_the_restriction() {
        // The documented failure mode of the no-join shape on unrestricted
        // dividends: student 2 counts the physics course toward the total.
        let rows = [[1, 10], [1, 20], [2, 10], [2, 99]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20]), false, true),
            vec![1, 2],
            "this is precisely why the paper's second example needs a join"
        );
    }

    #[test]
    fn duplicates_are_neutralized_when_not_assumed_unique() {
        let rows = [[1, 10], [1, 10], [1, 20], [2, 10], [2, 10]];
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20, 20]), true, false),
            vec![1]
        );
        assert_eq!(
            run(transcript(&rows), courses(&[10, 20, 20]), false, false),
            vec![1]
        );
    }

    #[test]
    fn empty_divisor_yields_distinct_projection() {
        let rows = [[7, 10], [8, 20], [7, 30]];
        for with_join in [false, true] {
            assert_eq!(
                run(transcript(&rows), courses(&[]), with_join, false),
                vec![7, 8]
            );
        }
    }

    #[test]
    fn empty_dividend_yields_empty() {
        for with_join in [false, true] {
            assert_eq!(
                run(transcript(&[]), courses(&[10]), with_join, false),
                Vec::<i64>::new()
            );
        }
    }

    #[test]
    fn divisor_count_sorted_counts_distinct() {
        let storage = StorageManager::shared(StorageConfig::large());
        let divisor = courses(&[10, 20, 10, 30, 20]);
        let config = DivisionConfig::default();
        let c = divisor_count_sorted(&storage, &Source::from_relation(&divisor), &config).unwrap();
        assert_eq!(c, 3);
        let config = DivisionConfig {
            assume_unique: true,
            ..config
        };
        let c = divisor_count_sorted(&storage, &Source::from_relation(&divisor), &config).unwrap();
        assert_eq!(c, 5, "assume_unique takes the input at face value");
    }
}
