//! Vectorized hash-division: [`BatchHashDivision`], the batch-at-a-time
//! counterpart of [`HashDivision`](crate::hash_division::HashDivision).
//!
//! The operator runs the same three steps over columnar
//! [`Batch`]es instead of single tuples:
//!
//! 1. **Build the divisor table** with
//!    [`DivisorTable::build_batch`]: one bulk hash per divisor batch, one
//!    cancellation poll per batch.
//! 2. **Build the quotient table**: per dividend batch, two bulk hash
//!    passes (divisor attributes, quotient attributes) and per-row probes
//!    through [`DivisorTable::lookup_row`] /
//!    [`QuotientTable::absorb_row`], which compare column-at-a-time
//!    against the batch and materialize a tuple only when a new quotient
//!    candidate is created.
//! 3. **Scan the quotient table**, chunking complete candidates into
//!    batches.
//!
//! Because the bulk hash kernel is bit-identical to
//! [`Tuple::hash_on`](reldiv_rel::Tuple::hash_on) and the row-entry
//! methods share the tuple path's tables, chain layouts, divisor numbers,
//! and memory accounting are *exactly* those of the tuple path: the
//! quotient comes out byte-identical, and memory exhaustion fires at the
//! same tuple — so the overflow ladder above this operator behaves the
//! same in either execution mode.
//!
//! What changes is the constant factor: per batch the operator pays two
//! virtual calls and one cancellation poll instead of one-plus-one per
//! tuple, the hashes are computed in a tight columnar loop, and the
//! tuple path's per-probe scratch allocations (the key-column index
//! vectors in `lookup`/`absorb`) disappear entirely.

use reldiv_exec::batch::{BatchOperator, BoxedBatchOp, DEFAULT_BATCH_SIZE};
use reldiv_exec::cancel::CancelToken;
use reldiv_exec::op::OpState;
use reldiv_rel::{Batch, Schema};
use reldiv_storage::MemoryPool;

use crate::hash_division::{DivisorTable, HashDivisionMode, HashDivisionStats, QuotientTable};
use crate::spec::DivisionSpec;
use crate::Result;

/// The vectorized hash-division operator.
pub struct BatchHashDivision {
    dividend: BoxedBatchOp,
    divisor: BoxedBatchOp,
    spec: DivisionSpec,
    mode: HashDivisionMode,
    pool: MemoryPool,
    schema: Schema,
    state: OpState,
    divisor_table: Option<DivisorTable>,
    quotient_table: Option<QuotientTable>,
    streaming: bool,
    batch_size: usize,
    stats: HashDivisionStats,
    cancel: CancelToken,
}

impl BatchHashDivision {
    /// Creates a vectorized hash-division of `dividend ÷ divisor`
    /// described by `spec`.
    pub fn new(
        dividend: BoxedBatchOp,
        divisor: BoxedBatchOp,
        spec: DivisionSpec,
        mode: HashDivisionMode,
        pool: MemoryPool,
    ) -> Result<Self> {
        spec.validate(dividend.schema(), divisor.schema())?;
        let schema = spec.quotient_schema(dividend.schema())?;
        Ok(BatchHashDivision {
            dividend,
            divisor,
            spec,
            mode,
            pool,
            schema,
            state: OpState::Created,
            divisor_table: None,
            quotient_table: None,
            streaming: false,
            batch_size: DEFAULT_BATCH_SIZE,
            stats: HashDivisionStats::default(),
            cancel: CancelToken::none(),
        })
    }

    /// Installs a cancellation token, polled once per batch in the build
    /// and stream loops.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Overrides the output chunk size of the final table scan (tests).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Run statistics (meaningful once the operator has been drained).
    pub fn stats(&self) -> HashDivisionStats {
        let mut s = self.stats;
        if let Some(q) = &self.quotient_table {
            s.candidates = q.candidates();
        }
        s
    }

    /// Steps 1+2 for one dividend batch; returns the quotient tuples the
    /// `EarlyOut` mode completed while absorbing it (empty otherwise).
    fn absorb_batch(&mut self, batch: &Batch) -> Result<Batch> {
        let dt = self.divisor_table.as_ref().expect("open builds tables");
        let qt = self.quotient_table.as_mut().expect("open builds tables");
        let mut out = Batch::with_capacity(self.schema.clone(), 0);
        // Empty divisor: universal quantification is vacuous; every
        // dividend tuple survives as a (complete) candidate.
        let empty_divisor = dt.count() == 0;
        let dhashes = if empty_divisor {
            Vec::new()
        } else {
            batch.hash_rows(&self.spec.divisor_keys)
        };
        let qhashes = batch.hash_rows(&self.spec.quotient_keys);
        for row in 0..batch.len() {
            let divisor_no = if empty_divisor {
                None
            } else {
                match dt.lookup_row(dhashes[row], batch, row, &self.spec.divisor_keys) {
                    Some(d) => Some(d),
                    None => {
                        // No matching divisor tuple: discard immediately.
                        self.stats.dividend_discarded += 1;
                        continue;
                    }
                }
            };
            if let Some(q) = qt.absorb_row(qhashes[row], batch, row, divisor_no)? {
                self.stats.emitted += 1;
                out.push_tuple(&q);
            }
        }
        Ok(out)
    }
}

impl BatchOperator for BatchHashDivision {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.stats = HashDivisionStats::default();
        let dt = DivisorTable::build_batch(&mut self.divisor, &self.pool, self.cancel)?;
        self.stats.divisor_count = dt.count() as u64;
        self.stats.divisor_duplicates = dt.duplicates();
        let qt = QuotientTable::new(
            &self.pool,
            self.mode,
            dt.count(),
            self.spec.quotient_keys.clone(),
            self.schema.record_width(),
        )?;
        self.divisor_table = Some(dt);
        self.quotient_table = Some(qt);
        self.dividend.open()?;
        match self.mode {
            HashDivisionMode::Standard | HashDivisionMode::CounterOnly => {
                // Stop-and-go: consume the whole dividend now, polling
                // the token once per batch.
                while let Some(batch) = self.dividend.next_batch()? {
                    self.cancel.check()?;
                    self.absorb_batch(&batch)?;
                }
                self.dividend.close()?;
                self.streaming = false;
            }
            HashDivisionMode::EarlyOut => {
                self.streaming = true;
            }
        }
        self.state = OpState::Open;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.state.require_open()?;
        // EarlyOut: absorb one dividend batch per call, emitting whatever
        // candidates it completed — possibly an empty batch, which tells
        // the caller "still working" and keeps the poll cadence bounded.
        if self.streaming {
            return match self.dividend.next_batch()? {
                Some(batch) => {
                    self.cancel.check()?;
                    Ok(Some(self.absorb_batch(&batch)?))
                }
                None => {
                    self.dividend.close()?;
                    self.streaming = false;
                    // All complete candidates were already emitted.
                    Ok(None)
                }
            };
        }
        // Step 3: chunk the final quotient-table scan into batches.
        let qt = self.quotient_table.as_mut().expect("open builds tables");
        let mut out = Batch::with_capacity(self.schema.clone(), self.batch_size);
        while out.len() < self.batch_size {
            match qt.next_complete() {
                Some(t) => out.push_tuple(&t),
                None => break,
            }
        }
        self.stats.emitted += out.len() as u64;
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }

    fn close(&mut self) -> Result<()> {
        // Children's `close` is idempotent, so closing here is safe even
        // when `open`/`next_batch` already closed them — and necessary
        // when a mid-build error left them open.
        let dividend = self.dividend.close();
        let divisor = self.divisor.close();
        // "free divisor table ... free quotient table".
        self.divisor_table = None;
        self.quotient_table = None;
        self.state = OpState::Closed;
        dividend?;
        divisor?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_division::HashDivision;
    use reldiv_exec::batch::collect_batches;
    use reldiv_exec::batch::scan::BatchMemScan;
    use reldiv_exec::op::{collect, BoxedOp, Operator};
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("student-id"), Field::int("course-no")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("course-no")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    const MODES: [HashDivisionMode; 3] = [
        HashDivisionMode::Standard,
        HashDivisionMode::EarlyOut,
        HashDivisionMode::CounterOnly,
    ];

    fn both_paths(
        dividend: &Relation,
        divisor: &Relation,
        mode: HashDivisionMode,
    ) -> (Relation, Relation) {
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let tuple_op: BoxedOp = Box::new(
            HashDivision::new(
                Box::new(MemScan::new(dividend.clone())),
                Box::new(MemScan::new(divisor.clone())),
                spec.clone(),
                mode,
                MemoryPool::unbounded(),
            )
            .unwrap(),
        );
        let batch_op = BatchHashDivision::new(
            Box::new(BatchMemScan::new(dividend.clone())),
            Box::new(BatchMemScan::new(divisor.clone())),
            spec,
            mode,
            MemoryPool::unbounded(),
        )
        .unwrap();
        (
            collect(tuple_op).unwrap(),
            collect_batches(Box::new(batch_op), CancelToken::none()).unwrap(),
        )
    }

    /// A workload with duplicates, noise rows (no divisor match), and
    /// both complete and incomplete candidates.
    fn noisy_inputs() -> (Relation, Relation) {
        let mut rows = Vec::new();
        for sid in 0..50 {
            for cno in 0..(sid % 7) + 1 {
                rows.push([sid, cno]);
            }
            rows.push([sid, 1000 + sid]); // noise: no divisor match
            rows.push([sid, 0]); // duplicate dividend tuple
        }
        (transcript(&rows), courses(&[0, 1, 2, 3]))
    }

    #[test]
    fn all_modes_match_the_tuple_path_byte_for_byte() {
        let (dividend, divisor) = noisy_inputs();
        for mode in MODES {
            if mode == HashDivisionMode::CounterOnly {
                // CounterOnly requires a duplicate-free dividend.
                continue;
            }
            let (tuple, batch) = both_paths(&dividend, &divisor, mode);
            assert_eq!(tuple, batch, "mode {mode:?}");
            assert!(!tuple.is_empty(), "workload must produce a quotient");
        }
    }

    #[test]
    fn counter_only_matches_on_duplicate_free_input() {
        let mut rows = Vec::new();
        for sid in 0..40 {
            for cno in 0..(sid % 5) + 1 {
                rows.push([sid, cno]);
            }
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[0, 1, 2]);
        let (tuple, batch) = both_paths(&dividend, &divisor, HashDivisionMode::CounterOnly);
        assert_eq!(tuple, batch);
    }

    #[test]
    fn empty_divisor_yields_distinct_projection_on_both_paths() {
        let dividend = transcript(&[[1, 10], [1, 11], [2, 10], [1, 10]]);
        let divisor = courses(&[]);
        for mode in [HashDivisionMode::Standard, HashDivisionMode::EarlyOut] {
            let (tuple, batch) = both_paths(&dividend, &divisor, mode);
            assert_eq!(tuple, batch, "mode {mode:?}");
            assert_eq!(batch.cardinality(), 2);
        }
    }

    #[test]
    fn stats_match_the_tuple_path() {
        let (dividend, divisor) = noisy_inputs();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut tuple_op = HashDivision::new(
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            spec.clone(),
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        )
        .unwrap();
        tuple_op.open().unwrap();
        while tuple_op.next().unwrap().is_some() {}
        let tuple_stats = tuple_op.stats();
        tuple_op.close().unwrap();

        let mut batch_op = BatchHashDivision::new(
            Box::new(BatchMemScan::new(dividend)),
            Box::new(BatchMemScan::new(divisor)),
            spec,
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        )
        .unwrap();
        batch_op.open().unwrap();
        while batch_op.next_batch().unwrap().is_some() {}
        let batch_stats = batch_op.stats();
        batch_op.close().unwrap();
        assert_eq!(tuple_stats, batch_stats);
    }

    #[test]
    fn memory_exhaustion_fires_identically() {
        let (dividend, divisor) = noisy_inputs();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        // Find the smallest budget where the tuple path succeeds by
        // bisection is overkill: just compare outcomes over a ramp.
        for budget in [64usize, 256, 1024, 4096, 1 << 20] {
            let tuple_op: BoxedOp = Box::new(
                HashDivision::new(
                    Box::new(MemScan::new(dividend.clone())),
                    Box::new(MemScan::new(divisor.clone())),
                    spec.clone(),
                    HashDivisionMode::Standard,
                    MemoryPool::new(budget),
                )
                .unwrap(),
            );
            let batch_op = BatchHashDivision::new(
                Box::new(BatchMemScan::new(dividend.clone())),
                Box::new(BatchMemScan::new(divisor.clone())),
                spec.clone(),
                HashDivisionMode::Standard,
                MemoryPool::new(budget),
            )
            .unwrap();
            let tuple = collect(tuple_op);
            let batch = collect_batches(Box::new(batch_op), CancelToken::none());
            match (tuple, batch) {
                (Ok(t), Ok(b)) => assert_eq!(t, b, "budget {budget}"),
                (Err(te), Err(be)) => {
                    assert!(te.is_memory_exhausted(), "budget {budget}: {te:?}");
                    assert!(be.is_memory_exhausted(), "budget {budget}: {be:?}");
                }
                (t, b) => panic!("paths diverged at budget {budget}: {t:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_cancels_per_batch() {
        let (dividend, divisor) = noisy_inputs();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let expired =
            CancelToken::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let mut op = BatchHashDivision::new(
            Box::new(BatchMemScan::new(dividend)),
            Box::new(BatchMemScan::new(divisor)),
            spec,
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        )
        .unwrap();
        op.set_cancel(expired);
        let err = collect_batches(Box::new(op), expired).unwrap_err();
        assert!(err.is_cancelled(), "expected Cancelled, got {err:?}");
    }
}
