//! [`DivisionSpec`]: which dividend columns are divisor attributes and
//! which form the quotient.

use reldiv_exec::ExecError;
use reldiv_rel::Schema;

use crate::Result;

/// Describes one division `R ÷ S` over concrete schemas.
///
/// In the paper's first example, `R` is
/// `π(student-id, course-no)(Transcript)` and `S` is
/// `π(course-no)(Courses)`; here `divisor_keys = [1]` (the dividend's
/// `course-no` column, matched positionally against the divisor's columns)
/// and `quotient_keys = [0]` (`student-id`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivisionSpec {
    /// Dividend columns matched against the divisor's columns, in divisor
    /// column order.
    pub divisor_keys: Vec<usize>,
    /// Dividend columns forming the quotient.
    pub quotient_keys: Vec<usize>,
}

impl DivisionSpec {
    /// Creates a spec and validates it against the two schemas:
    /// * key lists must be disjoint and cover the dividend exactly (a
    ///   dividend is a superset of `Q × S` — every column is either a
    ///   quotient or a divisor attribute),
    /// * `divisor_keys` must match the divisor's arity and column types.
    pub fn new(
        dividend: &Schema,
        divisor: &Schema,
        divisor_keys: Vec<usize>,
        quotient_keys: Vec<usize>,
    ) -> Result<Self> {
        let spec = DivisionSpec {
            divisor_keys,
            quotient_keys,
        };
        spec.validate(dividend, divisor)?;
        Ok(spec)
    }

    /// The common case: the dividend is `(quotient columns..., divisor
    /// columns...)` with the divisor columns trailing, as in
    /// `Transcript(student-id, course-no) ÷ Courses(course-no)`.
    pub fn trailing_divisor(dividend: &Schema, divisor: &Schema) -> Result<Self> {
        let d = divisor.arity();
        let n = dividend.arity();
        if d >= n {
            return Err(ExecError::Plan(format!(
                "divisor arity {d} must be smaller than dividend arity {n}"
            )));
        }
        Self::new(
            dividend,
            divisor,
            (n - d..n).collect(),
            (0..n - d).collect(),
        )
    }

    /// Validates the spec against concrete schemas.
    pub fn validate(&self, dividend: &Schema, divisor: &Schema) -> Result<()> {
        let n = dividend.arity();
        if self.divisor_keys.len() != divisor.arity() {
            return Err(ExecError::Plan(format!(
                "divisor_keys has {} columns but divisor arity is {}",
                self.divisor_keys.len(),
                divisor.arity()
            )));
        }
        let mut seen = vec![false; n];
        for &k in self.divisor_keys.iter().chain(&self.quotient_keys) {
            if k >= n {
                return Err(ExecError::Plan(format!(
                    "column {k} out of range for dividend arity {n}"
                )));
            }
            if seen[k] {
                return Err(ExecError::Plan(format!("column {k} listed twice in spec")));
            }
            seen[k] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(ExecError::Plan(
                "divisor and quotient keys must cover every dividend column".into(),
            ));
        }
        if self.quotient_keys.is_empty() {
            return Err(ExecError::Plan(
                "quotient must have at least one column".into(),
            ));
        }
        for (i, &k) in self.divisor_keys.iter().enumerate() {
            let dv = &dividend.fields()[k].ty;
            let sv = &divisor.fields()[i].ty;
            if dv != sv {
                return Err(ExecError::Plan(format!(
                    "divisor column {i} type {sv:?} does not match dividend column {k} type {dv:?}"
                )));
            }
        }
        Ok(())
    }

    /// The quotient schema: the dividend projected onto the quotient keys.
    pub fn quotient_schema(&self, dividend: &Schema) -> Result<Schema> {
        dividend
            .project(&self.quotient_keys)
            .map_err(ExecError::from)
    }

    /// Key list addressing all divisor columns (for hashing/comparing
    /// divisor tuples themselves).
    pub fn divisor_all_columns(&self) -> Vec<usize> {
        (0..self.divisor_keys.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;

    fn transcript() -> Schema {
        Schema::new(vec![Field::int("student-id"), Field::int("course-no")])
    }

    fn courses() -> Schema {
        Schema::new(vec![Field::int("course-no")])
    }

    #[test]
    fn trailing_divisor_matches_running_example() {
        let spec = DivisionSpec::trailing_divisor(&transcript(), &courses()).unwrap();
        assert_eq!(spec.divisor_keys, vec![1]);
        assert_eq!(spec.quotient_keys, vec![0]);
        let q = spec.quotient_schema(&transcript()).unwrap();
        assert_eq!(q.fields()[0].name, "student-id");
    }

    #[test]
    fn interleaved_columns_are_allowed() {
        // Dividend (d1, q, d2) ÷ divisor (d1, d2).
        let dividend = Schema::new(vec![Field::int("d1"), Field::int("q"), Field::int("d2")]);
        let divisor = Schema::new(vec![Field::int("d1"), Field::int("d2")]);
        let spec = DivisionSpec::new(&dividend, &divisor, vec![0, 2], vec![1]).unwrap();
        assert_eq!(
            spec.quotient_schema(&dividend).unwrap().fields()[0].name,
            "q"
        );
    }

    #[test]
    fn overlapping_keys_are_rejected() {
        let e = DivisionSpec::new(&transcript(), &courses(), vec![1], vec![0, 1]);
        assert!(matches!(e, Err(ExecError::Plan(_))));
    }

    #[test]
    fn uncovered_columns_are_rejected() {
        let dividend = Schema::new(vec![Field::int("q"), Field::int("d"), Field::int("extra")]);
        let e = DivisionSpec::new(&dividend, &courses(), vec![1], vec![0]);
        assert!(matches!(e, Err(ExecError::Plan(_))));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let dividend = Schema::new(vec![Field::int("q"), Field::str("d", 8)]);
        let e = DivisionSpec::new(&dividend, &courses(), vec![1], vec![0]);
        assert!(matches!(e, Err(ExecError::Plan(_))));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let divisor2 = Schema::new(vec![Field::int("a"), Field::int("b")]);
        let e = DivisionSpec::new(&transcript(), &divisor2, vec![1], vec![0]);
        assert!(matches!(e, Err(ExecError::Plan(_))));
    }

    #[test]
    fn empty_quotient_is_rejected() {
        let dividend = Schema::new(vec![Field::int("d")]);
        let divisor = Schema::new(vec![Field::int("d")]);
        let e = DivisionSpec::new(&dividend, &divisor, vec![0], vec![]);
        assert!(matches!(e, Err(ExecError::Plan(_))));
    }

    #[test]
    fn divisor_larger_than_dividend_rejected_by_trailing() {
        let dividend = Schema::new(vec![Field::int("a")]);
        let divisor = Schema::new(vec![Field::int("a"), Field::int("b")]);
        assert!(DivisionSpec::trailing_divisor(&dividend, &divisor).is_err());
    }
}
