//! Naive division over sorted inputs (Section 2.1; essentially Smith 1975).
//!
//! "First, the dividend is sorted using the quotient attributes as major
//! and the divisor attributes as minor sort keys. Second, the divisor is
//! sorted on all its attributes. Third, the two sorted relations are
//! scanned in a fashion similar to nested loops join ... when an equality
//! match has been found, both relation scans can be advanced."
//!
//! Following the paper's implementation, the operator "first consumes the
//! entire divisor relation, building a linked list of divisor tuples fixed
//! in the buffer pool. It then consumes the dividend relation, advancing in
//! the linked list of divisor tuples as matching dividend tuples are
//! produced by the dividend input, and producing a quotient tuple each time
//! the end of the divisor list is reached."
//!
//! [`NaiveDivision`] takes inputs that are *already sorted* (and
//! duplicate-free); [`naive_division_plan`] wraps raw inputs in the
//! required distinct sorts, which is where the naive algorithm's dominant
//! cost lives.

use std::cmp::Ordering;

use reldiv_exec::op::{BoxedOp, OpState, Operator};
use reldiv_exec::profile::{maybe_profile, ProfileSink, SpanKind};
use reldiv_exec::sort::{Sort, SortConfig, SortMode};
use reldiv_rel::{Schema, Tuple};
use reldiv_storage::StorageRef;

use crate::spec::DivisionSpec;
use crate::Result;

/// The merge-scan division step over sorted, duplicate-free inputs.
pub struct NaiveDivision {
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: DivisionSpec,
    schema: Schema,
    state: OpState,
    /// The divisor, materialized in sorted order ("a linked list of divisor
    /// tuples fixed in the buffer pool").
    divisor_list: Vec<Tuple>,
    /// Quotient-attribute values of the group being scanned.
    current_group: Option<Tuple>,
    /// Position in the divisor list for the current group.
    divisor_pos: usize,
    /// Whether the current group can still qualify (or already emitted).
    group_alive: bool,
    #[cfg(debug_assertions)]
    last_dividend: Option<Tuple>,
}

impl NaiveDivision {
    /// Creates the division step. `dividend` must be sorted on
    /// `spec.quotient_keys` (major) then `spec.divisor_keys` (minor);
    /// `divisor` must be sorted on all its columns; both duplicate-free.
    pub fn new(dividend: BoxedOp, divisor: BoxedOp, spec: DivisionSpec) -> Result<Self> {
        spec.validate(dividend.schema(), divisor.schema())?;
        let schema = spec.quotient_schema(dividend.schema())?;
        Ok(NaiveDivision {
            dividend,
            divisor,
            spec,
            schema,
            state: OpState::Created,
            divisor_list: Vec::new(),
            current_group: None,
            divisor_pos: 0,
            group_alive: false,
            #[cfg(debug_assertions)]
            last_dividend: None,
        })
    }
}

impl Operator for NaiveDivision {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.divisor.open()?;
        self.divisor_list.clear();
        while let Some(t) = self.divisor.next()? {
            #[cfg(debug_assertions)]
            if let Some(prev) = self.divisor_list.last() {
                let all = self.spec.divisor_all_columns();
                debug_assert_eq!(
                    prev.cmp_keys(&t, &all),
                    Ordering::Less,
                    "divisor input must be sorted and duplicate-free"
                );
            }
            self.divisor_list.push(t);
        }
        self.divisor.close()?;
        self.dividend.open()?;
        self.current_group = None;
        self.divisor_pos = 0;
        self.group_alive = false;
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        let all = self.spec.divisor_all_columns();
        loop {
            let Some(t) = self.dividend.next()? else {
                return Ok(None);
            };
            #[cfg(debug_assertions)]
            {
                let mut keys = self.spec.quotient_keys.clone();
                keys.extend_from_slice(&self.spec.divisor_keys);
                if let Some(prev) = &self.last_dividend {
                    debug_assert_eq!(
                        prev.cmp_keys(&t, &keys),
                        Ordering::Less,
                        "dividend input must be sorted and duplicate-free"
                    );
                }
                self.last_dividend = Some(t.clone());
            }

            // Group boundary?
            let same_group = self.current_group.as_ref().is_some_and(|g| {
                let qcols: Vec<usize> = (0..self.spec.quotient_keys.len()).collect();
                t.eq_on(&self.spec.quotient_keys, g, &qcols)
            });
            if !same_group {
                self.current_group = Some(t.project(&self.spec.quotient_keys));
                self.divisor_pos = 0;
                self.group_alive = true;
                // An empty divisor qualifies every group immediately.
                if self.divisor_list.is_empty() {
                    self.group_alive = false;
                    return Ok(Some(self.current_group.clone().expect("just set")));
                }
            }
            if !self.group_alive {
                continue; // group already emitted or already failed
            }

            // Advance the divisor scan against this dividend tuple.
            match t.cmp_on(
                &self.spec.divisor_keys,
                &self.divisor_list[self.divisor_pos],
                &all,
            ) {
                Ordering::Less => {
                    // Dividend value not in the divisor (e.g. a physics
                    // course): skip the tuple, the group is still viable.
                }
                Ordering::Equal => {
                    self.divisor_pos += 1;
                    if self.divisor_pos == self.divisor_list.len() {
                        // "producing a quotient tuple each time the end of
                        // the divisor list is reached."
                        self.group_alive = false;
                        return Ok(Some(self.current_group.clone().expect("in a group")));
                    }
                }
                Ordering::Greater => {
                    // The expected divisor tuple is missing from the group.
                    self.group_alive = false;
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.dividend.close()?;
        self.divisor_list.clear();
        self.state = OpState::Closed;
        Ok(())
    }
}

/// The full naive-division plan: distinct sorts of both inputs (where the
/// algorithm's dominant cost lies) feeding the merge-scan step.
///
/// `assume_unique` skips nothing here — the sorts are required for order
/// regardless, and eliminating duplicates during a sort is free ("in the
/// naive division algorithm ... duplicates can be conveniently eliminated
/// during the initial sort phase").
pub fn naive_division_plan(
    storage: StorageRef,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: DivisionSpec,
    sort_config: SortConfig,
) -> Result<BoxedOp> {
    naive_division_plan_profiled(storage, dividend, divisor, spec, sort_config, None)
}

/// [`naive_division_plan`] with optional per-operator profiling: when
/// `profile` is set, both sorts and the merge-scan step each get a span.
pub fn naive_division_plan_profiled(
    storage: StorageRef,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: DivisionSpec,
    sort_config: SortConfig,
    profile: Option<&ProfileSink>,
) -> Result<BoxedOp> {
    let mut dividend_keys = spec.quotient_keys.clone();
    dividend_keys.extend_from_slice(&spec.divisor_keys);
    let sorted_dividend: BoxedOp = Box::new(Sort::new(
        storage.clone(),
        dividend,
        dividend_keys,
        SortMode::Distinct,
        sort_config,
    )?);
    let sorted_dividend = maybe_profile(
        sorted_dividend,
        profile,
        "sort dividend (distinct, quotient+divisor keys)",
        SpanKind::Sort,
        Some(&storage),
    );
    let divisor_keys = spec.divisor_all_columns();
    let sorted_divisor: BoxedOp = Box::new(Sort::new(
        storage.clone(),
        divisor,
        divisor_keys,
        SortMode::Distinct,
        sort_config,
    )?);
    let sorted_divisor = maybe_profile(
        sorted_divisor,
        profile,
        "sort divisor (distinct, all columns)",
        SpanKind::Sort,
        Some(&storage),
    );
    let division: BoxedOp = Box::new(NaiveDivision::new(sorted_dividend, sorted_divisor, spec)?);
    Ok(maybe_profile(
        division,
        profile,
        "naive merge-scan division",
        SpanKind::NaiveDivision,
        Some(&storage),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_exec::op::collect;
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn divide(dividend: Relation, divisor: Relation) -> Vec<i64> {
        let storage = StorageManager::shared(StorageConfig::paper());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let plan = naive_division_plan(
            storage,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
            SortConfig::default(),
        )
        .unwrap();
        let mut out: Vec<i64> = collect(plan)
            .unwrap()
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn exact_product_divides_cleanly() {
        let mut rows = Vec::new();
        for q in 0..5 {
            for s in [10, 20, 30] {
                rows.push([q, s]);
            }
        }
        assert_eq!(
            divide(transcript(&rows), courses(&[10, 20, 30])),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn partial_groups_fail() {
        let rows = [[1, 10], [1, 20], [2, 10], [3, 20]];
        assert_eq!(divide(transcript(&rows), courses(&[10, 20])), vec![1]);
    }

    #[test]
    fn non_divisor_values_are_skipped_not_fatal() {
        // Student 1 took physics (99) between the two database courses;
        // the scan must skip it without failing the group.
        let rows = [[1, 10], [1, 15], [1, 20], [2, 10], [2, 20]];
        assert_eq!(divide(transcript(&rows), courses(&[10, 20])), vec![1, 2]);
    }

    #[test]
    fn duplicates_are_eliminated_by_the_sorts() {
        // Duplicates in both inputs; the distinct sorts clean them up.
        let rows = [[1, 10], [1, 10], [1, 20], [2, 10], [2, 10]];
        assert_eq!(
            divide(transcript(&rows), courses(&[10, 20, 20, 10])),
            vec![1]
        );
    }

    #[test]
    fn empty_divisor_yields_distinct_projection() {
        let rows = [[3, 10], [1, 20], [3, 30]];
        assert_eq!(divide(transcript(&rows), courses(&[])), vec![1, 3]);
    }

    #[test]
    fn empty_dividend_yields_empty() {
        assert_eq!(divide(transcript(&[]), courses(&[10])), Vec::<i64>::new());
    }

    #[test]
    fn group_exceeding_divisor_still_qualifies() {
        // Student 1 took MORE courses than the divisor requires.
        let rows = [[1, 5], [1, 10], [1, 20], [1, 25]];
        assert_eq!(divide(transcript(&rows), courses(&[10, 20])), vec![1]);
    }

    #[test]
    fn group_whose_last_divisor_value_is_missing_fails() {
        // Group has 10 but then jumps past 20 to 30.
        let rows = [[1, 10], [1, 30]];
        assert_eq!(
            divide(transcript(&rows), courses(&[10, 20])),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn sorted_input_invariant_is_debug_checked() {
        // Feeding unsorted inputs directly into NaiveDivision (without the
        // plan's sorts) trips the debug assertion.
        let dividend = transcript(&[[2, 10], [1, 10]]);
        let divisor = courses(&[10]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut op = NaiveDivision::new(
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
        )
        .unwrap();
        op.open().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while op.next().unwrap().is_some() {}
        }));
        assert!(
            result.is_err(),
            "unsorted dividend must be rejected in debug builds"
        );
    }
}
