//! Hash-table overflow handling (Section 3.4).
//!
//! "If the available memory is not sufficient for divisor table and
//! quotient table, the input data must be partitioned into disjoint
//! subsets called clusters that can be processed in multiple phases."
//!
//! * [`quotient_partitioned`] — the dividend is partitioned on the
//!   quotient attributes; each phase divides one dividend cluster by the
//!   *entire* divisor (the divisor table stays resident across phases);
//!   the quotient is the concatenation of the per-phase quotients. The
//!   first cluster is processed in memory while the others are spooled,
//!   in the style of hybrid hash-join.
//! * [`divisor_partitioned`] — both inputs are partitioned on the divisor
//!   attributes with the same function; each phase is a complete
//!   hash-division producing a quotient cluster tagged with its phase
//!   number; a final **collection phase** divides the union of the
//!   clusters by the set of phase numbers — "this problem is exactly the
//!   division problem again", and the phase number replaces the divisor
//!   number, so the collection phase skips step 1.
//!
//! Both strategies process clusters through temporary record files, whose
//! pages often never leave the buffer pool.

use reldiv_exec::cancel::CancelToken;
use reldiv_exec::op::BoxedOp;
use reldiv_rel::{RecordCodec, Relation, Schema, Tuple, Value};
use reldiv_storage::file::ScanCursor;
use reldiv_storage::{FileId, MemoryPool, StorageManager, StorageRef};

use crate::hash_division::{DivisorTable, HashDivisionMode, QuotientTable};
use crate::hybrid::{adaptive_hybrid_report, DEFAULT_FANOUT};
use crate::report::DegradationReport;
use crate::spec::DivisionSpec;
use crate::{ExecError, Result};

/// Spools tuples into per-cluster temporary files, counting spilled bytes.
struct ClusterWriter {
    codec: RecordCodec,
    files: Vec<FileId>,
    buf: Vec<u8>,
    spilled: u64,
}

impl ClusterWriter {
    fn new(storage: &StorageRef, schema: Schema, clusters: usize) -> Self {
        let mut sm = storage.borrow_mut();
        let files = (0..clusters)
            .map(|_| sm.create_file(StorageManager::DATA_DISK))
            .collect();
        ClusterWriter {
            codec: RecordCodec::new(schema),
            files,
            buf: Vec::new(),
            spilled: 0,
        }
    }

    fn write(&mut self, storage: &StorageRef, cluster: usize, t: &Tuple) -> Result<()> {
        self.buf.clear();
        self.codec.encode_into(t, &mut self.buf)?;
        self.spilled += self.buf.len() as u64;
        storage
            .borrow_mut()
            .append(self.files[cluster], &self.buf)?;
        Ok(())
    }

    fn delete_all(&self, storage: &StorageRef) -> Result<()> {
        let mut sm = storage.borrow_mut();
        for &f in &self.files {
            sm.delete_file(f)?;
        }
        Ok(())
    }
}

/// Reads one cluster file back, tuple at a time. Shared with the
/// adaptive-hybrid module, which streams its state/delta spill files the
/// same way.
pub(crate) fn for_each_record(
    storage: &StorageRef,
    file: FileId,
    codec: &RecordCodec,
    mut f: impl FnMut(Tuple) -> Result<()>,
) -> Result<()> {
    let mut cursor = ScanCursor::new(file);
    loop {
        let next = {
            let mut sm = storage.borrow_mut();
            cursor.next(&mut sm)?
        };
        match next {
            Some((_, record)) => f(codec.decode(&record)?)?,
            None => return Ok(()),
        }
    }
}

/// Hash-division with quotient partitioning.
///
/// `partitions` must be at least 2 (one resident cluster + spooled ones);
/// the divisor table must fit in memory — quotient partitioning only
/// relieves quotient-table pressure ("the divisor table must be kept in
/// main memory during all phases").
pub fn quotient_partitioned(
    storage: &StorageRef,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    partitions: usize,
) -> Result<Relation> {
    let mut report = DegradationReport::new();
    let pool = storage.borrow().memory();
    quotient_partitioned_report(
        storage,
        &pool,
        dividend,
        divisor,
        spec,
        mode,
        partitions,
        CancelToken::none(),
        &mut report,
    )
}

/// [`quotient_partitioned`] with an explicit memory pool (per-query
/// budgets use a child pool), cooperative cancellation, and spill
/// accounting into `report`.
#[allow(clippy::too_many_arguments)] // mirrors quotient_partitioned + context
pub fn quotient_partitioned_report(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    partitions: usize,
    cancel: CancelToken,
    report: &mut DegradationReport,
) -> Result<Relation> {
    quotient_partitioned_impl(
        storage, pool, dividend, divisor, spec, mode, partitions, cancel, report, false,
    )
}

/// The shared implementation. `respool` routes the cluster-file bytes to
/// `report.respool_bytes` instead of `spill_bytes` — combined partitioning
/// uses it for its inner per-phase divisions, whose inputs are cluster
/// files that were already counted when first spooled (double-counting
/// them as fresh spills was a long-standing accounting bug).
#[allow(clippy::too_many_arguments)]
pub(crate) fn quotient_partitioned_impl(
    storage: &StorageRef,
    pool: &MemoryPool,
    mut dividend: BoxedOp,
    mut divisor: BoxedOp,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    partitions: usize,
    cancel: CancelToken,
    report: &mut DegradationReport,
    respool: bool,
) -> Result<Relation> {
    if partitions < 2 {
        return Err(ExecError::Plan(
            "quotient partitioning needs >= 2 clusters".into(),
        ));
    }
    spec.validate(dividend.schema(), divisor.schema())?;
    let quotient_schema = spec.quotient_schema(dividend.schema())?;

    // Step 1 once: the divisor table is resident for every phase. Built
    // before any temporary file exists, so its exhaustion leaks nothing.
    let dt = DivisorTable::build(&mut divisor, pool)?;

    let mut writer = ClusterWriter::new(storage, dividend.schema().clone(), partitions - 1);
    let outcome = quotient_partitioned_phases(
        storage,
        pool,
        &mut dividend,
        &dt,
        spec,
        mode,
        partitions,
        cancel,
        &mut writer,
        &quotient_schema,
    );
    // Spooled bytes are accounted and the temporary cluster files deleted
    // whether the rung succeeded or was abandoned mid-phase: an abandoned
    // rung used to leak both the files and the byte count.
    if respool {
        report.respool_bytes += writer.spilled;
    } else {
        report.spill_bytes += writer.spilled;
    }
    let cleanup = writer.delete_all(storage);
    let result = outcome?;
    cleanup?;
    Ok(result)
}

/// Streaming + per-cluster phases of quotient partitioning, separated so
/// the caller can account and clean up on every exit path.
#[allow(clippy::too_many_arguments)]
fn quotient_partitioned_phases(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: &mut BoxedOp,
    dt: &DivisorTable,
    spec: &DivisionSpec,
    mode: HashDivisionMode,
    partitions: usize,
    cancel: CancelToken,
    writer: &mut ClusterWriter,
    quotient_schema: &Schema,
) -> Result<Relation> {
    let lookup = |t: &Tuple| -> Option<Option<u32>> {
        if dt.count() == 0 {
            Some(None) // empty divisor: vacuously matched
        } else {
            dt.lookup(t, &spec.divisor_keys).map(Some)
        }
    };

    let mut result = Relation::empty(quotient_schema.clone());
    let emit = |qt: &mut QuotientTable, result: &mut Relation| -> Result<()> {
        while let Some(t) = qt.next_complete() {
            result.push(t).map_err(ExecError::from)?;
        }
        Ok(())
    };

    // Cluster 0 is processed while the dividend streams (hybrid style);
    // clusters 1..k are spooled on the quotient-attribute hash.
    let mut resident = QuotientTable::new(
        pool,
        mode,
        dt.count(),
        spec.quotient_keys.clone(),
        quotient_schema.record_width(),
    )?;
    let mut budget = 0u32;
    dividend.open()?;
    while let Some(t) = dividend.next()? {
        cancel.checkpoint(&mut budget)?;
        let cluster = (t.hash_on(&spec.quotient_keys) as usize) % partitions;
        if cluster == 0 {
            if let Some(dno) = lookup(&t) {
                if let Some(q) = resident.absorb(&t, dno)? {
                    result.push(q).map_err(ExecError::from)?;
                }
            }
        } else {
            writer.write(storage, cluster - 1, &t)?;
        }
    }
    dividend.close()?;
    emit(&mut resident, &mut result)?;
    drop(resident);

    // Remaining phases: one spooled cluster at a time against the
    // resident divisor table.
    let codec = writer.codec.clone();
    for i in 0..partitions - 1 {
        let mut qt = QuotientTable::new(
            pool,
            mode,
            dt.count(),
            spec.quotient_keys.clone(),
            quotient_schema.record_width(),
        )?;
        let mut early: Vec<Tuple> = Vec::new();
        for_each_record(storage, writer.files[i], &codec, |t| {
            cancel.checkpoint(&mut budget)?;
            if let Some(dno) = lookup(&t) {
                if let Some(q) = qt.absorb(&t, dno)? {
                    early.push(q);
                }
            }
            Ok(())
        })?;
        for q in early {
            result.push(q).map_err(ExecError::from)?;
        }
        emit(&mut qt, &mut result)?;
    }
    Ok(result)
}

/// Hash-division with divisor partitioning and a collection phase.
pub fn divisor_partitioned(
    storage: &StorageRef,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: &DivisionSpec,
    partitions: usize,
) -> Result<Relation> {
    let mut report = DegradationReport::new();
    let pool = storage.borrow().memory();
    divisor_partitioned_report(
        storage,
        &pool,
        dividend,
        divisor,
        spec,
        partitions,
        CancelToken::none(),
        &mut report,
    )
}

/// [`divisor_partitioned`] with an explicit memory pool, cooperative
/// cancellation, and spill accounting into `report`.
#[allow(clippy::too_many_arguments)] // mirrors divisor_partitioned + context
pub fn divisor_partitioned_report(
    storage: &StorageRef,
    pool: &MemoryPool,
    mut dividend: BoxedOp,
    mut divisor: BoxedOp,
    spec: &DivisionSpec,
    partitions: usize,
    cancel: CancelToken,
    report: &mut DegradationReport,
) -> Result<Relation> {
    if partitions < 1 {
        return Err(ExecError::Plan(
            "divisor partitioning needs >= 1 cluster".into(),
        ));
    }
    spec.validate(dividend.schema(), divisor.schema())?;
    let quotient_schema = spec.quotient_schema(dividend.schema())?;

    let mut divisor_writer = ClusterWriter::new(storage, divisor.schema().clone(), partitions);
    let mut dividend_writer = ClusterWriter::new(storage, dividend.schema().clone(), partitions);
    let collection_file = storage.borrow_mut().create_file(StorageManager::DATA_DISK);
    let mut collection_spilled = 0u64;
    let outcome = divisor_partitioned_phases(
        storage,
        pool,
        &mut dividend,
        &mut divisor,
        spec,
        partitions,
        cancel,
        &quotient_schema,
        &mut divisor_writer,
        &mut dividend_writer,
        collection_file,
        &mut collection_spilled,
        report,
    );
    // Spooled bytes (cluster files + the collection file) are accounted
    // and the temporaries deleted on every exit path — a phase abandoned
    // by memory exhaustion used to leak all three files and report none
    // of the bytes it had already written.
    report.spill_bytes += divisor_writer.spilled + dividend_writer.spilled + collection_spilled;
    let cleanup_divisor = divisor_writer.delete_all(storage);
    let cleanup_dividend = dividend_writer.delete_all(storage);
    let cleanup_collection = storage.borrow_mut().delete_file(collection_file);
    let result = outcome?;
    cleanup_divisor?;
    cleanup_dividend?;
    cleanup_collection?;
    Ok(result)
}

/// The phases of divisor partitioning, separated so the caller can
/// account and clean up on every exit path.
#[allow(clippy::too_many_arguments)]
fn divisor_partitioned_phases(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: &mut BoxedOp,
    divisor: &mut BoxedOp,
    spec: &DivisionSpec,
    partitions: usize,
    cancel: CancelToken,
    quotient_schema: &Schema,
    divisor_writer: &mut ClusterWriter,
    dividend_writer: &mut ClusterWriter,
    collection_file: FileId,
    collection_spilled: &mut u64,
    report: &mut DegradationReport,
) -> Result<Relation> {
    // Partition the divisor and the dividend with the same function
    // applied to the divisor attributes.
    let divisor_all = spec.divisor_all_columns();
    let mut divisor_cluster_sizes = vec![0u64; partitions];
    let mut budget = 0u32;
    divisor.open()?;
    while let Some(t) = divisor.next()? {
        cancel.checkpoint(&mut budget)?;
        let cluster = (t.hash_on(&divisor_all) as usize) % partitions;
        divisor_cluster_sizes[cluster] += 1;
        divisor_writer.write(storage, cluster, &t)?;
    }
    divisor.close()?;

    dividend.open()?;
    while let Some(t) = dividend.next()? {
        cancel.checkpoint(&mut budget)?;
        let cluster = (t.hash_on(&spec.divisor_keys) as usize) % partitions;
        dividend_writer.write(storage, cluster, &t)?;
    }
    dividend.close()?;

    // The quotient clusters, tagged with dense phase numbers, spooled to a
    // collection file with schema (quotient..., phase).
    let mut collection_schema_fields = quotient_schema.fields().to_vec();
    collection_schema_fields.push(reldiv_rel::schema::Field::int("phase"));
    let collection_schema = Schema::new(collection_schema_fields);
    let collection_codec = RecordCodec::new(collection_schema.clone());

    let empty_divisor = divisor_cluster_sizes.iter().all(|&n| n == 0);
    let mut phase_count: u32 = 0;
    let divisor_codec = divisor_writer.codec.clone();
    let dividend_codec = dividend_writer.codec.clone();
    let mut spool_q = |q: Tuple, phase: u32| -> Result<()> {
        let mut vals = q.into_values();
        vals.push(reldiv_rel::Value::Int(phase as i64));
        let record = collection_codec.encode(&Tuple::new(vals))?;
        *collection_spilled += record.len() as u64;
        storage.borrow_mut().append(collection_file, &record)?;
        Ok(())
    };

    #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
    for i in 0..partitions {
        if divisor_cluster_sizes[i] == 0 && !empty_divisor {
            // A phase with no divisor tuples imposes no constraint; its
            // dividend tuples can match nothing and are dropped.
            continue;
        }
        // Phase i: a complete hash-division of cluster i.
        let dt = if divisor_cluster_sizes[i] == 0 {
            None // empty-divisor special case: distinct projection
        } else {
            let mut scan: BoxedOp = Box::new(reldiv_exec::scan::FileScan::new(
                storage.clone(),
                divisor_writer.files[i],
                divisor_codec.schema().clone(),
            ));
            Some(DivisorTable::build(&mut scan, pool)?)
        };
        let divisor_count = dt.as_ref().map_or(0, DivisorTable::count);
        let mut qt = QuotientTable::new(
            pool,
            HashDivisionMode::Standard,
            divisor_count,
            spec.quotient_keys.clone(),
            quotient_schema.record_width(),
        )?;
        for_each_record(storage, dividend_writer.files[i], &dividend_codec, |t| {
            cancel.checkpoint(&mut budget)?;
            let dno = match &dt {
                None => Some(None),
                Some(dt) => dt.lookup(&t, &spec.divisor_keys).map(Some),
            };
            if let Some(dno) = dno {
                qt.absorb(&t, dno)?;
            }
            Ok(())
        })?;
        // Tag this phase's quotient cluster. Under the empty-divisor
        // special case all phases share tag 0 so the collection phase
        // deduplicates across clusters.
        let tag = if empty_divisor { 0 } else { phase_count };
        while let Some(q) = qt.next_complete() {
            spool_q(q, tag)?;
        }
        if !empty_divisor {
            phase_count += 1;
        }
    }
    if empty_divisor {
        phase_count = 1;
    }

    // Collection phase: divide the union of the quotient clusters by the
    // set of phase numbers, using the phase number as the divisor value
    // (skipping step 1 of hash-division).
    collection_division(
        storage,
        pool,
        collection_file,
        &collection_schema,
        phase_count,
        cancel,
        report,
    )
}

/// The collection phase shared by divisor and combined partitioning —
/// "this problem is exactly the division problem again": divide the
/// tagged quotient clusters by the set of phase numbers.
///
/// It runs through the memory-adaptive hybrid, so a quotient-candidate
/// set larger than memory spills incrementally instead of aborting the
/// whole rung (divisor partitioning bounds the per-phase *divisor*
/// table, never the candidate count). Its writes re-cluster records
/// already counted when the collection file was spooled, so they fold
/// into the caller's report as re-spools, never fresh spills.
fn collection_division(
    storage: &StorageRef,
    pool: &MemoryPool,
    collection_file: FileId,
    collection_schema: &Schema,
    phase_count: u32,
    cancel: CancelToken,
    report: &mut DegradationReport,
) -> Result<Relation> {
    let phases = Relation::from_tuples(
        Schema::new(vec![reldiv_rel::schema::Field::int("phase")]),
        (0..i64::from(phase_count))
            .map(|p| Tuple::new(vec![Value::Int(p)]))
            .collect(),
    )
    .map_err(ExecError::from)?;
    let spec = DivisionSpec::trailing_divisor(collection_schema, phases.schema())?;
    let dividend: BoxedOp = Box::new(reldiv_exec::scan::FileScan::new(
        storage.clone(),
        collection_file,
        collection_schema.clone(),
    ));
    let divisor: BoxedOp = Box::new(reldiv_exec::scan::MemScan::new(phases));
    let mut local = DegradationReport::new();
    let result = adaptive_hybrid_report(
        storage,
        pool,
        dividend,
        divisor,
        &spec,
        HashDivisionMode::Standard,
        DEFAULT_FANOUT,
        cancel,
        None,
        &mut local,
    )?;
    if local.degraded {
        report.respool_bytes += local.spill_bytes + local.respool_bytes;
        report.partitions_spilled += local.partitions_spilled;
        report.partitions_revived += local.partitions_revived;
        report.recursion_depth = report.recursion_depth.max(local.recursion_depth);
        report.note_phase("collection: adaptive");
    }
    Ok(result)
}

/// Combined partitioning: divisor partitioning whose per-phase divisions
/// are themselves quotient-partitioned.
///
/// Section 3.4's fourth question — "what happens if neither one of these
/// partitioning strategies work because both divisor and quotient are too
/// large? In this case it will be necessary to resort to combinations of
/// the techniques" — and Section 6's closing remark about the optimal mix.
/// Each divisor-attribute phase must only hold `1/divisor_partitions` of
/// the divisor table and `1/quotient_partitions` of that phase's quotient
/// table at a time. (The final collection phase still gathers all
/// quotient candidates; decentralizing *it* is the parallel engine's
/// job.)
pub fn combined_partitioned(
    storage: &StorageRef,
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: &DivisionSpec,
    divisor_partitions: usize,
    quotient_partitions: usize,
) -> Result<Relation> {
    let mut report = DegradationReport::new();
    let pool = storage.borrow().memory();
    combined_partitioned_report(
        storage,
        &pool,
        dividend,
        divisor,
        spec,
        divisor_partitions,
        quotient_partitions,
        CancelToken::none(),
        &mut report,
    )
}

/// [`combined_partitioned`] with an explicit memory pool, cooperative
/// cancellation, and spill accounting into `report`.
///
/// Accounting: the divisor/dividend cluster files and the collection
/// records are first-time spills (`spill_bytes`); the inner per-phase
/// quotient partitionings re-cluster data that is *already* in cluster
/// files, so their bytes land in `respool_bytes`.
#[allow(clippy::too_many_arguments)] // mirrors combined_partitioned + context
pub fn combined_partitioned_report(
    storage: &StorageRef,
    pool: &MemoryPool,
    mut dividend: BoxedOp,
    mut divisor: BoxedOp,
    spec: &DivisionSpec,
    divisor_partitions: usize,
    quotient_partitions: usize,
    cancel: CancelToken,
    report: &mut DegradationReport,
) -> Result<Relation> {
    if divisor_partitions < 1 || quotient_partitions < 2 {
        return Err(ExecError::Plan(
            "combined partitioning needs >= 1 divisor and >= 2 quotient clusters".into(),
        ));
    }
    spec.validate(dividend.schema(), divisor.schema())?;
    let quotient_schema = spec.quotient_schema(dividend.schema())?;
    let k = divisor_partitions;

    let mut divisor_writer = ClusterWriter::new(storage, divisor.schema().clone(), k);
    let mut dividend_writer = ClusterWriter::new(storage, dividend.schema().clone(), k);
    let collection_file = storage.borrow_mut().create_file(StorageManager::DATA_DISK);
    let mut collection_spilled = 0u64;
    let outcome = combined_partitioned_phases(
        storage,
        pool,
        &mut dividend,
        &mut divisor,
        spec,
        k,
        quotient_partitions,
        cancel,
        &quotient_schema,
        &mut divisor_writer,
        &mut dividend_writer,
        collection_file,
        &mut collection_spilled,
        report,
    );
    report.spill_bytes += divisor_writer.spilled + dividend_writer.spilled + collection_spilled;
    let cleanup_divisor = divisor_writer.delete_all(storage);
    let cleanup_dividend = dividend_writer.delete_all(storage);
    let cleanup_collection = storage.borrow_mut().delete_file(collection_file);
    let result = outcome?;
    cleanup_divisor?;
    cleanup_dividend?;
    cleanup_collection?;
    Ok(result)
}

/// The phases of combined partitioning, separated so the caller can
/// account and clean up on every exit path.
#[allow(clippy::too_many_arguments)]
fn combined_partitioned_phases(
    storage: &StorageRef,
    pool: &MemoryPool,
    dividend: &mut BoxedOp,
    divisor: &mut BoxedOp,
    spec: &DivisionSpec,
    k: usize,
    quotient_partitions: usize,
    cancel: CancelToken,
    quotient_schema: &Schema,
    divisor_writer: &mut ClusterWriter,
    dividend_writer: &mut ClusterWriter,
    collection_file: FileId,
    collection_spilled: &mut u64,
    report: &mut DegradationReport,
) -> Result<Relation> {
    // Partition both inputs on the divisor attributes (as in
    // `divisor_partitioned`).
    let divisor_all = spec.divisor_all_columns();
    let mut divisor_cluster_sizes = vec![0u64; k];
    let mut budget = 0u32;
    divisor.open()?;
    while let Some(t) = divisor.next()? {
        cancel.checkpoint(&mut budget)?;
        let cluster = (t.hash_on(&divisor_all) as usize) % k;
        divisor_cluster_sizes[cluster] += 1;
        divisor_writer.write(storage, cluster, &t)?;
    }
    divisor.close()?;
    dividend.open()?;
    while let Some(t) = dividend.next()? {
        cancel.checkpoint(&mut budget)?;
        let cluster = (t.hash_on(&spec.divisor_keys) as usize) % k;
        dividend_writer.write(storage, cluster, &t)?;
    }
    dividend.close()?;

    let empty_divisor = divisor_cluster_sizes.iter().all(|&n| n == 0);
    let mut collection_schema_fields = quotient_schema.fields().to_vec();
    collection_schema_fields.push(reldiv_rel::schema::Field::int("phase"));
    let collection_schema = Schema::new(collection_schema_fields);
    let collection_codec = RecordCodec::new(collection_schema.clone());
    let mut phase_count: u32 = 0;

    #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
    for i in 0..k {
        if divisor_cluster_sizes[i] == 0 && !empty_divisor {
            continue;
        }
        // Each phase is itself a quotient-partitioned hash-division of
        // cluster i's dividend by cluster i's divisor. The phase re-reads
        // and re-clusters data already spooled above, so its bytes are
        // respool, not fresh spill.
        let dividend_scan: BoxedOp = Box::new(reldiv_exec::scan::FileScan::new(
            storage.clone(),
            dividend_writer.files[i],
            dividend_writer.codec.schema().clone(),
        ));
        let divisor_scan: BoxedOp = Box::new(reldiv_exec::scan::FileScan::new(
            storage.clone(),
            divisor_writer.files[i],
            divisor_writer.codec.schema().clone(),
        ));
        let phase_quotient = quotient_partitioned_impl(
            storage,
            pool,
            dividend_scan,
            divisor_scan,
            spec,
            HashDivisionMode::Standard,
            quotient_partitions,
            cancel,
            report,
            true,
        )?;
        let tag = if empty_divisor { 0 } else { phase_count };
        for q in phase_quotient.into_tuples() {
            let mut vals = q.into_values();
            vals.push(reldiv_rel::Value::Int(tag as i64));
            let record = collection_codec.encode(&Tuple::new(vals))?;
            *collection_spilled += record.len() as u64;
            storage.borrow_mut().append(collection_file, &record)?;
        }
        if !empty_divisor {
            phase_count += 1;
        }
    }
    if empty_divisor {
        phase_count = 1;
    }

    // Collection phase, identical to `divisor_partitioned`'s.
    collection_division(
        storage,
        pool,
        collection_file,
        &collection_schema,
        phase_count,
        cancel,
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::StorageConfig;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn storage() -> StorageRef {
        StorageManager::shared(StorageConfig::large())
    }

    fn sids(rel: &Relation) -> Vec<i64> {
        let mut v: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        v.sort_unstable();
        v
    }

    fn qp(dividend: &Relation, divisor: &Relation, k: usize) -> Vec<i64> {
        let st = storage();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let rel = quotient_partitioned(
            &st,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            HashDivisionMode::Standard,
            k,
        )
        .unwrap();
        sids(&rel)
    }

    fn dp(dividend: &Relation, divisor: &Relation, k: usize) -> Vec<i64> {
        let st = storage();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let rel = divisor_partitioned(
            &st,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            k,
        )
        .unwrap();
        sids(&rel)
    }

    fn workload() -> (Relation, Relation, Vec<i64>) {
        // 40 students; student s took courses 0..(s % 13 + 1); divisor is
        // courses 0..8, so students with s % 13 >= 7 qualify.
        let mut rows = Vec::new();
        for s in 0..40i64 {
            for c in 0..=(s % 13) {
                rows.push([s, c]);
            }
        }
        let expected: Vec<i64> = (0..40).filter(|s| s % 13 >= 7).collect();
        (
            transcript(&rows),
            courses(&(0..8).collect::<Vec<_>>()),
            expected,
        )
    }

    #[test]
    fn quotient_partitioning_matches_plain_division() {
        let (dividend, divisor, expected) = workload();
        for k in [2, 3, 7, 16] {
            assert_eq!(qp(&dividend, &divisor, k), expected, "k={k}");
        }
    }

    #[test]
    fn divisor_partitioning_matches_plain_division() {
        let (dividend, divisor, expected) = workload();
        for k in [1, 2, 3, 7, 16] {
            assert_eq!(dp(&dividend, &divisor, k), expected, "k={k}");
        }
    }

    #[test]
    fn empty_divisor_is_vacuous_under_both_partitionings() {
        let dividend = transcript(&[[1, 10], [2, 20], [1, 30]]);
        let divisor = courses(&[]);
        assert_eq!(qp(&dividend, &divisor, 4), vec![1, 2]);
        assert_eq!(dp(&dividend, &divisor, 4), vec![1, 2]);
    }

    #[test]
    fn empty_dividend_is_empty_under_both_partitionings() {
        let dividend = transcript(&[]);
        let divisor = courses(&[1, 2]);
        assert_eq!(qp(&dividend, &divisor, 3), Vec::<i64>::new());
        assert_eq!(dp(&dividend, &divisor, 3), Vec::<i64>::new());
    }

    #[test]
    fn duplicates_are_still_ignored_when_partitioned() {
        let dividend = transcript(&[[1, 10], [1, 10], [1, 20], [2, 10], [2, 10], [3, 99]]);
        let divisor = courses(&[10, 20, 10]);
        assert_eq!(qp(&dividend, &divisor, 4), vec![1]);
        assert_eq!(dp(&dividend, &divisor, 4), vec![1]);
    }

    #[test]
    fn partitioned_quotient_fits_in_smaller_pool() {
        // 3000 quotient candidates of 2 courses each; a pool too small for
        // one quotient table but big enough for an eighth of it at a time.
        let mut rows = Vec::new();
        for q in 0..3000i64 {
            rows.push([q, 1]);
            rows.push([q, 2]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1, 2]);
        let st = StorageManager::shared(StorageConfig {
            data_page_size: 8192,
            run_page_size: 1024,
            buffer_bytes: 1 << 22,
            work_memory_bytes: 80 * 1024,
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        // Plain division exhausts the pool...
        let plain = crate::hash_division::HashDivision::new(
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            spec.clone(),
            HashDivisionMode::Standard,
            st.borrow().memory(),
        );
        let mut plain = plain.unwrap();
        assert!(reldiv_exec::Operator::open(&mut plain)
            .unwrap_err()
            .is_memory_exhausted());
        drop(plain);
        // ...but 8 quotient clusters fit.
        let rel = quotient_partitioned(
            &st,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            HashDivisionMode::Standard,
            8,
        )
        .unwrap();
        assert_eq!(rel.cardinality(), 3000);
    }

    #[test]
    fn too_few_partitions_is_a_plan_error() {
        let dividend = transcript(&[[1, 1]]);
        let divisor = courses(&[1]);
        let st = storage();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        assert!(quotient_partitioned(
            &st,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            HashDivisionMode::Standard,
            1,
        )
        .is_err());
        assert!(divisor_partitioned(
            &st,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            0,
        )
        .is_err());
    }
}

#[cfg(test)]
mod combined_tests {
    use super::*;
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::StorageConfig;

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("cno")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn cp(dividend: &Relation, divisor: &Relation, dk: usize, qk: usize) -> Vec<i64> {
        let st = StorageManager::shared(StorageConfig::large());
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let rel = combined_partitioned(
            &st,
            Box::new(MemScan::new(dividend.clone())),
            Box::new(MemScan::new(divisor.clone())),
            &spec,
            dk,
            qk,
        )
        .unwrap();
        let mut v: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn combined_matches_plain_division() {
        let mut rows = Vec::new();
        for s in 0..50i64 {
            for c in 0..=(s % 9) {
                rows.push([s, c]);
            }
        }
        let expected: Vec<i64> = (0..50).filter(|s| s % 9 >= 5).collect();
        let dividend = transcript(&rows);
        let divisor = courses(&(0..6).collect::<Vec<_>>());
        for (dk, qk) in [(1, 2), (2, 2), (3, 4), (5, 3)] {
            assert_eq!(cp(&dividend, &divisor, dk, qk), expected, "dk={dk} qk={qk}");
        }
    }

    #[test]
    fn combined_handles_empty_inputs() {
        let dividend = transcript(&[[1, 10], [2, 20]]);
        assert_eq!(
            cp(&dividend, &courses(&[]), 3, 2),
            vec![1, 2],
            "vacuous divisor"
        );
        assert_eq!(
            cp(&transcript(&[]), &courses(&[1]), 3, 2),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn combined_fits_when_neither_single_strategy_would() {
        // Large divisor (4000 tuples) AND large quotient (4000 candidates):
        // a budget sized for ~1/4 of each still completes with 8x8 clusters.
        let mut rows = Vec::new();
        for q in 0..4000i64 {
            // Every quotient value takes 3 of the 4000 divisor values; only
            // q == 0..3 take the first three (the actual divisor we use is
            // just those 3 values to keep |R| manageable).
            rows.push([q, q % 4000]);
            rows.push([q, (q + 1) % 4000]);
            rows.push([q, (q + 2) % 4000]);
        }
        let dividend = transcript(&rows);
        // Divisor: all 4000 values -> only groups covering all of them
        // qualify; none do, EXCEPT we add one complete group.
        let mut full = rows.clone();
        for d in 0..4000i64 {
            full.push([4_000_000, d]);
        }
        let dividend = {
            let mut d = dividend;
            for r in &full[rows.len()..] {
                d.push(ints(r)).unwrap();
            }
            d
        };
        let divisor = courses(&(0..4000).collect::<Vec<_>>());
        let st = StorageManager::shared(StorageConfig {
            work_memory_bytes: 700 * 1024,
            buffer_bytes: 1 << 23,
            ..StorageConfig::paper()
        });
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let rel = combined_partitioned(
            &st,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            8,
            8,
        )
        .unwrap();
        assert_eq!(rel.cardinality(), 1);
        assert_eq!(rel.tuples()[0], ints(&[4_000_000]));
    }

    #[test]
    fn combined_rejects_degenerate_cluster_counts() {
        let st = StorageManager::shared(StorageConfig::large());
        let dividend = transcript(&[[1, 1]]);
        let divisor = courses(&[1]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        assert!(combined_partitioned(
            &st,
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            &spec,
            0,
            1,
        )
        .is_err());
    }
}
