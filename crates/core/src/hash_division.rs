//! Hash-division (Section 3, Figure 1) and its variants.
//!
//! The algorithm proceeds in three steps:
//!
//! 1. **Build the divisor table** ([`DivisorTable`]). Every divisor tuple
//!    is inserted into a bucket-chained hash table and assigned a unique
//!    *divisor number*; duplicates are eliminated on the fly.
//! 2. **Build the quotient table** ([`QuotientTable`]). For each dividend
//!    tuple: hash/match it on the divisor attributes against the divisor
//!    table (no match ⇒ discard — e.g. a Transcript tuple for a physics
//!    course); then hash/match its quotient attributes against the
//!    quotient table, creating a new *quotient candidate* with a zeroed
//!    bit map on a miss; finally set the bit indexed by the divisor
//!    number. Duplicate dividend tuples are ignored automatically — "they
//!    map to the same bit in the same bit map".
//! 3. **Scan the quotient table**, emitting candidates whose bit map has
//!    no remaining zero.
//!
//! [`HashDivision`] packages the three steps as an open-next-close
//! operator; the tables are public so that the overflow strategies
//! ([`crate::overflow`]) and the shared-nothing adaptation
//! (`reldiv-parallel`) can compose them differently — e.g. one divisor
//! table shared by many phases, or a collection phase that indexes bits by
//! phase number instead of divisor number.
//!
//! [`HashDivisionMode`] selects among the paper's variants:
//! * [`Standard`](HashDivisionMode::Standard) — the Figure 1 algorithm (a
//!   stop-and-go operator),
//! * [`EarlyOut`](HashDivisionMode::EarlyOut) — Section 3.3's incremental
//!   modification: a counter per candidate lets the operator emit a
//!   quotient tuple the moment its bit map completes, making it a usable
//!   producer in a dataflow system,
//! * [`CounterOnly`](HashDivisionMode::CounterOnly) — Section 3.3's sixth
//!   observation: when the dividend is known duplicate-free, counters
//!   replace divisor numbers and bit maps entirely.
//!
//! Memory for both hash tables, chain elements, and bit maps is accounted
//! against the storage manager's memory pool; exhaustion surfaces as
//! `MemoryExhausted`, the trigger for the overflow strategies.

use reldiv_exec::batch::BoxedBatchOp;
use reldiv_exec::cancel::CancelToken;
use reldiv_exec::hash_table::ChainedTable;
use reldiv_exec::op::{BoxedOp, OpState, Operator};
use reldiv_rel::{Batch, Schema, Tuple};
use reldiv_storage::memory::Reservation;
use reldiv_storage::MemoryPool;

use crate::bitmap::Bitmap;
use crate::spec::DivisionSpec;
use crate::Result;

/// Variant selection for [`HashDivision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashDivisionMode {
    /// Figure 1: bit maps, quotient produced by a final table scan.
    #[default]
    Standard,
    /// Bit maps plus per-candidate counters; quotient tuples are produced
    /// incrementally while the dividend streams (Section 3.3).
    EarlyOut,
    /// Counters instead of bit maps; requires a duplicate-free dividend
    /// (Section 3.3, sixth observation).
    CounterOnly,
}

/// Statistics observable after a run, for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashDivisionStats {
    /// Distinct divisor tuples (duplicates eliminated on the fly).
    pub divisor_count: u64,
    /// Divisor duplicates dropped during step 1.
    pub divisor_duplicates: u64,
    /// Dividend tuples discarded for lack of a divisor match.
    pub dividend_discarded: u64,
    /// Quotient candidates created.
    pub candidates: u64,
    /// Quotient tuples emitted.
    pub emitted: u64,
}

/// Step 1's product: the divisor hash table with divisor numbers.
pub struct DivisorTable {
    table: ChainedTable<(Tuple, u32)>,
    count: u32,
    duplicates: u64,
    /// `0..arity` of the stored divisor tuples, precomputed so the batch
    /// path's per-row lookups allocate nothing.
    key_cols: Vec<usize>,
    /// Accounts the stored divisor tuples' bytes.
    _payload: Reservation,
}

impl DivisorTable {
    /// Builds the table by draining `divisor` (opened and closed here),
    /// eliminating duplicates on the fly and numbering distinct tuples in
    /// arrival order.
    pub fn build(divisor: &mut BoxedOp, pool: &MemoryPool) -> Result<Self> {
        divisor.open()?;
        let width = divisor.schema().record_width();
        let arity = divisor.schema().arity();
        let mut table: ChainedTable<(Tuple, u32)> = ChainedTable::new(pool, 16)?;
        let mut payload = pool.reserve(0)?;
        let all: Vec<usize> = (0..arity).collect();
        let mut count: u32 = 0;
        let mut duplicates: u64 = 0;
        while let Some(t) = divisor.next()? {
            let h = t.hash_on(&all);
            if table.find(h, |(s, _)| s.eq_on(&all, &t, &all)).is_some() {
                duplicates += 1;
                continue;
            }
            payload.grow(width)?;
            table.insert(h, (t, count))?;
            count += 1;
        }
        divisor.close()?;
        Ok(DivisorTable {
            table,
            count,
            duplicates,
            key_cols: all,
            _payload: payload,
        })
    }

    /// [`DivisorTable::build`] over a batch input: drains `divisor`
    /// (opened and closed here) one batch at a time, hashing each batch
    /// with the bulk kernel and polling `cancel` once per batch.
    ///
    /// The hash kernel is bit-identical to [`Tuple::hash_on`], so the
    /// chain layout — and every divisor number — matches the tuple-path
    /// build exactly; memory is accounted identically, so exhaustion
    /// surfaces at the same tuple.
    pub fn build_batch(
        divisor: &mut BoxedBatchOp,
        pool: &MemoryPool,
        cancel: CancelToken,
    ) -> Result<Self> {
        divisor.open()?;
        let width = divisor.schema().record_width();
        let arity = divisor.schema().arity();
        let key_cols: Vec<usize> = (0..arity).collect();
        let mut table: ChainedTable<(Tuple, u32)> = ChainedTable::new(pool, 16)?;
        let mut payload = pool.reserve(0)?;
        let mut count: u32 = 0;
        let mut duplicates: u64 = 0;
        while let Some(batch) = divisor.next_batch()? {
            cancel.check()?;
            let hashes = batch.hash_rows(&key_cols);
            for (row, &h) in hashes.iter().enumerate() {
                if table
                    .find_hashed(h, |(s, _)| batch.row_eq_tuple(&key_cols, row, s, &key_cols))
                    .is_some()
                {
                    duplicates += 1;
                    continue;
                }
                payload.grow(width)?;
                table.insert(h, (batch.tuple(row), count))?;
                count += 1;
            }
        }
        divisor.close()?;
        Ok(DivisorTable {
            table,
            count,
            duplicates,
            key_cols,
            _payload: payload,
        })
    }

    /// Number of distinct divisor tuples (the width of every bit map).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Divisor duplicates dropped during the build.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Looks up the divisor number matching dividend tuple `t` on its
    /// divisor-attribute columns `divisor_keys`.
    pub fn lookup(&self, t: &Tuple, divisor_keys: &[usize]) -> Option<u32> {
        let arity = divisor_keys.len();
        let all: Vec<usize> = (0..arity).collect();
        let h = t.hash_on(divisor_keys);
        self.table
            .find(h, |(s, _)| t.eq_on(divisor_keys, s, &all))
            .map(|idx| self.table.get(idx).1)
    }

    /// [`DivisorTable::lookup`] for one row of a batch: `h` is the row's
    /// precomputed hash over `divisor_keys` (from the bulk kernel), and
    /// the compare runs column-at-a-time against the batch — no tuple is
    /// materialized and nothing is allocated.
    pub fn lookup_row(
        &self,
        h: u64,
        batch: &Batch,
        row: usize,
        divisor_keys: &[usize],
    ) -> Option<u32> {
        self.table
            .find_hashed(h, |(s, _)| {
                batch.row_eq_tuple(divisor_keys, row, s, &self.key_cols)
            })
            .map(|idx| self.table.get(idx).1)
    }

    /// Iterates the distinct divisor tuples with their numbers.
    pub fn entries(&self) -> impl Iterator<Item = &(Tuple, u32)> {
        self.table.items()
    }
}

/// One quotient-table entry.
struct QEntry {
    tuple: Tuple,
    bitmap: Bitmap,
    count: u32,
}

/// Step 2/3's state: quotient candidates with bit maps.
pub struct QuotientTable {
    table: ChainedTable<QEntry>,
    payload: Reservation,
    mode: HashDivisionMode,
    divisor_count: u32,
    quotient_keys: Vec<usize>,
    /// `0..quotient_keys.len()` — the candidate tuples' own columns,
    /// precomputed so the batch path's per-row probes allocate nothing.
    qcols: Vec<usize>,
    quotient_width: usize,
    scan_pos: usize,
    stats_candidates: u64,
}

impl QuotientTable {
    /// Creates an empty quotient table for candidates projected onto
    /// `quotient_keys` of the dividend, with `divisor_count`-bit maps.
    pub fn new(
        pool: &MemoryPool,
        mode: HashDivisionMode,
        divisor_count: u32,
        quotient_keys: Vec<usize>,
        quotient_width: usize,
    ) -> Result<Self> {
        let qcols: Vec<usize> = (0..quotient_keys.len()).collect();
        Ok(QuotientTable {
            table: ChainedTable::new(pool, 16)?,
            payload: pool.reserve(0)?,
            mode,
            divisor_count,
            quotient_keys,
            qcols,
            quotient_width,
            scan_pos: 0,
            stats_candidates: 0,
        })
    }

    /// Number of candidates.
    pub fn candidates(&self) -> u64 {
        self.stats_candidates
    }

    /// Absorbs one dividend tuple already matched to `divisor_no`
    /// (`None` means the divisor is empty and the candidate is vacuously
    /// complete). Returns a quotient tuple when the `EarlyOut` mode
    /// completes a candidate.
    pub fn absorb(&mut self, t: &Tuple, divisor_no: Option<u32>) -> Result<Option<Tuple>> {
        debug_assert!(divisor_no.is_some() || self.divisor_count == 0);
        let qcols: Vec<usize> = (0..self.quotient_keys.len()).collect();
        let h = t.hash_on(&self.quotient_keys);
        let found = self
            .table
            .find(h, |e| t.eq_on(&self.quotient_keys, &e.tuple, &qcols));
        match found {
            None => {
                let tuple = t.project(&self.quotient_keys);
                self.absorb_miss(h, tuple, divisor_no)
            }
            Some(idx) => self.absorb_hit(idx, divisor_no),
        }
    }

    /// [`QuotientTable::absorb`] for one row of a batch, already matched
    /// to `divisor_no`: `h` is the row's precomputed hash over the
    /// quotient attributes (from the bulk kernel); the probe compares
    /// column-at-a-time against the batch, and the candidate tuple is
    /// materialized only on a miss.
    pub fn absorb_row(
        &mut self,
        h: u64,
        batch: &Batch,
        row: usize,
        divisor_no: Option<u32>,
    ) -> Result<Option<Tuple>> {
        debug_assert!(divisor_no.is_some() || self.divisor_count == 0);
        let found = self.table.find_hashed(h, |e| {
            batch.row_eq_tuple(&self.quotient_keys, row, &e.tuple, &self.qcols)
        });
        match found {
            None => {
                let tuple = batch.tuple_projected(&self.quotient_keys, row);
                self.absorb_miss(h, tuple, divisor_no)
            }
            Some(idx) => self.absorb_hit(idx, divisor_no),
        }
    }

    /// Shared miss path: accounts and inserts a new candidate (already
    /// projected onto the quotient attributes) under hash `h`.
    fn absorb_miss(
        &mut self,
        h: u64,
        tuple: Tuple,
        divisor_no: Option<u32>,
    ) -> Result<Option<Tuple>> {
        let bits = if self.mode == HashDivisionMode::CounterOnly {
            0
        } else {
            self.divisor_count as usize
        };
        self.payload
            .grow(self.quotient_width + Bitmap::heap_bytes(bits))?;
        let mut bitmap = Bitmap::new(bits);
        let mut count = 0;
        if let Some(d) = divisor_no {
            if self.mode != HashDivisionMode::CounterOnly {
                bitmap.set(d as usize);
            }
            count = 1;
        }
        self.stats_candidates += 1;
        let complete = count == self.divisor_count;
        let emit = if self.mode == HashDivisionMode::EarlyOut && complete {
            Some(tuple.clone())
        } else {
            None
        };
        self.table.insert(
            h,
            QEntry {
                tuple,
                bitmap,
                count,
            },
        )?;
        Ok(emit)
    }

    /// Shared hit path: updates the existing candidate at `idx`.
    fn absorb_hit(&mut self, idx: u32, divisor_no: Option<u32>) -> Result<Option<Tuple>> {
        let divisor_count = self.divisor_count;
        let e = self.table.get_mut(idx);
        match self.mode {
            HashDivisionMode::Standard => {
                if let Some(d) = divisor_no {
                    e.bitmap.set(d as usize);
                }
                Ok(None)
            }
            HashDivisionMode::EarlyOut => {
                if let Some(d) = divisor_no {
                    // Test-and-set: an already-set bit means a duplicate
                    // dividend tuple — discard it.
                    if !e.bitmap.set(d as usize) {
                        e.count += 1;
                        if e.count == divisor_count {
                            return Ok(Some(e.tuple.clone()));
                        }
                    }
                }
                Ok(None)
            }
            HashDivisionMode::CounterOnly => {
                if divisor_no.is_some() {
                    e.count += 1;
                }
                Ok(None)
            }
        }
    }

    /// Step 3: pulls the next complete candidate from the final table
    /// scan. (Under `EarlyOut`, complete candidates were emitted during
    /// the stream, so this scan yields nothing.)
    pub fn next_complete(&mut self) -> Option<Tuple> {
        while self.scan_pos < self.table.len() {
            let idx = self.scan_pos as u32;
            self.scan_pos += 1;
            let e = self.table.get(idx);
            let complete = match self.mode {
                HashDivisionMode::Standard => e.bitmap.all_set(),
                HashDivisionMode::EarlyOut => false,
                HashDivisionMode::CounterOnly => e.count == self.divisor_count,
            };
            if complete {
                return Some(e.tuple.clone());
            }
        }
        None
    }
}

/// The hash-division operator.
pub struct HashDivision {
    dividend: BoxedOp,
    divisor: BoxedOp,
    spec: DivisionSpec,
    mode: HashDivisionMode,
    pool: MemoryPool,
    schema: Schema,
    state: OpState,
    divisor_table: Option<DivisorTable>,
    quotient_table: Option<QuotientTable>,
    streaming: bool,
    stats: HashDivisionStats,
    cancel: CancelToken,
    cancel_budget: u32,
}

impl HashDivision {
    /// Creates a hash-division of `dividend ÷ divisor` described by `spec`.
    pub fn new(
        dividend: BoxedOp,
        divisor: BoxedOp,
        spec: DivisionSpec,
        mode: HashDivisionMode,
        pool: MemoryPool,
    ) -> Result<Self> {
        spec.validate(dividend.schema(), divisor.schema())?;
        let schema = spec.quotient_schema(dividend.schema())?;
        Ok(HashDivision {
            dividend,
            divisor,
            spec,
            mode,
            pool,
            schema,
            state: OpState::Created,
            divisor_table: None,
            quotient_table: None,
            streaming: false,
            stats: HashDivisionStats::default(),
            cancel: CancelToken::none(),
            cancel_budget: 0,
        })
    }

    /// Installs a cancellation token, polled cooperatively in the
    /// per-tuple build and stream loops.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Run statistics (meaningful once the operator has been drained).
    pub fn stats(&self) -> HashDivisionStats {
        let mut s = self.stats;
        if let Some(q) = &self.quotient_table {
            s.candidates = q.candidates();
        }
        s
    }

    /// Steps 1+2 for one dividend tuple.
    fn absorb(&mut self, t: Tuple) -> Result<Option<Tuple>> {
        let dt = self.divisor_table.as_ref().expect("open builds tables");
        let divisor_no = if dt.count() == 0 {
            // Empty divisor: universal quantification is vacuous; every
            // dividend tuple survives as a (complete) candidate.
            None
        } else {
            match dt.lookup(&t, &self.spec.divisor_keys) {
                Some(d) => Some(d),
                None => {
                    // No matching divisor tuple: discard immediately.
                    self.stats.dividend_discarded += 1;
                    return Ok(None);
                }
            }
        };
        let qt = self.quotient_table.as_mut().expect("open builds tables");
        let out = qt.absorb(&t, divisor_no)?;
        if out.is_some() {
            self.stats.emitted += 1;
        }
        Ok(out)
    }
}

impl Operator for HashDivision {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.stats = HashDivisionStats::default();
        let dt = DivisorTable::build(&mut self.divisor, &self.pool)?;
        self.stats.divisor_count = dt.count() as u64;
        self.stats.divisor_duplicates = dt.duplicates();
        let qt = QuotientTable::new(
            &self.pool,
            self.mode,
            dt.count(),
            self.spec.quotient_keys.clone(),
            self.schema.record_width(),
        )?;
        self.divisor_table = Some(dt);
        self.quotient_table = Some(qt);
        self.dividend.open()?;
        match self.mode {
            HashDivisionMode::Standard | HashDivisionMode::CounterOnly => {
                // Stop-and-go: consume the whole dividend now, checking the
                // deadline once per stride of tuples.
                while let Some(t) = self.dividend.next()? {
                    self.cancel.checkpoint(&mut self.cancel_budget)?;
                    self.absorb(t)?;
                }
                self.dividend.close()?;
                // "free divisor table" — it is no longer needed, but keep
                // the count for the final scan.
                self.streaming = false;
            }
            HashDivisionMode::EarlyOut => {
                self.streaming = true;
            }
        }
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        // EarlyOut: keep consuming the dividend until a candidate
        // completes.
        if self.streaming {
            loop {
                self.cancel.checkpoint(&mut self.cancel_budget)?;
                match self.dividend.next()? {
                    Some(t) => {
                        if let Some(q) = self.absorb(t)? {
                            return Ok(Some(q));
                        }
                    }
                    None => {
                        self.dividend.close()?;
                        self.streaming = false;
                        // All complete candidates were already emitted.
                        return Ok(None);
                    }
                }
            }
        }
        // Step 3: scan the quotient table for bit maps with no zero.
        let qt = self.quotient_table.as_mut().expect("open builds tables");
        match qt.next_complete() {
            Some(t) => {
                self.stats.emitted += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        // "free divisor table ... free quotient table".
        self.divisor_table = None;
        self.quotient_table = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_exec::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::{Relation, Value};

    fn transcript(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("student-id"), Field::int("course-no")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn courses(nos: &[i64]) -> Relation {
        let schema = Schema::new(vec![Field::int("course-no")]);
        Relation::from_tuples(schema, nos.iter().map(|&n| ints(&[n])).collect()).unwrap()
    }

    fn divide(
        dividend: Relation,
        divisor: Relation,
        mode: HashDivisionMode,
    ) -> (Vec<i64>, HashDivisionStats) {
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut op = HashDivision::new(
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
            mode,
            MemoryPool::unbounded(),
        )
        .unwrap();
        op.open().unwrap();
        let mut out = Vec::new();
        while let Some(t) = op.next().unwrap() {
            out.push(t.value(0).as_int().unwrap());
        }
        let stats = op.stats();
        op.close().unwrap();
        out.sort_unstable();
        (out, stats)
    }

    const MODES: [HashDivisionMode; 3] = [
        HashDivisionMode::Standard,
        HashDivisionMode::EarlyOut,
        HashDivisionMode::CounterOnly,
    ];

    /// The paper's Figure 2 worked example: Ann and Barb's transcripts
    /// divided by the two database courses yields exactly Ann.
    #[test]
    fn figure2_example() {
        let schema_t = Schema::new(vec![Field::str("student", 8), Field::str("course", 12)]);
        let schema_c = Schema::new(vec![Field::str("course", 12)]);
        let t = Relation::from_tuples(
            schema_t,
            [
                ("Ann", "Database1"),
                ("Barb", "Database2"),
                ("Ann", "Database2"),
                ("Barb", "Optics"),
            ]
            .iter()
            .map(|&(s, c)| Tuple::new(vec![Value::from(s), Value::from(c)]))
            .collect(),
        )
        .unwrap();
        let c = Relation::from_tuples(
            schema_c,
            vec![
                Tuple::new(vec![Value::from("Database1")]),
                Tuple::new(vec![Value::from("Database2")]),
            ],
        )
        .unwrap();
        let spec = DivisionSpec::trailing_divisor(t.schema(), c.schema()).unwrap();
        let mut op = HashDivision::new(
            Box::new(MemScan::new(t)),
            Box::new(MemScan::new(c)),
            spec,
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        )
        .unwrap();
        op.open().unwrap();
        let mut names = Vec::new();
        while let Some(q) = op.next().unwrap() {
            names.push(q.value(0).as_str().unwrap().to_owned());
        }
        assert_eq!(names, vec!["Ann"], "only Ann took both database courses");
        let stats = op.stats();
        assert_eq!(stats.divisor_count, 2);
        assert_eq!(stats.dividend_discarded, 1, "(Barb, Optics) is discarded");
        assert_eq!(stats.candidates, 2, "Ann and Barb are candidates");
        op.close().unwrap();
    }

    #[test]
    fn exact_product_all_modes() {
        // R = Q x S: every student took every course.
        let mut rows = Vec::new();
        for q in 0..4 {
            for s in 0..3 {
                rows.push([q, 100 + s]);
            }
        }
        for mode in MODES {
            let (out, stats) = divide(transcript(&rows), courses(&[100, 101, 102]), mode);
            assert_eq!(out, vec![0, 1, 2, 3], "{mode:?}");
            assert_eq!(stats.emitted, 4);
        }
    }

    #[test]
    fn partial_groups_are_excluded() {
        let rows = [[1, 10], [1, 20], [2, 10], [3, 20], [3, 10]];
        for mode in MODES {
            let (out, _) = divide(transcript(&rows), courses(&[10, 20]), mode);
            assert_eq!(out, vec![1, 3], "{mode:?}");
        }
    }

    #[test]
    fn non_matching_dividend_tuples_are_discarded_early() {
        let rows = [[1, 10], [1, 99], [2, 10], [2, 99]];
        for mode in MODES {
            let (out, stats) = divide(transcript(&rows), courses(&[10]), mode);
            assert_eq!(out, vec![1, 2], "{mode:?}");
            assert_eq!(stats.dividend_discarded, 2, "{mode:?}");
        }
    }

    #[test]
    fn divisor_duplicates_are_eliminated_on_the_fly() {
        let rows = [[1, 10], [1, 20], [2, 10]];
        for mode in MODES {
            let (out, stats) = divide(transcript(&rows), courses(&[10, 20, 10, 20, 20]), mode);
            assert_eq!(out, vec![1], "{mode:?}");
            assert_eq!(stats.divisor_count, 2, "{mode:?}");
            assert_eq!(stats.divisor_duplicates, 3, "{mode:?}");
        }
    }

    #[test]
    fn dividend_duplicates_are_ignored_by_bitmap_modes() {
        // Student 2 has duplicate (2,10) rows but never took course 20:
        // counting would wrongly qualify them; bit maps do not.
        let rows = [[1, 10], [1, 20], [2, 10], [2, 10]];
        for mode in [HashDivisionMode::Standard, HashDivisionMode::EarlyOut] {
            let (out, _) = divide(transcript(&rows), courses(&[10, 20]), mode);
            assert_eq!(out, vec![1], "{mode:?}");
        }
        // CounterOnly documents the opposite: duplicates corrupt counts.
        let (out, _) = divide(
            transcript(&rows),
            courses(&[10, 20]),
            HashDivisionMode::CounterOnly,
        );
        assert_eq!(out, vec![1, 2], "counter mode is fooled by duplicates");
    }

    #[test]
    fn empty_divisor_yields_distinct_quotient_projection() {
        let rows = [[1, 10], [2, 20], [1, 30]];
        for mode in MODES {
            let (out, _) = divide(transcript(&rows), courses(&[]), mode);
            assert_eq!(out, vec![1, 2], "{mode:?}");
        }
    }

    #[test]
    fn empty_dividend_yields_empty_quotient() {
        for mode in MODES {
            let (out, _) = divide(transcript(&[]), courses(&[10]), mode);
            assert!(out.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn early_out_emits_before_dividend_is_exhausted() {
        // Student 1 completes after the first two tuples; a long tail
        // follows. The operator must emit 1 before consuming the tail.
        let mut rows = vec![[1, 10], [1, 20]];
        for i in 0..100 {
            rows.push([2 + i, 10]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[10, 20]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut op = HashDivision::new(
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
            HashDivisionMode::EarlyOut,
            MemoryPool::unbounded(),
        )
        .unwrap();
        op.open().unwrap();
        let first = op.next().unwrap().unwrap();
        assert_eq!(first, ints(&[1]));
        // At this point only 2 of 102 dividend tuples were needed; the
        // candidate count proves the tail was not consumed.
        assert!(op.stats().candidates <= 2);
        assert!(op.next().unwrap().is_none());
        op.close().unwrap();
    }

    #[test]
    fn memory_exhaustion_surfaces_for_overflow_handling() {
        let mut rows = Vec::new();
        for q in 0..10_000 {
            rows.push([q, 1]);
        }
        let dividend = transcript(&rows);
        let divisor = courses(&[1]);
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut op = HashDivision::new(
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
            HashDivisionMode::Standard,
            MemoryPool::new(4096),
        )
        .unwrap();
        let err = op.open().unwrap_err();
        assert!(err.is_memory_exhausted());
    }

    #[test]
    fn multi_column_divisor_and_quotient() {
        // Dividend (q1, q2, d1, d2) / divisor (d1, d2).
        let dividend_schema = Schema::new(vec![
            Field::int("q1"),
            Field::int("q2"),
            Field::int("d1"),
            Field::int("d2"),
        ]);
        let divisor_schema = Schema::new(vec![Field::int("d1"), Field::int("d2")]);
        let dividend = Relation::from_tuples(
            dividend_schema,
            vec![
                ints(&[1, 1, 5, 50]),
                ints(&[1, 1, 6, 60]),
                ints(&[2, 2, 5, 50]),
                // (2,2) missing (6,60); (2,2,6,61) must not count.
                ints(&[2, 2, 6, 61]),
            ],
        )
        .unwrap();
        let divisor =
            Relation::from_tuples(divisor_schema, vec![ints(&[5, 50]), ints(&[6, 60])]).unwrap();
        let spec = DivisionSpec::trailing_divisor(dividend.schema(), divisor.schema()).unwrap();
        let mut op = HashDivision::new(
            Box::new(MemScan::new(dividend)),
            Box::new(MemScan::new(divisor)),
            spec,
            HashDivisionMode::Standard,
            MemoryPool::unbounded(),
        )
        .unwrap();
        op.open().unwrap();
        let mut out = Vec::new();
        while let Some(t) = op.next().unwrap() {
            out.push(t);
        }
        assert_eq!(out, vec![ints(&[1, 1])]);
        op.close().unwrap();
    }

    #[test]
    fn bit_operations_are_counted() {
        reldiv_rel::counters::reset();
        let rows = [[1, 10], [1, 20]];
        let (_, _) = divide(
            transcript(&rows),
            courses(&[10, 20]),
            HashDivisionMode::Standard,
        );
        let snap = reldiv_rel::counters::snapshot();
        assert!(
            snap.bitops >= 2,
            "at least one Bit per dividend tuple: {snap:?}"
        );
        assert!(snap.hashes >= 2 + 2 * 2, "divisor + 2 per dividend tuple");
    }

    #[test]
    fn divisor_table_is_reusable_across_phases() {
        // The overflow strategies keep one divisor table across phases.
        let divisor = courses(&[10, 20, 30]);
        let mut op: BoxedOp = Box::new(MemScan::new(divisor));
        let dt = DivisorTable::build(&mut op, &MemoryPool::unbounded()).unwrap();
        assert_eq!(dt.count(), 3);
        let t = ints(&[7, 20]);
        assert_eq!(dt.lookup(&t, &[1]), Some(1));
        assert_eq!(dt.lookup(&ints(&[7, 99]), &[1]), None);
        assert_eq!(dt.entries().count(), 3);
    }
}
