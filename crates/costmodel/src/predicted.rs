//! Predicted unit counts — the cost model decomposed for validation.
//!
//! Section 5 of the paper validates the Table 2 formulas against measured
//! executions. To reproduce that comparison per cost unit (not just as one
//! total), this module re-states every Section 4 formula as a vector of
//! *unit counts* — how many RIO, SIO, Comp, Hash, Move, and Bit operations
//! the model predicts — instead of a single priced millisecond figure.
//!
//! The decomposition is tied to the formulas by an identity test: for
//! every Table 2 configuration and every algorithm,
//! `UnitCounts::predict(..).price_ms(units)` equals the corresponding
//! [`CostModel`] formula to floating-point precision. The `model_check`
//! bench then compares each predicted count against the matching measured
//! counter (abstract-operation counters for the CPU units, disk transfer
//! statistics for the I/O units) and reports relative error per unit.

use crate::formulas::CostModel;
use crate::planner::PlannedAlgorithm;
use crate::units::CostUnits;

/// Predicted operation counts, one slot per Table 1 cost unit. Counts are
/// `f64` because the paper's page cardinalities are fractional (`|S| = 25`
/// occupies `s = 2.5` pages).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnitCounts {
    /// Random page I/Os.
    pub rio: f64,
    /// Sequential page I/Os.
    pub sio: f64,
    /// Tuple comparisons.
    pub comp: f64,
    /// Hash-value calculations.
    pub hash: f64,
    /// Page-sized memory moves.
    pub mv: f64,
    /// Bit-map operations.
    pub bit: f64,
}

impl UnitCounts {
    /// Component-wise sum.
    pub fn add(&self, other: &UnitCounts) -> UnitCounts {
        UnitCounts {
            rio: self.rio + other.rio,
            sio: self.sio + other.sio,
            comp: self.comp + other.comp,
            hash: self.hash + other.hash,
            mv: self.mv + other.mv,
            bit: self.bit + other.bit,
        }
    }

    /// Component-wise scaling.
    pub fn scale(&self, k: f64) -> UnitCounts {
        UnitCounts {
            rio: self.rio * k,
            sio: self.sio * k,
            comp: self.comp * k,
            hash: self.hash * k,
            mv: self.mv * k,
            bit: self.bit * k,
        }
    }

    /// Prices the counts with Table 1 units, in milliseconds. By the
    /// identity tests below this reproduces the [`CostModel`] formulas
    /// exactly.
    pub fn price_ms(&self, units: &CostUnits) -> f64 {
        self.rio * units.rio
            + self.sio * units.sio
            + self.comp * units.comp
            + self.hash * units.hash
            + self.mv * units.mv
            + self.bit * units.bit
    }

    /// The six `(unit name, predicted count)` pairs in Table 1 order.
    pub fn named(&self) -> [(&'static str, f64); 6] {
        [
            ("rio", self.rio),
            ("sio", self.sio),
            ("comp", self.comp),
            ("hash", self.hash),
            ("move", self.mv),
            ("bit", self.bit),
        ]
    }

    /// Predicted unit counts for one algorithm under the model's size
    /// configuration — the Section 4 formulas with the unit prices left
    /// symbolic.
    pub fn predict(model: &CostModel, algorithm: PlannedAlgorithm) -> UnitCounts {
        let s = &model.sizes;
        let r_tuples = s.dividend();
        match algorithm {
            // Section 4.2: sorts + `(r+s)·SIO + |R|·Comp`.
            PlannedAlgorithm::Naive => UnitCounts {
                sio: s.r_pages() + s.s_pages(),
                comp: r_tuples as f64,
                ..UnitCounts::default()
            }
            .add(&sort_counts(model, r_tuples, s.r_pages()))
            .add(&sort_counts(model, s.divisor, s.s_pages())),
            // Section 4.3: sorts + `|R|·Comp + s·SIO`.
            PlannedAlgorithm::SortAggregation { join: false } => UnitCounts {
                sio: s.s_pages(),
                comp: r_tuples as f64,
                ..UnitCounts::default()
            }
            .add(&sort_counts(model, r_tuples, s.r_pages()))
            .add(&sort_counts(model, s.divisor, s.s_pages())),
            // Section 4.3 with join: `2·sort(R) + 2·sort(S) + (r+s)·SIO +
            // |R|·|S|·Comp + 2·|R|·Comp + 2·s·SIO`.
            PlannedAlgorithm::SortAggregation { join: true } => UnitCounts {
                sio: s.r_pages() + s.s_pages() + 2.0 * s.s_pages(),
                comp: (r_tuples * s.divisor) as f64 + 2.0 * r_tuples as f64,
                ..UnitCounts::default()
            }
            .add(&sort_counts(model, r_tuples, s.r_pages()).scale(2.0))
            .add(&sort_counts(model, s.divisor, s.s_pages()).scale(2.0)),
            // Section 4.4: `r·SIO + |R|·(Hash + hbs·Comp) + s·SIO`.
            PlannedAlgorithm::HashAggregation { join: false } => UnitCounts {
                sio: s.r_pages() + s.s_pages(),
                hash: r_tuples as f64,
                comp: r_tuples as f64 * s.hbs,
                ..UnitCounts::default()
            },
            // Section 4.4 with join: semi-join `(s+r)·SIO + |S|·Hash +
            // |R|·(Hash + hbs·Comp)` plus the aggregation counts.
            PlannedAlgorithm::HashAggregation { join: true } => UnitCounts {
                sio: s.s_pages() + s.r_pages(),
                hash: s.divisor as f64 + r_tuples as f64,
                comp: r_tuples as f64 * s.hbs,
                ..UnitCounts::default()
            }
            .add(&UnitCounts::predict(
                model,
                PlannedAlgorithm::HashAggregation { join: false },
            )),
            // Section 4.5: `(r+s)·SIO + |S|·Hash + |R|·(2·(Hash +
            // hbs·Comp) + Bit)`.
            PlannedAlgorithm::HashDivision => UnitCounts {
                sio: s.r_pages() + s.s_pages(),
                hash: s.divisor as f64 + 2.0 * r_tuples as f64,
                comp: 2.0 * r_tuples as f64 * s.hbs,
                bit: r_tuples as f64,
                ..UnitCounts::default()
            },
        }
    }
}

fn log2(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

/// The sort cost of Section 4.1 as unit counts: quicksort when the
/// relation fits in memory (`2·n·log2(n)` comparisons), otherwise the disk
/// merge sort (`passes·2·r` random I/Os, `passes·r` moves, and the two
/// comparison terms).
pub fn sort_counts(model: &CostModel, n: u64, pages: f64) -> UnitCounts {
    let m = model.sizes.memory_pages;
    if pages <= m {
        UnitCounts {
            comp: 2.0 * n as f64 * log2(n as f64),
            ..UnitCounts::default()
        }
    } else {
        let passes = model.merge_passes(pages);
        UnitCounts {
            rio: passes * 2.0 * pages,
            mv: passes * pages,
            comp: passes * n as f64 * log2(m) + 2.0 * n as f64 * log2(n as f64 * m / pages),
            ..UnitCounts::default()
        }
    }
}

/// One predicted-vs-measured comparison, per cost unit or in total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitComparison {
    /// Unit name (`"rio"`, `"sio"`, `"comp"`, `"hash"`, `"move"`,
    /// `"bit"`) or `"total_ms"`.
    pub unit: &'static str,
    /// Model-predicted count (or milliseconds for `"total_ms"`).
    pub predicted: f64,
    /// Measured count (or milliseconds).
    pub measured: f64,
}

impl UnitComparison {
    /// Signed relative error `(measured - predicted) / predicted`.
    /// When the model predicts zero: `0` if the measurement is also zero
    /// (within rounding), infinite otherwise.
    pub fn relative_error(&self) -> f64 {
        if self.predicted.abs() > 1e-9 {
            (self.measured - self.predicted) / self.predicted
        } else if self.measured.abs() <= 1e-9 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

/// Compares a predicted count vector against measured counts, pairing
/// each unit, and appends a `"total_ms"` row priced with `units`.
pub fn compare(
    predicted: &UnitCounts,
    measured: &UnitCounts,
    units: &CostUnits,
) -> Vec<UnitComparison> {
    let mut rows: Vec<UnitComparison> = predicted
        .named()
        .iter()
        .zip(measured.named().iter())
        .map(|(&(unit, p), &(_, m))| UnitComparison {
            unit,
            predicted: p,
            measured: m,
        })
        .collect();
    rows.push(UnitComparison {
        unit: "total_ms",
        predicted: predicted.price_ms(units),
        measured: measured.price_ms(units),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> [PlannedAlgorithm; 6] {
        [
            PlannedAlgorithm::Naive,
            PlannedAlgorithm::SortAggregation { join: false },
            PlannedAlgorithm::SortAggregation { join: true },
            PlannedAlgorithm::HashAggregation { join: false },
            PlannedAlgorithm::HashAggregation { join: true },
            PlannedAlgorithm::HashDivision,
        ]
    }

    fn formula_ms(model: &CostModel, alg: PlannedAlgorithm) -> f64 {
        match alg {
            PlannedAlgorithm::Naive => model.naive_division_ms(),
            PlannedAlgorithm::SortAggregation { join: false } => model.sort_aggregation_ms(),
            PlannedAlgorithm::SortAggregation { join: true } => {
                model.sort_aggregation_with_join_ms()
            }
            PlannedAlgorithm::HashAggregation { join: false } => model.hash_aggregation_ms(),
            PlannedAlgorithm::HashAggregation { join: true } => {
                model.hash_aggregation_with_join_ms()
            }
            PlannedAlgorithm::HashDivision => model.hash_division_ms(),
        }
    }

    #[test]
    fn decomposition_prices_back_to_the_formulas_for_all_table2_cells() {
        // The identity that makes the per-unit validation trustworthy:
        // summing count × unit-price reproduces every Table 2 formula.
        for &s in &[25u64, 100, 400] {
            for &q in &[25u64, 100, 400] {
                let model = CostModel::paper(s, q);
                for alg in columns() {
                    let priced = UnitCounts::predict(&model, alg).price_ms(&model.units);
                    let formula = formula_ms(&model, alg);
                    let err = (priced - formula).abs() / formula.max(1.0);
                    assert!(err < 1e-9, "|S|={s} |Q|={q} {alg:?}: {priced} vs {formula}");
                }
            }
        }
    }

    #[test]
    fn hash_division_counts_follow_section_4_5() {
        let model = CostModel::paper(25, 25);
        let c = UnitCounts::predict(&model, PlannedAlgorithm::HashDivision);
        // r = 125, s = 2.5 pages; |S| = 25, |R| = 625.
        assert!((c.sio - 127.5).abs() < 1e-9);
        assert!((c.hash - (25.0 + 2.0 * 625.0)).abs() < 1e-9);
        assert!((c.comp - 2.0 * 625.0 * 2.0).abs() < 1e-9);
        assert!((c.bit - 625.0).abs() < 1e-9);
        assert_eq!(c.rio, 0.0);
        assert_eq!(c.mv, 0.0);
    }

    #[test]
    fn in_memory_sort_is_pure_comparisons() {
        let model = CostModel::paper(25, 25);
        let c = sort_counts(&model, 25, 2.5);
        assert_eq!(c.rio, 0.0);
        assert_eq!(c.mv, 0.0);
        assert!((c.comp - 2.0 * 25.0 * 25f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn disk_sort_pays_random_io_and_moves() {
        let model = CostModel::paper(25, 25);
        // The dividend: 625 tuples on 125 pages > m = 100 pages.
        let c = sort_counts(&model, 625, 125.0);
        assert!((c.rio - 250.0).abs() < 1e-9, "one pass, 2 RIO per page");
        assert!((c.mv - 125.0).abs() < 1e-9);
        assert!(c.comp > 0.0);
    }

    #[test]
    fn relative_error_conventions() {
        let exact = UnitComparison {
            unit: "comp",
            predicted: 100.0,
            measured: 110.0,
        };
        assert!((exact.relative_error() - 0.1).abs() < 1e-12);
        let both_zero = UnitComparison {
            unit: "bit",
            predicted: 0.0,
            measured: 0.0,
        };
        assert_eq!(both_zero.relative_error(), 0.0);
        let surprise = UnitComparison {
            unit: "bit",
            predicted: 0.0,
            measured: 5.0,
        };
        assert!(surprise.relative_error().is_infinite());
    }

    #[test]
    fn compare_pairs_all_units_plus_total() {
        let model = CostModel::paper(25, 25);
        let p = UnitCounts::predict(&model, PlannedAlgorithm::HashDivision);
        let rows = compare(&p, &p, &model.units);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[6].unit, "total_ms");
        for row in &rows {
            assert_eq!(row.relative_error(), 0.0, "{}", row.unit);
        }
        assert!((rows[6].predicted - model.hash_division_ms()).abs() < 1e-9);
    }
}
