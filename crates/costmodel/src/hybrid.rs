//! Predicted cost of the memory-adaptive hybrid hash-division.
//!
//! Section 4.5 prices hash-division under the standing assumption
//! `s + q < m` — the tables fit. The adaptive hybrid removes that
//! assumption, so its cost model must predict *how much* spills as a
//! function of the memory budget, the fanout, the quotient cardinality,
//! and skew. The formula mirrors the implementation's mechanics
//! (`reldiv-core`'s `hybrid` module) under the paper's easy case
//! `R = Q × S` with the dividend shuffled:
//!
//! * **Fill point.** Quotient groups are discovered on first touch; with
//!   `|S|` tuples per group arriving uniformly shuffled, the expected
//!   number of distinct groups after consuming a fraction `t` of the
//!   dividend is `G · (1 − (1 − t)^|S|)` — strongly front-loaded for
//!   realistic `|S|`. Memory (`avail = B − D` bytes, `B` the budget, `D`
//!   the divisor table) therefore fills within the first few percent of
//!   the stream whenever it fills at all.
//! * **Victims.** A fraction `σ` of the table must live on disk; victims
//!   are whole partitions, so `k = ⌈σ·F⌉` of the `F` partitions spill,
//!   carrying `k/F` of the groups. Each spilled group's table entry is
//!   serialized about once (eviction, plus the final hot-group flush).
//! * **Deltas.** Tuples routed to a spilled partition after its eviction
//!   become delta records. The `i`-th victim is evicted when discovery
//!   crosses its share of the deficit, i.e. at the `t` where
//!   `1 − (1−t)^|S|` reaches table-fraction `x ∈ [1−σ, 1]`; averaging the
//!   on-disk window `1 − t(x) = (1−x)^(1/|S|)` over that range gives the
//!   closed form `w = |S|/(|S|+1) · σ^(1/|S|)` — close to the whole
//!   stream, because discovery is front-loaded.
//! * **Skew.** A `hot_fraction` of the matched tuples belonging to the
//!   single hottest group is absorbed by the hot-group accumulator
//!   instead of becoming deltas — the model's knob for the one-huge-group
//!   case.
//!
//! The `model_check` bench calibrates `D` and the bytes-per-group from
//! probe runs of the real stack, then validates predicted spill volume
//! and the degradation boundary against measured [`DegradationReport`]s
//! across a budget sweep.
//!
//! [`DegradationReport`]: ../../reldiv_core/struct.DegradationReport.html

use crate::units::CostUnits;

/// Calibrated sizes feeding the hybrid prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridSizes {
    /// Per-query memory budget in bytes.
    pub budget_bytes: u64,
    /// Resident divisor-table bytes (step 1's table, never spillable).
    pub divisor_table_bytes: u64,
    /// Quotient-table bytes per distinct group, including hash-table
    /// overhead (calibrated from an unbudgeted probe run).
    pub table_bytes_per_group: f64,
    /// Distinct quotient candidates `G`.
    pub groups: u64,
    /// Matched dividend tuples of a *typical* group (`|S|` in the easy
    /// case) — drives the group-discovery curve, so it stays the typical
    /// size even when one hot group is much larger.
    pub tuples_per_group: f64,
    /// Total matched dividend tuples (`G · |S|` in the easy case; larger
    /// under skew, where the hot group repeats).
    pub matched_tuples: u64,
    /// Bytes of one serialized table entry (state record).
    pub state_record_bytes: u64,
    /// Bytes of one serialized matched tuple (delta record).
    pub delta_record_bytes: u64,
    /// Quotient-hash partitions.
    pub fanout: usize,
    /// Fraction of all matched tuples held by the single hottest group
    /// (0 for uniform workloads). Absorbed by the hot-group accumulator,
    /// never spilled per tuple.
    pub hot_fraction: f64,
}

/// What the model expects the adaptive hybrid to do under a budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPrediction {
    /// Whether any spilling is expected at all.
    pub degrades: bool,
    /// Expected number of evicted partitions (`⌈σ·F⌉`).
    pub partitions_spilled: u32,
    /// Expected first-time spill volume in bytes (state + delta records).
    pub spill_bytes: f64,
    /// Whether first-pass merges are expected to overflow and recurse
    /// (a single partition's share of the table exceeds the headroom).
    pub expects_recursion: bool,
}

impl HybridSizes {
    /// Quotient-table headroom left after the divisor table.
    fn avail(&self) -> f64 {
        self.budget_bytes.saturating_sub(self.divisor_table_bytes) as f64
    }

    /// Total quotient-table bytes if everything stayed resident.
    fn need(&self) -> f64 {
        self.groups as f64 * self.table_bytes_per_group
    }

    /// Evaluates the prediction.
    pub fn predict(&self) -> HybridPrediction {
        let avail = self.avail();
        let need = self.need();
        if need <= avail || self.groups == 0 {
            return HybridPrediction {
                degrades: false,
                partitions_spilled: 0,
                spill_bytes: 0.0,
                expects_recursion: false,
            };
        }
        // Spilled fraction of the table, and of the partitions.
        let sigma = (1.0 - avail / need.max(1.0)).clamp(0.0, 1.0);
        let fanout = self.fanout.max(2) as f64;
        let k = (sigma * fanout).ceil().min(fanout);
        let group_share = k / fanout;
        let s = self.tuples_per_group.max(1.0);
        // State records: each spilled group's entry serialized ~once.
        let states = group_share * self.groups as f64 * self.state_record_bytes as f64;
        // Delta records: matched tuples landing on a partition while it
        // is on disk. Victims are evicted as group discovery crosses
        // their share of the deficit; averaging the on-disk window over
        // the deficit range gives w = s/(s+1) * sigma^(1/s) (see the
        // module docs). The hottest group's share is absorbed by the
        // accumulator instead.
        let window = (s / (s + 1.0)) * sigma.powf(1.0 / s);
        let matched = self.matched_tuples as f64;
        let delta_tuples = matched * (1.0 - self.hot_fraction) * group_share * window;
        let deltas = delta_tuples * self.delta_record_bytes as f64;
        HybridPrediction {
            degrades: true,
            partitions_spilled: k as u32,
            spill_bytes: states + deltas,
            expects_recursion: need / fanout > avail,
        }
    }

    /// Prices the predicted spill as milliseconds of sequential I/O:
    /// every spilled byte is written once and read back once during the
    /// merge pass. Added on top of Section 4.5's in-memory formula, this
    /// is the hybrid's predicted total cost.
    pub fn spill_ms(&self, units: &CostUnits, page_bytes: u64) -> f64 {
        let pages = self.predict().spill_bytes / page_bytes.max(1) as f64;
        2.0 * pages * units.sio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(budget: u64) -> HybridSizes {
        HybridSizes {
            budget_bytes: budget,
            divisor_table_bytes: 4 * 1024,
            table_bytes_per_group: 64.0,
            groups: 1000,
            tuples_per_group: 25.0,
            matched_tuples: 25_000,
            state_record_bytes: 16,
            delta_record_bytes: 16,
            fanout: 16,
            hot_fraction: 0.0,
        }
    }

    #[test]
    fn ample_budget_predicts_no_degradation() {
        // need = 64 KB; budget 256 KB leaves plenty after the divisor.
        let p = sizes(256 * 1024).predict();
        assert!(!p.degrades);
        assert_eq!(p.spill_bytes, 0.0);
        assert_eq!(p.partitions_spilled, 0);
        assert!(!p.expects_recursion);
    }

    #[test]
    fn boundary_is_exactly_where_the_table_stops_fitting() {
        let fits = sizes(4 * 1024 + 64_000).predict();
        assert!(!fits.degrades);
        let tight = sizes(4 * 1024 + 63_000).predict();
        assert!(tight.degrades);
        assert!(tight.spill_bytes > 0.0);
    }

    #[test]
    fn spill_volume_shrinks_monotonically_with_budget() {
        let mut last = f64::INFINITY;
        for budget in [8, 16, 24, 32, 48, 64] {
            let p = sizes(budget * 1024).predict();
            assert!(
                p.spill_bytes <= last,
                "budget={budget}K: {} > {last}",
                p.spill_bytes
            );
            last = p.spill_bytes;
        }
    }

    #[test]
    fn partitions_spill_in_proportion_to_the_deficit() {
        // Half the table over budget -> about half the partitions spill.
        let p = sizes(4 * 1024 + 32_000).predict();
        assert!(p.degrades);
        assert!(
            (7..=9).contains(&p.partitions_spilled),
            "{}",
            p.partitions_spilled
        );
        // A starving budget spills everything.
        let all = sizes(5 * 1024).predict();
        assert_eq!(all.partitions_spilled, 16);
    }

    #[test]
    fn hot_fraction_reduces_predicted_deltas() {
        let cold = sizes(16 * 1024).predict();
        let hot = HybridSizes {
            hot_fraction: 0.5,
            ..sizes(16 * 1024)
        }
        .predict();
        assert!(hot.spill_bytes < cold.spill_bytes);
        // States are unaffected; only the delta term shrinks.
        assert!(hot.spill_bytes > 0.0);
    }

    #[test]
    fn recursion_expected_only_when_a_partition_share_exceeds_headroom() {
        // avail = 1 KB, need/F = 4 KB -> recursion.
        let p = sizes(5 * 1024).predict();
        assert!(p.expects_recursion);
        // avail = 28 KB, need/F = 4 KB -> first-pass merges fit.
        let q = sizes(32 * 1024).predict();
        assert!(q.degrades);
        assert!(!q.expects_recursion);
    }

    #[test]
    fn spill_ms_prices_write_plus_readback() {
        let s = sizes(16 * 1024);
        let units = CostUnits::paper();
        let pages = s.predict().spill_bytes / 8192.0;
        assert!((s.spill_ms(&units, 8192) - 2.0 * pages * units.sio).abs() < 1e-9);
    }
}
