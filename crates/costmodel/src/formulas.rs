//! The cost formulas of Section 4, applied to the paper's assumed case
//! `R = Q × S` with duplicate-free inputs and `s + q < m < r`.

use crate::units::CostUnits;

/// Relation-size configuration for one analytical experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeConfig {
    /// Divisor cardinality `|S|`.
    pub divisor: u64,
    /// Quotient cardinality `|Q|`.
    pub quotient: u64,
    /// Divisor/quotient tuples per page (the paper: 10).
    pub sq_per_page: f64,
    /// Dividend tuples per page (the paper: 5, since dividend records are
    /// twice the size).
    pub r_per_page: f64,
    /// Main-memory size in pages (the paper: 100).
    pub memory_pages: f64,
    /// Average hash-bucket chain length (the paper: 2).
    pub hbs: f64,
    /// Explicit dividend cardinality; `None` means the assumed case
    /// `|R| = |Q| · |S|`.
    pub dividend_override: Option<u64>,
}

impl SizeConfig {
    /// The paper's Section 4.6 configuration for given `|S|` and `|Q|`.
    pub fn paper(divisor: u64, quotient: u64) -> Self {
        SizeConfig {
            divisor,
            quotient,
            sq_per_page: 10.0,
            r_per_page: 5.0,
            memory_pages: 100.0,
            hbs: 2.0,
            dividend_override: None,
        }
    }

    /// Dividend cardinality: the override if set, else the assumed case
    /// `|R| = |Q| · |S|`.
    pub fn dividend(&self) -> u64 {
        self.dividend_override
            .unwrap_or(self.divisor * self.quotient)
    }

    /// Dividend page cardinality `r` (fractional pages, per the paper's
    /// arithmetic — `|S| = 25` yields `s = 2.5`).
    pub fn r_pages(&self) -> f64 {
        self.dividend() as f64 / self.r_per_page
    }

    /// Divisor page cardinality `s`.
    pub fn s_pages(&self) -> f64 {
        self.divisor as f64 / self.sq_per_page
    }

    /// Quotient page cardinality `q`.
    pub fn q_pages(&self) -> f64 {
        self.quotient as f64 / self.sq_per_page
    }
}

/// The analytical cost model: Table 1 units applied to the Section 4
/// formulas for a [`SizeConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost units (Table 1).
    pub units: CostUnits,
    /// Relation sizes and environment.
    pub sizes: SizeConfig,
}

impl CostModel {
    /// Creates the model with the paper's units.
    pub fn paper(divisor: u64, quotient: u64) -> Self {
        CostModel {
            units: CostUnits::paper(),
            sizes: SizeConfig::paper(divisor, quotient),
        }
    }

    fn log2(x: f64) -> f64 {
        if x <= 1.0 {
            0.0
        } else {
            x.log2()
        }
    }

    /// Quicksort cost for a relation of `n` tuples that fits in memory
    /// (Section 4.1): `2·n·log2(n)·Comp`.
    pub fn quicksort_ms(&self, n: u64) -> f64 {
        2.0 * n as f64 * Self::log2(n as f64) * self.units.comp
    }

    /// Number of merge passes of the disk-based merge sort.
    ///
    /// The paper writes `log_m(r/m)` without a rounding rule. Its printed
    /// Table 2 corresponds to one pass for every configuration, including
    /// `|S| = |Q| = 400` where `⌈log_100 320⌉ = 2`; the printed values are
    /// reproduced by `max(1, round(log_m(r/m)))`, which we implement.
    pub fn merge_passes(&self, pages: f64) -> f64 {
        let m = self.sizes.memory_pages;
        let raw = (pages / m).log2() / m.log2();
        raw.round().max(1.0)
    }

    /// Disk merge-sort cost for a relation of `n` tuples on `pages` pages
    /// (Section 4.1):
    /// `log_m(r/m)·(r·(2·RIO + Move) + n·log2(m)·Comp) + 2·n·log2(n·m/r)·Comp`.
    pub fn disk_sort_ms(&self, n: u64, pages: f64) -> f64 {
        let u = &self.units;
        let m = self.sizes.memory_pages;
        let passes = self.merge_passes(pages);
        passes * (pages * (2.0 * u.rio + u.mv) + n as f64 * Self::log2(m) * u.comp)
            + 2.0 * n as f64 * Self::log2(n as f64 * m / pages) * u.comp
    }

    /// Sort cost: quicksort if the relation fits in memory, disk merge
    /// sort otherwise.
    pub fn sort_ms(&self, n: u64, pages: f64) -> f64 {
        if pages <= self.sizes.memory_pages {
            self.quicksort_ms(n)
        } else {
            self.disk_sort_ms(n, pages)
        }
    }

    /// Sorting the dividend.
    pub fn sort_dividend_ms(&self) -> f64 {
        self.sort_ms(self.sizes.dividend(), self.sizes.r_pages())
    }

    /// Sorting the divisor.
    pub fn sort_divisor_ms(&self) -> f64 {
        self.sort_ms(self.sizes.divisor, self.sizes.s_pages())
    }

    /// Naive division (Section 4.2), including the required sorts of both
    /// inputs: division step `(r+s)·SIO + |R|·Comp`.
    pub fn naive_division_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        self.sort_dividend_ms()
            + self.sort_divisor_ms()
            + (s.r_pages() + s.s_pages()) * u.sio
            + s.dividend() as f64 * u.comp
    }

    /// Division by sort-based aggregation without join (Section 4.3):
    /// sort both inputs, aggregate in the final merge (`|R|·Comp`), scalar
    /// aggregate (`s·SIO`).
    pub fn sort_aggregation_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        self.sort_dividend_ms()
            + self.sort_divisor_ms()
            + s.dividend() as f64 * u.comp
            + s.s_pages() * u.sio
    }

    /// Division by sort-based aggregation with a preceding merge join
    /// (Section 4.3).
    ///
    /// Reverse-engineered to match Table 2 exactly (all 9 rows, to the
    /// printed millisecond):
    /// `2·sort(R) + 2·sort(S) + (r+s)·SIO + |R|·|S|·Comp + 2·|R|·Comp +
    /// 2·s·SIO` — the dividend is sorted once on the join attributes and
    /// again on the grouping attributes; the divisor is sorted for the
    /// scalar aggregate's duplicate elimination and again for the merge
    /// join; the merge join costs `(r+s)·SIO + |R|·|S|·Comp`; aggregation
    /// and the final selection each compare `|R|` tuples; the divisor is
    /// scanned for the scalar aggregate and once more at selection time.
    pub fn sort_aggregation_with_join_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        2.0 * self.sort_dividend_ms()
            + 2.0 * self.sort_divisor_ms()
            + (s.r_pages() + s.s_pages()) * u.sio
            + (s.dividend() * s.divisor) as f64 * u.comp
            + 2.0 * s.dividend() as f64 * u.comp
            + 2.0 * s.s_pages() * u.sio
    }

    /// Division by hash-based aggregation without semi-join (Section 4.4):
    /// `r·SIO + |R|·(Hash + hbs·Comp) + s·SIO`.
    pub fn hash_aggregation_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        s.r_pages() * u.sio + s.dividend() as f64 * (u.hash + s.hbs * u.comp) + s.s_pages() * u.sio
    }

    /// Division by hash-based aggregation with a preceding hash semi-join
    /// (Section 4.4): semi-join `(s+r)·SIO + |S|·Hash + |R|·(Hash +
    /// hbs·Comp)` plus the aggregation cost.
    pub fn hash_aggregation_with_join_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        let semi_join = (s.s_pages() + s.r_pages()) * u.sio
            + s.divisor as f64 * u.hash
            + s.dividend() as f64 * (u.hash + s.hbs * u.comp);
        semi_join + self.hash_aggregation_ms()
    }

    /// Hash-division (Section 4.5):
    /// `(r+s)·SIO + |S|·Hash + |R|·(2·(Hash + hbs·Comp) + Bit)`.
    pub fn hash_division_ms(&self) -> f64 {
        let u = &self.units;
        let s = &self.sizes;
        (s.r_pages() + s.s_pages()) * u.sio
            + s.divisor as f64 * u.hash
            + s.dividend() as f64 * (2.0 * (u.hash + s.hbs * u.comp) + u.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(s: u64, q: u64) -> CostModel {
        CostModel::paper(s, q)
    }

    #[test]
    fn page_cardinalities_follow_the_paper() {
        let m = model(25, 25);
        assert_eq!(m.sizes.dividend(), 625);
        assert!((m.sizes.r_pages() - 125.0).abs() < 1e-12);
        assert!((m.sizes.s_pages() - 2.5).abs() < 1e-12);
        assert!((m.sizes.q_pages() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quicksort_of_divisor_costs_seven_ms() {
        // 2 · 25 · log2(25) · 0.03 ≈ 6.97 ms.
        let m = model(25, 25);
        assert!((m.quicksort_ms(25) - 6.9658).abs() < 1e-3);
    }

    #[test]
    fn merge_passes_are_one_for_every_table2_config() {
        for &(s, q) in &[(25, 25), (25, 400), (100, 400), (400, 100), (400, 400)] {
            let m = model(s, q);
            assert_eq!(m.merge_passes(m.sizes.r_pages()), 1.0, "|S|={s} |Q|={q}");
        }
    }

    #[test]
    fn sort_edge_cases() {
        let m = model(25, 25);
        assert_eq!(m.quicksort_ms(0), 0.0);
        assert_eq!(m.quicksort_ms(1), 0.0);
        // A relation of exactly m pages uses quicksort.
        assert_eq!(m.sort_ms(500, 100.0), m.quicksort_ms(500));
    }

    // The following tests pin the six columns of Table 2 for the corner
    // configurations; table2.rs cross-checks every cell.

    #[test]
    fn naive_smallest_is_9949() {
        assert_eq!(model(25, 25).naive_division_ms().round() as i64, 9949);
    }

    #[test]
    fn naive_largest_is_2536369() {
        assert_eq!(model(400, 400).naive_division_ms().round() as i64, 2536369);
    }

    #[test]
    fn sort_agg_smallest_is_8074() {
        assert_eq!(model(25, 25).sort_aggregation_ms().round() as i64, 8074);
    }

    #[test]
    fn sort_agg_with_join_smallest_is_18529() {
        assert_eq!(
            model(25, 25).sort_aggregation_with_join_ms().round() as i64,
            18529
        );
    }

    #[test]
    fn sort_agg_with_join_largest_is_6513339() {
        assert_eq!(
            model(400, 400).sort_aggregation_with_join_ms().round() as i64,
            6513339
        );
    }

    #[test]
    fn hash_agg_smallest_is_1969() {
        assert_eq!(model(25, 25).hash_aggregation_ms().round() as i64, 1969);
    }

    #[test]
    fn hash_agg_with_join_smallest_is_3938() {
        assert_eq!(
            model(25, 25).hash_aggregation_with_join_ms().round() as i64,
            3938
        );
    }

    #[test]
    fn hash_division_smallest_is_2028() {
        assert_eq!(model(25, 25).hash_division_ms().round() as i64, 2028);
    }

    #[test]
    fn hash_division_largest_is_509892() {
        assert_eq!(model(400, 400).hash_division_ms().round() as i64, 509892);
    }

    #[test]
    fn hash_division_beats_everything_but_plain_hash_aggregation() {
        // The paper's summary: hash-division is ~10% slower than hash
        // aggregation without join, faster than everything else.
        for &(s, q) in &[(25, 25), (100, 100), (400, 400), (25, 400), (400, 25)] {
            let m = model(s, q);
            let hd = m.hash_division_ms();
            assert!(hd < m.naive_division_ms());
            assert!(hd < m.sort_aggregation_ms());
            assert!(hd < m.sort_aggregation_with_join_ms());
            assert!(hd < m.hash_aggregation_with_join_ms());
            let ha = m.hash_aggregation_ms();
            assert!(hd > ha);
            assert!(hd / ha < 1.10, "|S|={s} |Q|={q}: {}", hd / ha);
        }
    }
}
