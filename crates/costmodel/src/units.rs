//! The cost units of the paper's Table 1.

/// Cost units in milliseconds (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostUnits {
    /// Random I/O, one page from or to disk.
    pub rio: f64,
    /// Sequential I/O, one page from or to disk.
    pub sio: f64,
    /// Comparison of two tuples.
    pub comp: f64,
    /// Calculation of a hash value from a tuple.
    pub hash: f64,
    /// Memory-to-memory copy of one page.
    pub mv: f64,
    /// Setting a bit in a bit map, and clearing and scanning a bit.
    pub bit: f64,
}

impl CostUnits {
    /// The exact values of the paper's Table 1.
    pub fn paper() -> Self {
        CostUnits {
            rio: 30.0,
            sio: 15.0,
            comp: 0.03,
            hash: 0.03,
            mv: 0.4,
            bit: 0.003,
        }
    }
}

impl Default for CostUnits {
    fn default() -> Self {
        CostUnits::paper()
    }
}

/// Prices an operation-count snapshot (from `reldiv_rel::counters`) as CPU
/// milliseconds, for the deterministic "modeled CPU" reproduction mode.
///
/// Only the four CPU units apply; I/O is priced separately from disk
/// statistics.
pub fn price_ops(units: &CostUnits, comparisons: u64, hashes: u64, moves: u64, bitops: u64) -> f64 {
    comparisons as f64 * units.comp
        + hashes as f64 * units.hash
        + moves as f64 * units.mv
        + bitops as f64 * units.bit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let u = CostUnits::paper();
        assert_eq!(u.rio, 30.0);
        assert_eq!(u.sio, 15.0);
        assert_eq!(u.comp, 0.03);
        assert_eq!(u.hash, 0.03);
        assert_eq!(u.mv, 0.4);
        assert_eq!(u.bit, 0.003);
    }

    #[test]
    fn price_ops_is_a_weighted_sum() {
        let u = CostUnits::paper();
        // 100 comps + 100 hashes + 10 moves + 1000 bitops
        // = 3 + 3 + 4 + 3 = 13 ms.
        assert!((price_ops(&u, 100, 100, 10, 1000) - 13.0).abs() < 1e-9);
    }
}
