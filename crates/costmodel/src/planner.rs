//! A cost-based algorithm chooser.
//!
//! Section 5.2: "If the dividend or the divisor are results of other
//! database operations, e.g., selection or projection, the possible error
//! in the selectivity estimate makes it imperative to choose the division
//! algorithm very carefully." This module makes that choice the way a
//! query optimizer would: enumerate the algorithms that are *correct* for
//! the input's properties, price each with the Section 4 formulas, and
//! pick the cheapest.
//!
//! The correctness constraints encode the paper's observations:
//!
//! * when the dividend may contain tuples whose divisor attributes are
//!   not in the divisor (a *restricted* divisor, as in the second
//!   example), the aggregation plans need their (semi-)join;
//! * when the inputs may contain duplicates, hash aggregation is ruled
//!   out (its duplicate elimination "may be impractical for a very large
//!   dividend relation") — the sort-based plans eliminate duplicates for
//!   free during sorting, and hash-division is insensitive by design.

use crate::formulas::{CostModel, SizeConfig};
use crate::units::CostUnits;

/// The algorithm a plan should use (mirrors `reldiv_core::Algorithm`
/// without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedAlgorithm {
    /// Naive sorted-merge division.
    Naive,
    /// Sort-based aggregation; `join` = preceding merge semi-join.
    SortAggregation {
        /// Whether a semi-join precedes the aggregation.
        join: bool,
    },
    /// Hash-based aggregation; `join` = preceding hash semi-join.
    HashAggregation {
        /// Whether a semi-join precedes the aggregation.
        join: bool,
    },
    /// Hash-division.
    HashDivision,
}

/// Statistics and properties the chooser needs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerInput {
    /// Estimated divisor cardinality `|S|`.
    pub divisor_size: u64,
    /// Estimated quotient cardinality `|Q|` (candidates, before the
    /// for-all test).
    pub quotient_size: u64,
    /// Estimated dividend cardinality `|R|`; `None` assumes `|Q| · |S|`.
    pub dividend_size: Option<u64>,
    /// Whether the dividend may contain tuples whose divisor attributes
    /// do not appear in the divisor (e.g. the divisor was restricted by a
    /// selection). Forces the aggregation plans to join.
    pub restricted_divisor: bool,
    /// Whether the inputs are known duplicate-free (projections on keys).
    pub duplicate_free: bool,
}

impl PlannerInput {
    fn model(&self) -> CostModel {
        let mut sizes = SizeConfig::paper(self.divisor_size, self.quotient_size);
        sizes.dividend_override = self.dividend_size;
        CostModel {
            units: CostUnits::paper(),
            sizes,
        }
    }
}

/// Enumerates the *correct* algorithms for the input with their estimated
/// costs in model milliseconds, cheapest first.
pub fn candidates(input: &PlannerInput) -> Vec<(PlannedAlgorithm, f64)> {
    let m = input.model();
    let mut out: Vec<(PlannedAlgorithm, f64)> = Vec::new();
    out.push((PlannedAlgorithm::Naive, m.naive_division_ms()));
    out.push((PlannedAlgorithm::HashDivision, m.hash_division_ms()));
    if input.restricted_divisor {
        out.push((
            PlannedAlgorithm::SortAggregation { join: true },
            m.sort_aggregation_with_join_ms(),
        ));
        if input.duplicate_free {
            out.push((
                PlannedAlgorithm::HashAggregation { join: true },
                m.hash_aggregation_with_join_ms(),
            ));
        }
    } else {
        out.push((
            PlannedAlgorithm::SortAggregation { join: false },
            m.sort_aggregation_ms(),
        ));
        if input.duplicate_free {
            out.push((
                PlannedAlgorithm::HashAggregation { join: false },
                m.hash_aggregation_ms(),
            ));
        }
    }
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

/// Picks the cheapest correct algorithm.
pub fn recommend(input: &PlannerInput) -> PlannedAlgorithm {
    candidates(input)[0].0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(restricted: bool, unique: bool) -> PlannerInput {
        PlannerInput {
            divisor_size: 100,
            quotient_size: 100,
            dividend_size: None,
            restricted_divisor: restricted,
            duplicate_free: unique,
        }
    }

    #[test]
    fn unrestricted_unique_inputs_pick_hash_aggregation() {
        // The paper: hash aggregation without join is the fastest, ~10 %
        // ahead of hash-division — but only applicable here.
        assert_eq!(
            recommend(&input(false, true)),
            PlannedAlgorithm::HashAggregation { join: false }
        );
    }

    #[test]
    fn restricted_divisors_pick_hash_division() {
        // With a required semi-join, the aggregation plans fall behind:
        // "hash-division outperforms division by hash-based aggregation".
        assert_eq!(
            recommend(&input(true, true)),
            PlannedAlgorithm::HashDivision
        );
    }

    #[test]
    fn duplicates_rule_out_hash_aggregation() {
        let algs: Vec<PlannedAlgorithm> = candidates(&input(false, false))
            .into_iter()
            .map(|(a, _)| a)
            .collect();
        assert!(!algs
            .iter()
            .any(|a| matches!(a, PlannedAlgorithm::HashAggregation { .. })));
        // Hash-division remains the choice: "both fast and general".
        assert_eq!(
            recommend(&input(false, false)),
            PlannedAlgorithm::HashDivision
        );
        assert_eq!(
            recommend(&input(true, false)),
            PlannedAlgorithm::HashDivision
        );
    }

    #[test]
    fn candidates_are_sorted_cheapest_first() {
        let c = candidates(&input(true, true));
        for w in c.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(c.len() >= 3);
    }

    #[test]
    fn sort_based_never_wins_at_table2_sizes() {
        for (s, q) in crate::table2::table2_configs() {
            let rec = recommend(&PlannerInput {
                divisor_size: s,
                quotient_size: q,
                dividend_size: None,
                restricted_divisor: false,
                duplicate_free: true,
            });
            assert!(
                matches!(
                    rec,
                    PlannedAlgorithm::HashAggregation { .. } | PlannedAlgorithm::HashDivision
                ),
                "|S|={s} |Q|={q}: {rec:?}"
            );
        }
    }

    #[test]
    fn dividend_override_flows_into_costs() {
        let small = PlannerInput {
            dividend_size: Some(1_000),
            ..input(false, true)
        };
        let big = PlannerInput {
            dividend_size: Some(1_000_000),
            ..input(false, true)
        };
        let cost_of = |i: &PlannerInput| {
            candidates(i)
                .into_iter()
                .find(|(a, _)| *a == PlannedAlgorithm::HashDivision)
                .expect("hash-division is always a candidate")
                .1
        };
        assert!(cost_of(&big) > 100.0 * cost_of(&small));
    }
}
