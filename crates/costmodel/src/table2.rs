//! Regeneration of the paper's Table 2, "Analytical Cost of Division".

use crate::formulas::CostModel;

/// One row of Table 2: the six algorithm costs (in milliseconds, rounded
/// to the printed integers) for a `(|S|, |Q|)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Divisor cardinality `|S|`.
    pub divisor: u64,
    /// Quotient cardinality `|Q|`.
    pub quotient: u64,
    /// Naive division.
    pub naive: i64,
    /// Sort-based aggregation, no join.
    pub sort_agg: i64,
    /// Sort-based aggregation with preceding merge join.
    pub sort_agg_join: i64,
    /// Hash-based aggregation, no join.
    pub hash_agg: i64,
    /// Hash-based aggregation with preceding hash semi-join.
    pub hash_agg_join: i64,
    /// Hash-division.
    pub hash_div: i64,
}

/// The nine `(|S|, |Q|)` configurations of Section 4.6.
pub fn table2_configs() -> Vec<(u64, u64)> {
    let sizes = [25u64, 100, 400];
    let mut out = Vec::with_capacity(9);
    for &s in &sizes {
        for &q in &sizes {
            out.push((s, q));
        }
    }
    out
}

/// Computes one Table 2 row from the analytical model.
pub fn table2_row(divisor: u64, quotient: u64) -> Table2Row {
    let m = CostModel::paper(divisor, quotient);
    Table2Row {
        divisor,
        quotient,
        naive: m.naive_division_ms().round() as i64,
        sort_agg: m.sort_aggregation_ms().round() as i64,
        sort_agg_join: m.sort_aggregation_with_join_ms().round() as i64,
        hash_agg: m.hash_aggregation_ms().round() as i64,
        hash_agg_join: m.hash_aggregation_with_join_ms().round() as i64,
        hash_div: m.hash_division_ms().round() as i64,
    }
}

/// The paper's printed Table 2, for verification.
pub fn paper_table2() -> Vec<Table2Row> {
    let rows: [(u64, u64, [i64; 6]); 9] = [
        (25, 25, [9949, 8074, 18529, 1969, 3938, 2028]),
        (25, 100, [39663, 32163, 73738, 7763, 15526, 7996]),
        (25, 400, [158517, 128517, 294572, 30938, 61876, 31868]),
        (100, 25, [39808, 32308, 79766, 7875, 15753, 8111]),
        (100, 100, [158662, 128662, 317475, 31050, 62103, 31983]),
        (100, 400, [634080, 514080, 1268311, 123750, 247503, 127473]),
        (400, 25, [159280, 129280, 409160, 31500, 63012, 32442]),
        (400, 100, [634698, 514698, 1629996, 124200, 248412, 127932]),
        (
            400,
            400,
            [2536369, 2056369, 6513339, 495000, 990012, 509892],
        ),
    ];
    rows.iter()
        .map(|&(s, q, c)| Table2Row {
            divisor: s,
            quotient: q,
            naive: c[0],
            sort_agg: c[1],
            sort_agg_join: c[2],
            hash_agg: c[3],
            hash_agg_join: c[4],
            hash_div: c[5],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline analytical reproduction: every cell of Table 2 is
    /// regenerated exactly, to the printed millisecond.
    #[test]
    fn regenerated_table2_matches_the_paper_exactly() {
        for expected in paper_table2() {
            let got = table2_row(expected.divisor, expected.quotient);
            assert_eq!(
                got, expected,
                "|S|={} |Q|={}",
                expected.divisor, expected.quotient
            );
        }
    }

    #[test]
    fn configs_enumerate_nine_combinations() {
        let c = table2_configs();
        assert_eq!(c.len(), 9);
        assert_eq!(c[0], (25, 25));
        assert_eq!(c[8], (400, 400));
    }

    #[test]
    fn ranking_holds_in_every_row() {
        // Section 4.6's observations: sort-based ≫ hash-based; a required
        // semi-join makes aggregation strictly worse; hash-division sits
        // between plain and with-join hash aggregation.
        for (s, q) in table2_configs() {
            let r = table2_row(s, q);
            assert!(r.sort_agg <= r.naive);
            assert!(r.sort_agg_join > r.sort_agg);
            assert!(r.hash_agg < r.sort_agg);
            assert!(r.hash_agg_join > r.hash_agg);
            assert!(r.hash_div > r.hash_agg && r.hash_div < r.hash_agg_join);
        }
    }
}
