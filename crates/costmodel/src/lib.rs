//! # reldiv-costmodel — the paper's analytical cost model (Section 4)
//!
//! Implements the cost formulas of Graefe's *"Relational Division: Four
//! Algorithms and Their Performance"* exactly as stated, and regenerates
//! Table 2 ("Analytical Cost of Division").
//!
//! The model prices six abstract operations (Table 1):
//!
//! | unit | ms    | description |
//! |------|-------|-------------|
//! | RIO  | 30    | random I/O, one page |
//! | SIO  | 15    | sequential I/O, one page |
//! | Comp | 0.03  | comparison of two tuples |
//! | Hash | 0.03  | hash-value calculation from a tuple |
//! | Move | 0.4   | memory-to-memory copy of one page |
//! | Bit  | 0.003 | setting/clearing/scanning a bit in a bit map |
//!
//! Costs are computed for the paper's "easy case" `R = Q × S` (every
//! dividend tuple participates in the quotient) with duplicate-free inputs,
//! under the standing assumption `s + q < m < r`.
//!
//! Verified reproductions: **every Table 2 cell matches the paper to the
//! printed millisecond** (54/54). Two details were reverse-engineered from
//! the printed numbers because the prose is underspecified — the exact
//! term structure of the "Sort-Aggregation with join" column and the
//! rounding of the merge-pass count; both are documented at the formulas
//! and in `EXPERIMENTS.md`.
//!
//! [`planner`] adds the cost-based algorithm chooser the paper's Section
//! 5.2 calls for.

#![deny(missing_docs)]

pub mod formulas;
pub mod hybrid;
pub mod planner;
pub mod predicted;
pub mod table2;
pub mod units;

pub use formulas::{CostModel, SizeConfig};
pub use hybrid::{HybridPrediction, HybridSizes};
pub use planner::{recommend, PlannedAlgorithm, PlannerInput};
pub use predicted::{compare, UnitComparison, UnitCounts};
pub use table2::{table2_configs, table2_row, Table2Row};
pub use units::CostUnits;
