//! Regression tests for the drain-loop bug sweep.
//!
//! Two bug classes, both invisible to happy-path tests:
//!
//! 1. Inner drain loops that never polled their [`CancelToken`]: a filter
//!    whose predicate rejects every tuple of a large input returns to its
//!    caller only at exhaustion, so a deadline set before the query never
//!    fires. Every operator with such a loop now checkpoints per stride
//!    (tuple path) or per batch (batch path).
//!
//! 2. `collect` returned early without `close()` when a push or `next`
//!    failed mid-drain, leaking whatever the operator holds — pinned
//!    buffer pages, run files, pool reservations.

use std::time::{Duration, Instant};

use reldiv_exec::agg::{HashCountAggregate, HashDistinct, ScalarCount};
use reldiv_exec::batch::filter::{BatchFilter, BatchPredicate};
use reldiv_exec::batch::scan::BatchMemScan;
use reldiv_exec::batch::BoxedBatchOp;
use reldiv_exec::filter::{int_equals, Filter};
use reldiv_exec::hash_join::HashJoin;
use reldiv_exec::merge_join::JoinMode;
use reldiv_exec::scan::MemScan;
use reldiv_exec::sort::{Sort, SortConfig, SortMode};
use reldiv_exec::{collect, collect_batches, BoxedOp, CancelToken, ExecError, Operator};
use reldiv_rel::schema::Field;
use reldiv_rel::tuple::ints;
use reldiv_rel::{Relation, Schema, Tuple};
use reldiv_storage::manager::{StorageConfig, StorageManager};
use reldiv_storage::MemoryPool;

/// Well past the checkpoint stride (1024), so a strided checkpoint is
/// guaranteed to reach the clock several times.
const ROWS: i64 = 5000;

fn big_rel() -> Relation {
    let schema = Schema::new(vec![Field::int("x")]);
    Relation::from_tuples(schema, (0..ROWS).map(|i| ints(&[i])).collect()).unwrap()
}

fn expired() -> CancelToken {
    CancelToken::at(Instant::now() - Duration::from_millis(1))
}

#[test]
fn always_false_filter_cancels_on_the_tuple_path() {
    // The original bug: Filter::next's rejection loop drained the whole
    // scan without ever consulting the token.
    let filter: BoxedOp = Box::new(
        Filter::new(Box::new(MemScan::new(big_rel())), int_equals(0, -1)).with_cancel(expired()),
    );
    let err = collect(filter).unwrap_err();
    assert!(err.is_cancelled(), "expected Cancelled, got {err:?}");
}

#[test]
fn always_false_filter_cancels_on_the_batch_path() {
    // On the batch path the fix is structural: an all-rejected batch
    // flows through as an empty batch, and collect_batches polls the
    // token once per batch.
    let filter: BoxedBatchOp = Box::new(BatchFilter::new(
        Box::new(BatchMemScan::new(big_rel())),
        BatchPredicate::int_equals(0, -1),
    ));
    let err = collect_batches(filter, expired()).unwrap_err();
    assert!(err.is_cancelled(), "expected Cancelled, got {err:?}");
}

#[test]
fn aggregate_build_phases_cancel() {
    let distinct: BoxedOp = Box::new(
        HashDistinct::new(Box::new(MemScan::new(big_rel())), MemoryPool::unbounded())
            .with_cancel(expired()),
    );
    assert!(collect(distinct).unwrap_err().is_cancelled());

    let agg: BoxedOp = Box::new(
        HashCountAggregate::new(
            Box::new(MemScan::new(big_rel())),
            vec![0],
            MemoryPool::unbounded(),
        )
        .unwrap()
        .with_cancel(expired()),
    );
    assert!(collect(agg).unwrap_err().is_cancelled());

    let count: BoxedOp =
        Box::new(ScalarCount::new(Box::new(MemScan::new(big_rel())), false).with_cancel(expired()));
    assert!(collect(count).unwrap_err().is_cancelled());
}

#[test]
fn join_build_loop_cancels() {
    let join: BoxedOp = Box::new(
        HashJoin::new(
            Box::new(MemScan::new(big_rel())),
            Box::new(MemScan::new(big_rel())),
            vec![0],
            vec![0],
            JoinMode::LeftSemi,
        )
        .unwrap()
        .with_cancel(expired())
        .with_pool(MemoryPool::unbounded()),
    );
    assert!(collect(join).unwrap_err().is_cancelled());
}

#[test]
fn sort_run_generation_cancels() {
    let storage = StorageManager::shared(StorageConfig::paper());
    let sort: BoxedOp = Box::new(
        Sort::new(
            storage,
            Box::new(MemScan::new(big_rel())),
            vec![0],
            SortMode::Plain,
            SortConfig::default(),
        )
        .unwrap()
        .with_cancel(expired()),
    );
    assert!(collect(sort).unwrap_err().is_cancelled());
}

/// An operator that fixes a buffer page in `open`, fails mid-drain, and
/// releases the page only in `close` — the shape of every scan in the
/// engine. If `collect` skips `close` on the error path, the pin leaks.
struct PinningFaulty {
    schema: Schema,
    storage: reldiv_storage::StorageRef,
    frame: Option<reldiv_storage::buffer::FrameId>,
    emitted: usize,
}

impl Operator for PinningFaulty {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> reldiv_exec::Result<()> {
        let mut sm = self.storage.borrow_mut();
        let (_pid, frame) = sm.new_page(StorageManager::DATA_DISK)?;
        self.frame = Some(frame);
        Ok(())
    }

    fn next(&mut self) -> reldiv_exec::Result<Option<Tuple>> {
        if self.emitted >= 3 {
            return Err(ExecError::Protocol("injected mid-drain fault"));
        }
        self.emitted += 1;
        Ok(Some(ints(&[self.emitted as i64])))
    }

    fn close(&mut self) -> reldiv_exec::Result<()> {
        if let Some(frame) = self.frame.take() {
            self.storage
                .borrow_mut()
                .unfix(frame, reldiv_storage::buffer::Reuse::Immediate)?;
        }
        Ok(())
    }
}

#[test]
fn collect_closes_on_mid_drain_error_and_unpins_pages() {
    let storage = StorageManager::shared(StorageConfig::paper());
    let op: BoxedOp = Box::new(PinningFaulty {
        schema: Schema::new(vec![Field::int("x")]),
        storage: storage.clone(),
        frame: None,
        emitted: 0,
    });
    let err = collect(op).unwrap_err();
    assert!(matches!(err, ExecError::Protocol(_)));
    assert_eq!(
        storage.borrow().pinned_frames(),
        0,
        "close must run on the error exit and unfix everything"
    );
}
