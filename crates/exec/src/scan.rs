//! Scan operators: file scans over record files, and in-memory scans.

use reldiv_rel::{RecordCodec, Relation, Schema, Tuple};
use reldiv_storage::file::ScanCursor;
use reldiv_storage::{FileId, StorageRef};

use crate::op::{OpState, Operator};
use crate::Result;

/// Sequentially scans a record file, decoding records into tuples.
pub struct FileScan {
    storage: StorageRef,
    file: FileId,
    codec: RecordCodec,
    cursor: Option<ScanCursor>,
    state: OpState,
}

impl FileScan {
    /// Creates a scan of `file`, decoding with `schema`.
    pub fn new(storage: StorageRef, file: FileId, schema: Schema) -> Self {
        FileScan {
            storage,
            file,
            codec: RecordCodec::new(schema),
            cursor: None,
            state: OpState::Created,
        }
    }
}

impl Operator for FileScan {
    fn schema(&self) -> &Schema {
        self.codec.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.cursor = Some(ScanCursor::new(self.file));
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        let cursor = self.cursor.as_mut().expect("open sets cursor");
        let mut sm = self.storage.borrow_mut();
        match cursor.next(&mut sm)? {
            Some((_rid, record)) => Ok(Some(self.codec.decode(&record)?)),
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.cursor = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

/// Scans an in-memory relation. Used by tests, by the in-memory division
/// API, and as the rescan source for materialized intermediates.
pub struct MemScan {
    schema: Schema,
    tuples: std::rc::Rc<Vec<Tuple>>,
    pos: usize,
    state: OpState,
}

impl MemScan {
    /// Creates a scan over a relation.
    pub fn new(relation: Relation) -> Self {
        let schema = relation.schema().clone();
        MemScan {
            schema,
            tuples: std::rc::Rc::new(relation.into_tuples()),
            pos: 0,
            state: OpState::Created,
        }
    }

    /// Creates a scan sharing tuples with other scans (cheap re-scan).
    pub fn shared(schema: Schema, tuples: std::rc::Rc<Vec<Tuple>>) -> Self {
        MemScan {
            schema,
            tuples,
            pos: 0,
            state: OpState::Created,
        }
    }
}

impl Operator for MemScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        if self.pos < self.tuples.len() {
            let t = self.tuples[self.pos].clone();
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) -> Result<()> {
        self.state = OpState::Closed;
        Ok(())
    }
}

/// Loads a relation into a new record file on the data disk, returning the
/// file id. The workload loaders and materializing operators use this.
pub fn load_relation(storage: &StorageRef, relation: &Relation) -> Result<FileId> {
    let codec = RecordCodec::new(relation.schema().clone());
    let mut sm = storage.borrow_mut();
    let file = sm.create_file(reldiv_storage::StorageManager::DATA_DISK);
    let mut buf = Vec::with_capacity(codec.record_width());
    for t in relation.tuples() {
        buf.clear();
        codec.encode_into(t, &mut buf)?;
        sm.append(file, &buf)?;
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::ExecError;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn two_col(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    #[test]
    fn file_scan_roundtrips_relation() {
        let storage = StorageManager::shared(StorageConfig::large());
        let rel = two_col(&[[1, 2], [3, 4], [5, 6]]);
        let file = load_relation(&storage, &rel).unwrap();
        let scan = FileScan::new(storage, file, rel.schema().clone());
        let got = collect(Box::new(scan)).unwrap();
        assert_eq!(got, rel);
    }

    #[test]
    fn file_scan_large_relation_spans_pages() {
        let storage = StorageManager::shared(StorageConfig::paper());
        let rows: Vec<[i64; 2]> = (0..5000).map(|i| [i, i * 2]).collect();
        let rel = two_col(&rows);
        let file = load_relation(&storage, &rel).unwrap();
        {
            let mut sm = storage.borrow_mut();
            assert!(sm.page_count(file).unwrap() > 1);
            sm.flush_all().unwrap();
        }
        let scan = FileScan::new(storage, file, rel.schema().clone());
        let got = collect(Box::new(scan)).unwrap();
        assert_eq!(got.cardinality(), 5000);
        assert_eq!(got, rel);
    }

    #[test]
    fn mem_scan_produces_all_tuples() {
        let rel = two_col(&[[9, 8], [7, 6]]);
        let got = collect(Box::new(MemScan::new(rel.clone()))).unwrap();
        assert_eq!(got, rel);
    }

    #[test]
    fn mem_scan_can_be_reopened() {
        let rel = two_col(&[[1, 1]]);
        let mut scan = MemScan::new(rel);
        scan.open().unwrap();
        assert!(scan.next().unwrap().is_some());
        assert!(scan.next().unwrap().is_none());
        scan.open().unwrap(); // rescan from the top
        assert!(scan.next().unwrap().is_some());
        scan.close().unwrap();
    }

    #[test]
    fn next_before_open_is_a_protocol_error() {
        let rel = two_col(&[[1, 1]]);
        let mut scan = MemScan::new(rel);
        assert!(matches!(scan.next(), Err(ExecError::Protocol(_))));
        scan.open().unwrap();
        scan.close().unwrap();
        assert!(matches!(scan.next(), Err(ExecError::Protocol(_))));
    }

    #[test]
    fn shared_mem_scans_do_not_clone_tuples() {
        let rel = two_col(&[[1, 2], [3, 4]]);
        let tuples = std::rc::Rc::new(rel.tuples().to_vec());
        let a = MemScan::shared(rel.schema().clone(), tuples.clone());
        let b = MemScan::shared(rel.schema().clone(), tuples.clone());
        assert_eq!(collect(Box::new(a)).unwrap().cardinality(), 2);
        assert_eq!(collect(Box::new(b)).unwrap().cardinality(), 2);
    }
}
