//! Batch scans over in-memory relations.
//!
//! File-backed scans are bridged into batch plans with
//! [`super::TupleToBatch`] so they keep their real page-I/O profile; the
//! in-memory scan below is batch-native and avoids the per-tuple clone of
//! [`crate::scan::MemScan`].

use std::rc::Rc;

use reldiv_rel::{Batch, Relation, Schema, Tuple};

use super::{BatchOperator, DEFAULT_BATCH_SIZE};
use crate::op::OpState;
use crate::Result;

/// Scans an in-memory relation in batches. The batch analogue of
/// [`crate::scan::MemScan`], sharing tuples cheaply between re-scans.
pub struct BatchMemScan {
    schema: Schema,
    tuples: Rc<Vec<Tuple>>,
    pos: usize,
    batch_size: usize,
    state: OpState,
}

impl BatchMemScan {
    /// Creates a scan over a relation.
    pub fn new(relation: Relation) -> BatchMemScan {
        let schema = relation.schema().clone();
        BatchMemScan::shared(schema, Rc::new(relation.into_tuples()))
    }

    /// Creates a scan sharing tuples with other scans (cheap re-scan).
    pub fn shared(schema: Schema, tuples: Rc<Vec<Tuple>>) -> BatchMemScan {
        BatchMemScan {
            schema,
            tuples,
            pos: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            state: OpState::Created,
        }
    }

    /// Overrides the batch size (tests).
    pub fn with_batch_size(mut self, batch_size: usize) -> BatchMemScan {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl BatchOperator for BatchMemScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.state = OpState::Open;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.state.require_open()?;
        if self.pos >= self.tuples.len() {
            return Ok(None);
        }
        let end = (self.pos + self.batch_size).min(self.tuples.len());
        let mut batch = Batch::with_capacity(self.schema.clone(), end - self.pos);
        for t in &self.tuples[self.pos..end] {
            batch.push_tuple(t);
        }
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) -> Result<()> {
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        Relation::from_tuples(schema, (0..n).map(|i| ints(&[i, i * 2])).collect()).unwrap()
    }

    #[test]
    fn scan_produces_all_rows_across_batches() {
        let out = collect_batches(
            Box::new(BatchMemScan::new(rel(3000)).with_batch_size(256)),
            CancelToken::none(),
        )
        .unwrap();
        assert_eq!(out, rel(3000));
    }

    #[test]
    fn scan_can_be_reopened() {
        let mut scan = BatchMemScan::new(rel(3)).with_batch_size(2);
        scan.open().unwrap();
        assert_eq!(scan.next_batch().unwrap().unwrap().len(), 2);
        assert_eq!(scan.next_batch().unwrap().unwrap().len(), 1);
        assert!(scan.next_batch().unwrap().is_none());
        scan.open().unwrap();
        assert_eq!(scan.next_batch().unwrap().unwrap().len(), 2);
        scan.close().unwrap();
    }

    #[test]
    fn next_before_open_is_a_protocol_error() {
        let mut scan = BatchMemScan::new(rel(1));
        assert!(matches!(
            scan.next_batch(),
            Err(crate::ExecError::Protocol(_))
        ));
    }
}
