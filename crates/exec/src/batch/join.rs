//! Vectorized hash join (inner).
//!
//! Build and probe both run through the packed-key kernels: one
//! [`Batch::hash_rows`] call per batch replaces a `hash_on` per tuple,
//! and chain candidates are compared column-against-tuple without
//! materializing the probe row. The build table and emission order are
//! identical to [`crate::hash_join::HashJoin`] in `Inner` mode (matches
//! leave each probe row in chain-walk order), so a batch join is
//! byte-identical to the tuple join, not merely bag-equal.

use reldiv_rel::{Batch, Schema, Tuple};
use reldiv_storage::MemoryPool;

use super::{BatchOperator, BoxedBatchOp};
use crate::hash_table::ChainedTable;
use crate::op::OpState;
use crate::{ExecError, Result};

/// Batch inner hash join: builds on `inner`, probes with `outer` batches.
pub struct BatchHashJoin {
    outer: BoxedBatchOp,
    inner: BoxedBatchOp,
    outer_keys: Vec<usize>,
    inner_keys: Vec<usize>,
    pool: MemoryPool,
    schema: Schema,
    state: OpState,
    table: Option<ChainedTable<Tuple>>,
}

impl BatchHashJoin {
    /// Creates an inner hash join. `inner` is the build side and should
    /// be the smaller input.
    pub fn new(
        outer: BoxedBatchOp,
        inner: BoxedBatchOp,
        outer_keys: Vec<usize>,
        inner_keys: Vec<usize>,
        pool: MemoryPool,
    ) -> Result<Self> {
        if outer_keys.len() != inner_keys.len() {
            return Err(ExecError::Plan(
                "hash join: key lists differ in length".into(),
            ));
        }
        if outer_keys.iter().any(|&k| k >= outer.schema().arity())
            || inner_keys.iter().any(|&k| k >= inner.schema().arity())
        {
            return Err(ExecError::Plan("hash join: key out of range".into()));
        }
        let mut fields = outer.schema().fields().to_vec();
        fields.extend(inner.schema().fields().iter().cloned());
        Ok(BatchHashJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            pool,
            schema: Schema::new(fields),
            state: OpState::Created,
            table: None,
        })
    }
}

impl BatchOperator for BatchHashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.inner.open()?;
        let mut table = ChainedTable::new(&self.pool, 16)?;
        while let Some(batch) = self.inner.next_batch()? {
            let hashes = batch.hash_rows(&self.inner_keys);
            for (row, &h) in hashes.iter().enumerate() {
                table.insert(h, batch.tuple(row))?;
            }
        }
        self.inner.close()?;
        self.table = Some(table);
        self.outer.open()?;
        self.state = OpState::Open;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.state.require_open()?;
        let table = self.table.as_ref().expect("open builds table");
        let Some(batch) = self.outer.next_batch()? else {
            return Ok(None);
        };
        let hashes = batch.hash_rows(&self.outer_keys);
        let mut out = Batch::with_capacity(self.schema.clone(), batch.len());
        let mut matches: Vec<Tuple> = Vec::new();
        for (row, &h) in hashes.iter().enumerate() {
            matches.clear();
            table.find(h, |cand| {
                if batch.row_eq_tuple(&self.outer_keys, row, cand, &self.inner_keys) {
                    matches.push(cand.clone());
                }
                false // keep walking the chain
            });
            for inner in &matches {
                let mut vals = batch.tuple(row).into_values();
                vals.extend(inner.values().iter().cloned());
                out.push_tuple(&Tuple::new(vals));
            }
        }
        Ok(Some(out))
    }

    fn close(&mut self) -> Result<()> {
        self.outer.close()?;
        self.table = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::hash_join::HashJoin;
    use crate::merge_join::JoinMode;
    use crate::op::collect;
    use crate::scan::MemScan;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel(names: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(names.iter().map(|n| Field::int(*n)).collect());
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    #[test]
    fn inner_join_matches_tuple_path_byte_for_byte() {
        let l = rel(
            &["k", "x"],
            &[&[1, 100], &[1, 101], &[2, 200], &[3, 300], &[1, 102]],
        );
        let r = rel(&["k", "y"], &[&[1, 7], &[2, 9], &[1, 8]]);
        let tuple_out = collect(Box::new(
            HashJoin::new(
                Box::new(MemScan::new(l.clone())),
                Box::new(MemScan::new(r.clone())),
                vec![0],
                vec![0],
                JoinMode::Inner,
            )
            .unwrap()
            .with_pool(MemoryPool::unbounded()),
        ))
        .unwrap();
        let batch_out = collect_batches(
            Box::new(
                BatchHashJoin::new(
                    Box::new(BatchMemScan::new(l).with_batch_size(2)),
                    Box::new(BatchMemScan::new(r).with_batch_size(2)),
                    vec![0],
                    vec![0],
                    MemoryPool::unbounded(),
                )
                .unwrap(),
            ),
            CancelToken::none(),
        )
        .unwrap();
        assert_eq!(tuple_out.tuples(), batch_out.tuples());
        assert_eq!(batch_out.cardinality(), 7);
    }

    #[test]
    fn build_side_memory_exhaustion_surfaces() {
        let rows: Vec<Vec<i64>> = (0..10_000i64).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut j = BatchHashJoin::new(
            Box::new(BatchMemScan::new(rel(&["k"], &[&[1]]))),
            Box::new(BatchMemScan::new(rel(&["k"], &refs))),
            vec![0],
            vec![0],
            MemoryPool::new(1024),
        )
        .unwrap();
        assert!(j.open().unwrap_err().is_memory_exhausted());
    }

    #[test]
    fn mismatched_keys_are_a_plan_error() {
        let l = BatchMemScan::new(rel(&["k"], &[&[1]]));
        let r = BatchMemScan::new(rel(&["k"], &[&[1]]));
        assert!(matches!(
            BatchHashJoin::new(
                Box::new(l),
                Box::new(r),
                vec![0],
                vec![0, 0],
                MemoryPool::unbounded()
            ),
            Err(ExecError::Plan(_))
        ));
    }
}
