//! The vectorized (batch-at-a-time) execution path.
//!
//! Every operator here processes [`Batch`]es of up to
//! [`DEFAULT_BATCH_SIZE`] rows instead of single tuples, paying one
//! virtual call, one cancellation poll, and one profile-span update per
//! batch instead of per tuple. The packed-key hash and compare kernels
//! ([`Batch::hash_rows`], [`Batch::row_eq_tuple`]) are bit-identical to
//! the tuple-at-a-time entry points, so hash-table layouts — and
//! therefore output orders — match the classic path exactly; batch plans
//! produce byte-identical results, not merely equivalent bags.
//!
//! The module mirrors the tuple operators one-for-one:
//!
//! | tuple path                  | batch path                         |
//! |-----------------------------|------------------------------------|
//! | [`crate::scan::MemScan`]    | [`scan::BatchMemScan`]             |
//! | [`crate::filter::Filter`]   | [`filter::BatchFilter`]            |
//! | [`crate::project::Project`] | [`project::BatchProject`]          |
//! | [`crate::agg::HashDistinct`]| [`distinct::BatchDistinct`]        |
//! | [`crate::agg::HavingCount`] | [`agg::BatchHavingCount`]          |
//! | [`crate::hash_join::HashJoin`] | [`join::BatchHashJoin`]         |
//! | [`crate::profile::ProfiledOp`] | [`profile::ProfiledBatchOp`]    |
//!
//! Operators with no batch-native counterpart (file scans, the spilling
//! group-count aggregate) are bridged with [`TupleToBatch`] /
//! [`BatchToTuple`], preserving their tuple-path semantics — including
//! spill behavior — inside a batch plan.
//!
//! **Cancellation cadence.** Batch operators do not carry cancel tokens;
//! instead [`collect_batches`] polls the [`CancelToken`] once per batch it
//! receives. An operator that is working without producing rows (a filter
//! rejecting everything, say) returns `Some` of an *empty* batch rather
//! than looping internally, so the poll cadence is bounded by the batch
//! size even when the selectivity is zero.

pub mod agg;
pub mod distinct;
pub mod filter;
pub mod join;
pub mod profile;
pub mod project;
pub mod scan;

use reldiv_rel::{Batch, Relation, Schema, Tuple};

use crate::cancel::CancelToken;
use crate::op::{BoxedOp, Operator};
use crate::{ExecError, Result};

/// Rows per batch. The paper prices per-tuple hash/compare work; 1024
/// rows amortize the per-call overheads to noise while a batch of the
/// paper's 8–16 byte records stays comfortably inside L1.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Which execution path a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The classic tuple-at-a-time open-next-close path.
    Tuple,
    /// The vectorized batch path (byte-identical results).
    Batch,
}

/// A relational operator producing columnar batches.
///
/// The protocol is the batch analogue of [`Operator`]: `open` prepares
/// the operator, `next_batch` produces the next chunk of rows (possibly
/// empty — see [`collect_batches`]), and `close` releases resources.
pub trait BatchOperator {
    /// The schema of rows this operator produces.
    fn schema(&self) -> &Schema;

    /// Prepares the operator (and, recursively, its inputs).
    fn open(&mut self) -> Result<()>;

    /// Produces the next batch, or `None` when exhausted.
    ///
    /// An operator may return `Some` of an **empty** batch to report "no
    /// rows yet, still working" — this is how inner drain loops (filters
    /// with zero selectivity, probe stretches without matches) bound the
    /// work between two cancellation polls without emitting rows.
    fn next_batch(&mut self) -> Result<Option<Batch>>;

    /// Releases resources (and closes inputs). Idempotent.
    fn close(&mut self) -> Result<()>;
}

/// A boxed batch operator — the edge type of batch plan trees.
pub type BoxedBatchOp = Box<dyn BatchOperator>;

/// Runs a batch operator to completion: open, drain, close; polls
/// `cancel` once per batch (the batch path's cancellation checkpoint).
///
/// `close` runs on **every** exit, including mid-drain errors, so
/// operator resources (run files, spill clusters, pinned pages) are never
/// leaked; the drain's error takes precedence over any close error.
pub fn collect_batches(mut op: BoxedBatchOp, cancel: CancelToken) -> Result<Relation> {
    fn drain(op: &mut BoxedBatchOp, cancel: CancelToken) -> Result<Relation> {
        op.open()?;
        let mut out = Relation::empty(op.schema().clone());
        while let Some(batch) = op.next_batch()? {
            cancel.check()?;
            for t in batch.into_tuples() {
                out.push(t).map_err(ExecError::from)?;
            }
        }
        Ok(out)
    }
    let result = drain(&mut op, cancel);
    let closed = op.close();
    let rel = result?;
    closed?;
    Ok(rel)
}

/// Bridges a tuple operator into a batch plan by draining up to one
/// batch's worth of tuples per `next_batch` call.
///
/// Used for operators whose semantics live on the tuple path (file scans
/// with their real I/O profile, the spilling group-count aggregate).
pub struct TupleToBatch {
    input: BoxedOp,
    batch_size: usize,
    done: bool,
}

impl TupleToBatch {
    /// Wraps `input`, producing [`DEFAULT_BATCH_SIZE`]-row batches.
    pub fn new(input: BoxedOp) -> TupleToBatch {
        TupleToBatch::with_batch_size(input, DEFAULT_BATCH_SIZE)
    }

    /// Wraps `input` with an explicit batch size (tests).
    pub fn with_batch_size(input: BoxedOp, batch_size: usize) -> TupleToBatch {
        TupleToBatch {
            input,
            batch_size: batch_size.max(1),
            done: false,
        }
    }
}

impl BatchOperator for TupleToBatch {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let mut batch = Batch::with_capacity(self.input.schema().clone(), self.batch_size);
        while batch.len() < self.batch_size {
            match self.input.next()? {
                Some(t) => batch.push_tuple(&t),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Bridges a batch operator into a tuple plan by buffering one batch and
/// yielding its rows one at a time.
pub struct BatchToTuple {
    input: BoxedBatchOp,
    buffer: std::vec::IntoIter<Tuple>,
    done: bool,
}

impl BatchToTuple {
    /// Wraps `input`.
    pub fn new(input: BoxedBatchOp) -> BatchToTuple {
        BatchToTuple {
            input,
            buffer: Vec::new().into_iter(),
            done: false,
        }
    }
}

impl Operator for BatchToTuple {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.buffer = Vec::new().into_iter();
        self.done = false;
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.buffer.next() {
                return Ok(Some(t));
            }
            if self.done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                Some(batch) => self.buffer = batch.into_tuples().into_iter(),
                None => {
                    self.done = true;
                    return Ok(None);
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.buffer = Vec::new().into_iter();
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::scan::BatchMemScan;
    use super::*;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Field::int("x")]);
        Relation::from_tuples(schema, (0..n).map(|i| ints(&[i])).collect()).unwrap()
    }

    #[test]
    fn tuple_to_batch_chunks_the_stream() {
        let bridge = TupleToBatch::with_batch_size(Box::new(MemScan::new(rel(10))), 4);
        let out = collect_batches(Box::new(bridge), CancelToken::none()).unwrap();
        assert_eq!(out, rel(10));
    }

    #[test]
    fn batch_to_tuple_round_trips() {
        let batched: BoxedBatchOp = Box::new(BatchMemScan::new(rel(2500)));
        let bridged: BoxedOp = Box::new(BatchToTuple::new(batched));
        let out = crate::op::collect(bridged).unwrap();
        assert_eq!(out, rel(2500));
    }

    #[test]
    fn collect_batches_polls_cancel_per_batch() {
        let scan = BatchMemScan::new(rel(5000));
        let cancel = CancelToken::at(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let err = collect_batches(Box::new(scan), cancel).unwrap_err();
        assert!(err.is_cancelled());
    }

    #[test]
    fn collect_batches_closes_on_mid_drain_error() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct Faulty {
            schema: Schema,
            closed: Rc<Cell<bool>>,
        }
        impl BatchOperator for Faulty {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn open(&mut self) -> Result<()> {
                Ok(())
            }
            fn next_batch(&mut self) -> Result<Option<Batch>> {
                Err(ExecError::Protocol("injected fault"))
            }
            fn close(&mut self) -> Result<()> {
                self.closed.set(true);
                Ok(())
            }
        }
        let closed = Rc::new(Cell::new(false));
        let op = Faulty {
            schema: Schema::new(vec![Field::int("x")]),
            closed: closed.clone(),
        };
        let err = collect_batches(Box::new(op), CancelToken::none()).unwrap_err();
        assert!(matches!(err, ExecError::Protocol(_)));
        assert!(closed.get(), "close must run on the error path");
    }
}
