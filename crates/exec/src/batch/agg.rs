//! Vectorized `HAVING count = N` — the final step of division by
//! aggregation on the batch path.
//!
//! The group-count aggregate itself stays on the tuple path (its
//! spill-to-cluster-files overflow handling is semantics worth keeping in
//! one place) and is bridged with [`super::BatchToTuple`] /
//! [`super::TupleToBatch`]; only the post-filter is batch-native.

use reldiv_rel::{counters, Batch, ColumnVec, Schema};

use super::{BatchOperator, BoxedBatchOp};
use crate::{ExecError, Result};

/// Selects groups whose trailing count equals `target` and projects the
/// count away — the batch analogue of [`crate::agg::HavingCount`].
pub struct BatchHavingCount {
    input: BoxedBatchOp,
    target: i64,
    keep: Vec<usize>,
    schema: Schema,
    selection: Vec<usize>,
}

impl BatchHavingCount {
    /// Filters `(group..., count)` batches to rows with `count == target`.
    pub fn new(input: BoxedBatchOp, target: i64) -> Result<Self> {
        let arity = input.schema().arity();
        if arity < 2 {
            return Err(ExecError::Plan(
                "HavingCount: input needs group + count columns".into(),
            ));
        }
        let keep: Vec<usize> = (0..arity - 1).collect();
        let schema = input.schema().project(&keep).map_err(ExecError::from)?;
        Ok(BatchHavingCount {
            input,
            target,
            keep,
            schema,
            selection: Vec::new(),
        })
    }
}

impl BatchOperator for BatchHavingCount {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        // One comparison per input row, like the tuple path.
        counters::count_comparisons(batch.len() as u64);
        self.selection.clear();
        let count_col = batch.schema().arity() - 1;
        if let ColumnVec::Int(counts) = batch.column(count_col) {
            for (row, &c) in counts.iter().enumerate() {
                if c == self.target {
                    self.selection.push(row);
                }
            }
        }
        let out = batch
            .gather(&self.selection)
            .project(&self.keep)
            .map_err(ExecError::from)?;
        Ok(Some(out))
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    #[test]
    fn having_count_selects_full_groups() {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("count")]);
        let rel = Relation::from_tuples(schema, vec![ints(&[1, 2]), ints(&[2, 1]), ints(&[3, 2])])
            .unwrap();
        let out = collect_batches(
            Box::new(BatchHavingCount::new(Box::new(BatchMemScan::new(rel)), 2).unwrap()),
            CancelToken::none(),
        )
        .unwrap();
        let sids: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(sids, vec![1, 3]);
        assert_eq!(out.schema().arity(), 1, "count column projected away");
    }

    #[test]
    fn single_column_input_is_a_plan_error() {
        let schema = Schema::new(vec![Field::int("count")]);
        let rel = Relation::from_tuples(schema, vec![ints(&[1])]).unwrap();
        assert!(matches!(
            BatchHavingCount::new(Box::new(BatchMemScan::new(rel)), 1),
            Err(ExecError::Plan(_))
        ));
    }
}
